"""Symbolic boolean functions: BDD nodes as the primary inter-layer currency.

Until now every layer of the library traded in :class:`~repro.expr.ast.Expr`
trees: the derivation kept an expression candidate "in lock step" with its
BDD side purely for output, the property checkers substituted implementation
expressions into specification expressions, and the synthesiser lowered raw
substituted trees.  Expression trees grow by substitution — the full
16-register FirePath derivation used to drown in n-ary flattening — while
the BDD side stays canonical and small.

This package inverts the relationship.  A :class:`SymbolicFunction` is a
BDD node paired with its shared :class:`SymbolicContext` (manager plus
compile/materialize caches) and an optional variable scope.  All boolean
structure — derivation fixed points, property claims, equivalence and
refinement obligations — flows between layers as SymbolicFunctions;
decisions (validity, equivalence, witnesses) are pointer comparisons and
node walks.  A human-readable or HDL-ready expression is *materialized*
lazily, and only when a printer, monitor or synthesis backend asks for one:
:meth:`SymbolicFunction.to_expr` extracts an irredundant sum-of-products
cover with the manager's ISOP operator, so what comes out is a minimized
two-level form rather than the substitution residue the old pipeline
carried around.  Materialized expressions are cached per node in the
context, so repeated printing is free.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..expr.ast import Expr, FALSE, Not, TRUE, Var
from ..expr.builders import big_and, big_or
from ..bdd.expr_to_bdd import compile_expr
from ..bdd.manager import (
    FALSE_NODE,
    TRUE_NODE,
    BddManager,
    CoverBudgetExceeded,
)


class SymbolicContext:
    """A shared BDD manager plus the caches that make functions cheap to move.

    One context is one universe of discourse: every
    :class:`SymbolicFunction` created from it shares the manager's unique
    table (so equivalence is a pointer comparison), the expression compile
    cache (so lifting the same specification formula twice is free) and the
    materialization cache (so extracting the same cover twice is free).
    Functions from different contexts cannot be combined — that would
    silently compare nodes from unrelated unique tables.
    """

    def __init__(
        self,
        variable_order: Optional[Sequence[str]] = None,
        *,
        balanced_reduce: bool = False,
    ):
        self.manager = BddManager(variable_order, balanced_reduce=balanced_reduce)
        self._compile_cache: Dict[Expr, int] = {}
        self._expr_cache: Dict[int, Expr] = {}
        # Node ids are reused after a sweep, so entries pointing at
        # reclaimed ids must be dropped or they would alias new functions.
        self.manager.add_sweep_hook(self._on_sweep)

    def _on_sweep(self, alive) -> None:
        self._compile_cache = {
            expr: node for expr, node in self._compile_cache.items() if alive(node)
        }
        self._expr_cache = {
            node: expr for node, expr in self._expr_cache.items() if alive(node)
        }

    def collect(self) -> int:
        """Reclaim nodes no live :class:`SymbolicFunction` can reach.

        Every function handle protects its node, so a plain
        ``context.collect()`` after dropping intermediate handles shrinks
        the store back to what is still referenced.  Returns the number of
        nodes reclaimed.
        """
        return self.manager.gc()

    # -- constructors ----------------------------------------------------------

    def true(self) -> "SymbolicFunction":
        """The constant TRUE function."""
        return SymbolicFunction(self, TRUE_NODE)

    def false(self) -> "SymbolicFunction":
        """The constant FALSE function."""
        return SymbolicFunction(self, FALSE_NODE)

    def var(self, name: str) -> "SymbolicFunction":
        """The projection function of a single variable."""
        return SymbolicFunction(self, self.manager.var(name))

    def lift(self, expr: Union[Expr, "SymbolicFunction"]) -> "SymbolicFunction":
        """Compile an expression into this context (cached across calls).

        A :class:`SymbolicFunction` already in this context passes through
        unchanged; one from another context is rejected rather than
        re-interpreted.
        """
        if isinstance(expr, SymbolicFunction):
            if expr.context is not self:
                raise ValueError(
                    "cannot lift a SymbolicFunction from a different context"
                )
            return expr
        return SymbolicFunction(
            self, compile_expr(self.manager, expr, self._compile_cache)
        )

    def function(
        self, node: int, scope: Optional[Sequence[str]] = None
    ) -> "SymbolicFunction":
        """Wrap a raw manager node (low-level escape hatch)."""
        return SymbolicFunction(self, node, scope=scope)

    # -- materialization -------------------------------------------------------

    def to_expr(self, node: int) -> Expr:
        """Materialize a node as a minimized expression (cached per node).

        The expression is an irredundant sum-of-products cover extracted
        with the manager's ISOP operator — not the syntactic residue of
        whatever substitutions produced the node.  Compiling the returned
        expression back into this context yields exactly ``node`` (the
        cross-check the test-suite performs with hypothesis), and the
        compile cache is primed accordingly.
        """
        cached = self._expr_cache.get(node)
        if cached is not None:
            return cached
        if node == FALSE_NODE:
            expr: Expr = FALSE
        elif node == TRUE_NODE:
            expr = TRUE
        else:
            complemented, cubes = self.minimized_cover(node)
            expr = self._cubes_to_expr(cubes)
            if complemented:
                expr = Not(expr)
        self._expr_cache[node] = expr
        self._compile_cache.setdefault(expr, node)
        return expr

    def minimized_cover(self, node: int) -> Tuple[bool, tuple]:
        """The smaller of the direct and the complemented ISOP cover.

        Returns ``(complemented, cubes)``: when ``complemented`` is true the
        cubes cover the *negation* of the node (the function is the
        complement of their disjunction).  A mostly-true function — every
        closed-form MOE flag is a negated stall condition — has
        exponentially many cubes in a direct SOP but a compact complement
        cover; a mostly-false one the other way round.  Rather than guess,
        both sides are raced under a cube budget that grows geometrically
        until one completes; the exponential side aborts as soon as an
        intermediate cover overflows the budget, and its completed
        sub-covers stay memoised for the retry.  The direct cover wins
        ties.  Cubes are ``(level, polarity)`` tuples as from
        :meth:`~repro.bdd.manager.BddManager.isop`.
        """
        # Terminals short-circuit the race: without this, TRUE would "lose"
        # to its complement's empty cover and synthesize as an inverted
        # CONST0 instead of a CONST1.
        if node == FALSE_NODE:
            return False, ()
        if node == TRUE_NODE:
            return False, ((),)
        manager = self.manager
        negated = manager.not_(node)
        # Run the likely-compact side first (density > 1/2 means mostly
        # true, i.e. an exponential direct cover but a compact complement),
        # then cap the other side by the first result: it only matters if
        # it can still win, so the losing side aborts almost immediately
        # instead of spending its whole cube budget.  Direct wins ties.
        comp_first = manager.density(node) > 0.5
        budget = 64
        while True:
            direct = complemented = None
            if comp_first:
                try:
                    complemented = manager.isop(negated, negated, max_cubes=budget)[1]
                except CoverBudgetExceeded:
                    pass
                cap = budget if complemented is None else min(budget, len(complemented))
                try:
                    direct = manager.isop(node, node, max_cubes=cap)[1]
                except CoverBudgetExceeded:
                    pass
            else:
                try:
                    direct = manager.isop(node, node, max_cubes=budget)[1]
                except CoverBudgetExceeded:
                    pass
                cap = budget if direct is None else min(budget, len(direct) - 1)
                try:
                    complemented = manager.isop(negated, negated, max_cubes=cap)[1]
                except CoverBudgetExceeded:
                    pass
            if direct is not None and (
                complemented is None or len(direct) <= len(complemented)
            ):
                return False, direct
            if complemented is not None:
                return True, complemented
            budget *= 8

    def _cubes_to_expr(self, cubes: tuple) -> Expr:
        # Covers repeat the same few literals across many cubes; building
        # (and hashing) a fresh Var/Not per occurrence dominated extraction.
        var_at = self.manager.var_at_level
        literal_at: Dict[Tuple[int, bool], Expr] = {}
        products: List[Expr] = []
        for cube in cubes:
            literals: List[Expr] = []
            for level, polarity in cube:
                key = (level, polarity)
                literal = literal_at.get(key)
                if literal is None:
                    literal = Var(var_at(level))
                    if not polarity:
                        literal = Not(literal)
                    literal_at[key] = literal
                literals.append(literal)
            products.append(big_and(literals) if literals else TRUE)
        return big_or(products) if products else FALSE

    def cover_of(
        self, node: int, care: Optional[int] = None
    ) -> List[Dict[str, bool]]:
        """An irredundant SOP cover of a node as name-keyed cubes."""
        return self.manager.isop_cover(node, care=care)


class SymbolicFunction:
    """A boolean function held as a BDD node in a shared context.

    Attributes:
        context: the owning :class:`SymbolicContext`.
        node: the manager node (an integer; equality is function equality).
        scope: optional ordered tuple of variable names the function is
            considered *over* — its declared universe, as opposed to
            :meth:`support`, the variables it actually depends on.  The
            derivation sets the scope of each closed form to the primary
            inputs; enumeration-style queries default to it.
    """

    __slots__ = ("context", "node", "scope", "_finalizer", "__weakref__")

    def __init__(
        self,
        context: SymbolicContext,
        node: int,
        scope: Optional[Sequence[str]] = None,
    ):
        self.context = context
        self.node = node
        self.scope = tuple(scope) if scope is not None else None
        # Pin the node for the lifetime of this handle: the manager's GC
        # and reorder passes treat protected nodes as roots, so holding a
        # SymbolicFunction is all a caller needs to do to stay safe.
        manager = context.manager
        manager.protect(node)
        self._finalizer = weakref.finalize(self, manager.release, node)

    # -- plumbing --------------------------------------------------------------

    def _peer(self, other: "SymbolicFunction") -> "SymbolicFunction":
        if not isinstance(other, SymbolicFunction):
            raise TypeError(
                f"expected a SymbolicFunction, got {type(other).__name__}; "
                "lift expressions through the context first"
            )
        if other.context is not self.context:
            raise ValueError("cannot combine SymbolicFunctions from different contexts")
        return other

    def _wrap(self, node: int, other: Optional["SymbolicFunction"] = None) -> "SymbolicFunction":
        scope = self.scope
        if other is not None and other.scope is not None:
            if scope is None:
                scope = other.scope
            elif scope != other.scope:
                merged = list(scope)
                merged.extend(name for name in other.scope if name not in scope)
                scope = tuple(merged)
        return SymbolicFunction(self.context, node, scope=scope)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicFunction):
            return NotImplemented
        return self.context is other.context and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.context), self.node))

    def __repr__(self) -> str:  # deliberately does NOT materialize the cover
        return f"SymbolicFunction(node={self.node}, size={self.dag_size()})"

    # -- boolean structure -----------------------------------------------------

    def __and__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        other = self._peer(other)
        return self._wrap(self.context.manager.and_(self.node, other.node), other)

    def __or__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        other = self._peer(other)
        return self._wrap(self.context.manager.or_(self.node, other.node), other)

    def __xor__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        other = self._peer(other)
        return self._wrap(self.context.manager.xor(self.node, other.node), other)

    def __invert__(self) -> "SymbolicFunction":
        return self._wrap(self.context.manager.not_(self.node))

    def implies(self, other: "SymbolicFunction") -> "SymbolicFunction":
        """The function ``self → other``."""
        other = self._peer(other)
        return self._wrap(self.context.manager.implies(self.node, other.node), other)

    def iff(self, other: "SymbolicFunction") -> "SymbolicFunction":
        """The function ``self ↔ other``."""
        other = self._peer(other)
        return self._wrap(self.context.manager.iff(self.node, other.node), other)

    def ite(self, then: "SymbolicFunction", orelse: "SymbolicFunction") -> "SymbolicFunction":
        """If-then-else with ``self`` as the condition."""
        then = self._peer(then)
        orelse = self._peer(orelse)
        return self._wrap(
            self.context.manager.ite(self.node, then.node, orelse.node)
        )

    # -- substitution and cofactors -------------------------------------------

    def compose(
        self, mapping: Mapping[str, Union["SymbolicFunction", Expr]]
    ) -> "SymbolicFunction":
        """Simultaneous substitution of variables by functions."""
        node_map = {
            name: self.context.lift(value).node for name, value in mapping.items()
        }
        return self._wrap(self.context.manager.compose_many(self.node, node_map))

    def restrict(self, assignment: Mapping[str, bool]) -> "SymbolicFunction":
        """Cofactor with the given variables fixed to constants."""
        node = self.node
        for name, value in assignment.items():
            node = self.context.manager.restrict(node, name, bool(value))
        return self._wrap(node)

    def constrain(self, care: "SymbolicFunction") -> "SymbolicFunction":
        """Coudert–Madre *constrain* generalized cofactor against a care set."""
        care = self._peer(care)
        return self._wrap(self.context.manager.constrain(self.node, care.node))

    def restrict_with(self, care: "SymbolicFunction") -> "SymbolicFunction":
        """Coudert–Madre *restrict*: simplify against a care set, support-safe."""
        care = self._peer(care)
        return self._wrap(self.context.manager.restrict_with(self.node, care.node))

    def exists(self, names: Iterable[str]) -> "SymbolicFunction":
        """Existential quantification."""
        return self._wrap(self.context.manager.exists(self.node, names))

    def forall(self, names: Iterable[str]) -> "SymbolicFunction":
        """Universal quantification."""
        return self._wrap(self.context.manager.forall(self.node, names))

    # -- decisions -------------------------------------------------------------

    def is_true(self) -> bool:
        """Is this the constant TRUE function?  Constant time."""
        return self.node == TRUE_NODE

    def is_false(self) -> bool:
        """Is this the constant FALSE function?  Constant time."""
        return self.node == FALSE_NODE

    def is_satisfiable(self) -> bool:
        """Does the function have a satisfying assignment?  Constant time."""
        return self.node != FALSE_NODE

    def equivalent(self, other: "SymbolicFunction") -> bool:
        """Function equality — a pointer comparison."""
        return self._peer(other).node == self.node

    def find_difference(self, other: "SymbolicFunction") -> Optional[Dict[str, bool]]:
        """One assignment on which the two functions disagree, or None."""
        other = self._peer(other)
        return self.context.manager.find_difference(self.node, other.node)

    def pick_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment, or None."""
        return self.context.manager.pick_one(self.node)

    def counterexample(self) -> Optional[Dict[str, bool]]:
        """One falsifying assignment, or None when the function is valid."""
        return self.context.manager.pick_one(self.context.manager.not_(self.node))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a concrete assignment (one root-to-terminal walk)."""
        return self.context.manager.evaluate(self.node, assignment)

    # -- measures --------------------------------------------------------------

    def support(self) -> frozenset:
        """The variables the function actually depends on."""
        return self.context.manager.support(self.node)

    def sat_count(self, over: Optional[Sequence[str]] = None) -> int:
        """Satisfying assignments over ``over`` (default: scope, then support)."""
        if over is None and self.scope is not None:
            over = self.scope
        return self.context.manager.sat_count(self.node, over=over)

    def dag_size(self) -> int:
        """Number of BDD nodes (the complexity measure the benchmarks report)."""
        return self.context.manager.dag_size(self.node)

    # -- materialization -------------------------------------------------------

    def to_expr(self) -> Expr:
        """Materialize as a minimized irredundant-SOP expression (cached)."""
        return self.context.to_expr(self.node)

    def to_cover(
        self, care: Optional["SymbolicFunction"] = None
    ) -> List[Dict[str, bool]]:
        """The direct irredundant SOP cover as name-keyed cubes.

        Beware on mostly-true functions: the direct cover can be
        exponentially larger than the complement's; HDL backends should
        prefer :meth:`minimized_cover`, which picks the smaller side.
        """
        care_node = self._peer(care).node if care is not None else None
        return self.context.cover_of(self.node, care=care_node)

    def minimized_cover(self) -> Tuple[bool, List[Dict[str, bool]]]:
        """``(complemented, cubes)`` — the smaller-polarity cover, name-keyed.

        When ``complemented`` is true the cubes cover the negation of the
        function; the synthesiser then emits one extra inverter.  See
        :meth:`SymbolicContext.minimized_cover` for the budget race.
        """
        complemented, cubes = self.context.minimized_cover(self.node)
        var_at = self.context.manager.var_at_level
        named = [
            {var_at(level): polarity for level, polarity in cube} for cube in cubes
        ]
        return complemented, named
