"""Artifact round trips for :class:`~repro.symbolic.SymbolicFunction` sets.

This is the symbolic-layer view of :mod:`repro.bdd.serialize`: a named
set of functions sharing one :class:`~repro.symbolic.SymbolicContext` is
dumped to one self-contained byte string (node table + variable-order
manifest + optional minimized ISOP covers + caller payload), and loaded
back either into a fresh context — reconstructed with the source's full
variable order — or spliced into an existing compatible context, where
per-node deduplication makes a reloaded function *pointer-equal* to the
function it was dumped from.

Including covers snapshots the materialization work too: on load they
prime the context's expression cache, so ``to_expr`` on a loaded
function is a dictionary lookup instead of an ISOP extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..expr.ast import Expr, Not
from ..bdd.serialize import (
    ArtifactError,
    dump_nodes,
    parse_artifact,
    splice_nodes,
)
from .function import SymbolicContext, SymbolicFunction

__all__ = [
    "ArtifactError",
    "LoadedFunctions",
    "dump_functions",
    "load_functions",
]


@dataclass
class LoadedFunctions:
    """What :func:`load_functions` hands back."""

    context: SymbolicContext
    functions: Dict[str, SymbolicFunction]
    payload: Dict[str, Any]
    manifest: Dict[str, Any]


def dump_functions(
    functions: Mapping[str, SymbolicFunction],
    payload: Optional[Dict[str, Any]] = None,
    include_covers: bool = False,
    use_numpy: Optional[bool] = None,
) -> bytes:
    """Serialize named functions (one shared context) to artifact bytes.

    Args:
        functions: name → function; all must share one context.
        payload: arbitrary JSON metadata stored in the manifest.
        include_covers: also store each function's minimized ISOP cover
            (materializing it now if needed), so loaders get cached
            expressions for free.
        use_numpy: forwarded to the binary encoder (None = automatic).
    """
    if not functions:
        raise ValueError("cannot serialize an empty function set")
    contexts = {fn.context for fn in functions.values()}
    if len(contexts) != 1:
        raise ValueError("all serialized functions must share one SymbolicContext")
    context = next(iter(contexts))
    covers = None
    if include_covers:
        covers = {}
        for name, fn in functions.items():
            complemented, cubes = context.minimized_cover(fn.node)
            # At dump time a cube's variable index in the manifest order
            # *is* its manager level, because the manifest records the
            # full source order.
            covers[name] = {"complemented": complemented, "cubes": cubes}
    return dump_nodes(
        context.manager,
        roots={name: fn.node for name, fn in functions.items()},
        scopes={name: fn.scope for name, fn in functions.items()},
        covers=covers,
        payload=payload,
        use_numpy=use_numpy,
    )


def load_functions(
    data: bytes,
    context: Optional[SymbolicContext] = None,
    use_numpy: Optional[bool] = None,
    balanced_reduce: bool = False,
) -> LoadedFunctions:
    """Load an artifact into a context (a fresh one by default).

    With ``context`` given, nodes are spliced into its manager and
    deduplicate against everything it already holds — loading an artifact
    back into its source context returns pointer-equal functions.  The
    context's variable order must be compatible (the artifact's variables
    in the same relative order); otherwise :class:`ArtifactError` is
    raised and the caller should retry with a fresh context.

    ``balanced_reduce`` only applies when a fresh context is created.
    """
    parsed = parse_artifact(data, use_numpy=use_numpy)
    if context is None:
        context = SymbolicContext(
            parsed.variables, balanced_reduce=balanced_reduce
        )
    # The raw root ids are unprotected until each is wrapped in a
    # SymbolicFunction below; inhibit reordering across that window so a
    # growth-triggered reorder cannot reclaim a root before its wrap.
    with context.manager.postpone_reorder():
        roots = splice_nodes(context.manager, parsed)
        manifest = parsed.manifest
        scopes = manifest.get("scopes", {})
        functions = {
            name: context.function(node, scope=scopes.get(name))
            for name, node in roots.items()
        }
    for name, cover in (manifest.get("covers") or {}).items():
        fn = functions.get(name)
        if fn is None:
            continue
        _prime_cover(context, fn.node, cover, parsed.variables)
    return LoadedFunctions(
        context=context,
        functions=functions,
        payload=dict(manifest.get("payload") or {}),
        manifest=manifest,
    )


def _prime_cover(
    context: SymbolicContext, node: int, cover: Dict[str, Any], variables: list
) -> None:
    """Install a stored minimized cover into the context's expr cache.

    ``variables`` is the *artifact's* manifest order — cube indexes refer
    to it, and the target context may interleave other variables.
    """
    if node in context._expr_cache:
        return
    try:
        cubes = tuple(
            tuple((context.manager.level_of(variables[index]), bool(polarity))
                  for index, polarity in cube)
            for cube in cover["cubes"]
        )
        complemented = bool(cover["complemented"])
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"artifact cover is malformed: {exc}") from exc
    expr: Expr = context._cubes_to_expr(cubes)
    if complemented:
        expr = Not(expr)
    context._expr_cache[node] = expr
    context._compile_cache.setdefault(expr, node)
