"""BDD-backed symbolic functions — the canonical currency between layers.

See :mod:`repro.symbolic.function` for the design rationale: layers hand
each other :class:`SymbolicFunction` objects (a BDD node + shared context +
variable scope) and materialize minimized expressions lazily via ISOP
covers only at the printing/HDL/monitoring boundary.
"""

from .function import SymbolicContext, SymbolicFunction
from .serialize import (
    ArtifactError,
    LoadedFunctions,
    dump_functions,
    load_functions,
)

__all__ = [
    "ArtifactError",
    "LoadedFunctions",
    "SymbolicContext",
    "SymbolicFunction",
    "dump_functions",
    "load_functions",
]
