"""BDD-backed symbolic functions — the canonical currency between layers.

See :mod:`repro.symbolic.function` for the design rationale: layers hand
each other :class:`SymbolicFunction` objects (a BDD node + shared context +
variable scope) and materialize minimized expressions lazily via ISOP
covers only at the printing/HDL/monitoring boundary.
"""

from .function import SymbolicContext, SymbolicFunction

__all__ = ["SymbolicContext", "SymbolicFunction"]
