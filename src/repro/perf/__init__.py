"""Performance benchmarks for the symbolic kernel and verification flows."""

from .bench import (
    BenchResult,
    Scenario,
    available_scenarios,
    check_against_baseline,
    run_benchmarks,
    write_results,
)

__all__ = [
    "BenchResult",
    "Scenario",
    "available_scenarios",
    "check_against_baseline",
    "run_benchmarks",
    "write_results",
]
