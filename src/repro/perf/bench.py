"""The ``repro bench`` benchmark runner.

Times the paper-shaped workloads that exercise the symbolic kernel — the
fixed-point derivation, exhaustive enumeration, trace sweeps and the
property/bounded checkers — and writes the timings to a JSON file so each
PR leaves a trajectory (``BENCH_PR<n>.json``) the next one has to beat.

Two extra modes keep the runner usable in CI:

* ``--quick`` shrinks every scenario to a smoke-test size (seconds, not
  minutes) while still touching the same code paths;
* ``--check`` compares the fresh timings against a committed baseline file
  and exits non-zero when any scenario regressed beyond the tolerance — a
  lightweight performance gate.

Besides the timing, each result carries a ``metrics`` snapshot: whatever
the scenario's timed region added to the :mod:`repro.obs` registry
(campaign scenarios fold their workers' kernel/cache counters home), plus
scenario-specific collectors — the derivation benchmarks report live BDD
node counts, cache hit rates and GC/reorder activity.  The snapshot is
informational (the ``--check`` gate compares only seconds); with
``--repeat`` the registry counters accumulate over all repetitions.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..analysis import coverage_of
from ..archs import example_architecture, firepath_like_architecture
from ..assertions import monitor_trace, testbench_assertions
from ..checking import (
    BoundedModelChecker,
    CombinationalModel,
    PropertyChecker,
    StuckResetModel,
    environment_formula,
)
from ..expr.evaluate import is_tautology_by_enumeration
from ..expr.transform import substitute
from ..pipeline import ClosedFormInterlock, simulate
from ..spec import build_functional_spec, conservative_variant, symbolic_most_liberal
from ..workloads import WorkloadGenerator, WorkloadProfile

SCHEMA_VERSION = 1


@dataclass
class Scenario:
    """One timed benchmark: a setup phase (untimed) and a run phase (timed).

    ``collect``, when given, receives the last run's return value after
    the timing stops and contributes scenario-specific entries to the
    result's ``metrics`` snapshot.
    """

    name: str
    description: str
    setup: Callable[[bool], Any]
    run: Callable[[Any], Any]
    meta: Dict[str, Any] = field(default_factory=dict)
    collect: Optional[Callable[[Any], Dict[str, Any]]] = None


@dataclass
class BenchResult:
    """Timing of one scenario."""

    name: str
    seconds: float
    repeat: int
    quick: bool
    meta: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        payload = {
            "seconds": round(self.seconds, 6),
            "repeat": self.repeat,
            "quick": self.quick,
            "meta": self.meta,
        }
        if self.metrics:
            payload["metrics"] = self.metrics
        return payload


# -- metric collectors -------------------------------------------------------------


def _kernel_metrics(derivation: Any) -> Dict[str, Any]:
    """Kernel health of an in-process derivation: nodes, hit rate, GC."""
    context = getattr(derivation, "context", None)
    if context is None:
        return {}
    stats = context.manager.stats().as_dict()
    lookups = stats["cache_hits"] + stats["cache_misses"]
    return {
        "kernel_live_nodes": stats["live_nodes"],
        "kernel_cache_hit_rate": (
            round(stats["cache_hits"] / lookups, 4) if lookups else 0.0
        ),
        "kernel_gc_runs": stats["gc_runs"],
        "kernel_gc_reclaimed": stats["gc_reclaimed"],
        "kernel_reorder_runs": stats["reorder_runs"],
    }


def _registry_delta_metrics(delta: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a registry counter delta for the BENCH JSON snapshot."""
    return {
        key: round(entry[2], 6)
        for key, entry in sorted(delta.get("counters", {}).items())
    }


# -- scenario definitions ----------------------------------------------------------


def _setup_derive_example(quick: bool):
    arch = example_architecture(num_registers=2 if quick else 8)
    return build_functional_spec(arch)


def _run_derive_example(spec):
    return symbolic_most_liberal(spec)


def _setup_derive_firepath(quick: bool):
    if quick:
        arch = firepath_like_architecture(
            num_registers=2, deep_pipe_stages=4, loadstore_stages=3
        )
    else:
        arch = firepath_like_architecture(num_registers=8)
    return build_functional_spec(arch)


def _run_derive_firepath(spec):
    return symbolic_most_liberal(spec)


def _setup_derive_firepath_full(quick: bool):
    # The FULL 16-register FirePath — the wall PR 1 left standing: the
    # expression-side lock-step candidates never finished flattening their
    # n-ary substitution residue, and the concatenated variable order made
    # the issue conditions' BDDs exponential in the register count (~1.7M
    # nodes each).  The SymbolicFunction derivation — pure BDD iteration
    # over a register-interleaved order — finishes in milliseconds, so the
    # quick and full sizes deliberately coincide.
    arch = firepath_like_architecture(num_registers=16)
    return build_functional_spec(arch)


def _run_derive_firepath_full(spec):
    derivation = symbolic_most_liberal(spec)
    # Materialize the full artifact chain the downstream consumers need:
    # minimized ISOP covers for every closed form and the cached negations
    # (the stall covers) — the timing includes extraction, not just the
    # fixed point.
    _ = derivation.moe_expressions  # property access materializes the covers
    derivation.stall_expressions()
    return derivation


def _setup_derive_family_64r(quick: bool):
    # Scoreboard-scale stress for the array kernel: the FirePath-like
    # machine with a 64-register scoreboard (quick: 32).  Register-indexed
    # signals dominate the variable count, so this measures how derivation
    # scales with unique-table pressure rather than pipeline depth.
    arch = firepath_like_architecture(num_registers=32 if quick else 64)
    return build_functional_spec(arch)


def _setup_derive_family_256r(quick: bool):
    # The 10x-scale headline size: a 256-register scoreboard (quick: 96),
    # ~16x the variable count of the paper's example.  Intractable for the
    # expression backend; the array kernel must keep it interactive.
    arch = firepath_like_architecture(num_registers=96 if quick else 256)
    return build_functional_spec(arch)


def _run_derive_family(spec):
    derivation = symbolic_most_liberal(spec)
    _ = derivation.moe_expressions  # property access materializes the covers
    derivation.stall_expressions()
    return derivation


def _setup_taut_enum(quick: bool):
    # A genuine tautology over the control inputs: the derived most liberal
    # moe assignment substituted back into the functional specification.
    arch = example_architecture(num_registers=2)
    spec = build_functional_spec(arch)
    derivation = symbolic_most_liberal(spec)
    formula = substitute(spec.functional_formula(), derivation.moe_expressions)
    keep = 12 if quick else 18
    names = sorted(formula.variables())
    if len(names) > keep:
        formula = substitute(formula, {name: False for name in names[keep:]})
    return formula


def _run_taut_enum(formula):
    if not is_tautology_by_enumeration(formula, max_vars=None):
        raise AssertionError("benchmark formula must be a tautology")
    return True


def _example_trace(quick: bool):
    arch = example_architecture()
    spec = build_functional_spec(arch)
    interlock = ClosedFormInterlock.from_derivation(symbolic_most_liberal(spec))
    length = 64 if quick else 512
    program = WorkloadGenerator(arch, seed=7).generate(WorkloadProfile(length=length))
    trace = simulate(arch, interlock, program)
    return arch, spec, trace


def _setup_coverage(quick: bool):
    _, spec, trace = _example_trace(quick)
    return spec, [trace] * (1 if quick else 8)


def _run_coverage(state):
    spec, traces = state
    return coverage_of(spec, traces)


def _setup_monitor(quick: bool):
    _, spec, trace = _example_trace(quick)
    return testbench_assertions(spec), trace, 1 if quick else 8


def _run_monitor(state):
    assertions, trace, reps = state
    report = None
    for _ in range(reps):
        report = monitor_trace(trace, assertions)
    return report


def _setup_property_check(quick: bool):
    arch = example_architecture(num_registers=2 if quick else 8)
    spec = build_functional_spec(arch)
    conservative = ClosedFormInterlock.from_spec(
        conservative_variant(arch), name="conservative-variant"
    )
    return spec, arch, conservative


def _run_property_check(state):
    spec, arch, conservative = state
    checker = PropertyChecker(spec, architecture=arch, backend="bdd")
    functional = checker.check_functional(conservative)
    performance = checker.check_performance(conservative)
    equivalence = checker.check_equivalence_with_derived(conservative)
    if not functional.all_hold():
        raise AssertionError("conservative variant must satisfy the functional spec")
    if performance.all_hold() and equivalence.all_hold():
        raise AssertionError("conservative variant must fail the performance half")
    return functional, performance, equivalence


def _setup_campaign_sweep(quick: bool):
    from ..campaign import family_sweep

    if quick:
        # 8 small family members; still a real 2-process shard.
        return family_sweep(
            name="bench-quick",
            registers=(2,),
            widths=(1, 2),
            depths=(3, 4),
            styles=("bypass", "blocking"),
            workers=2,
            workload_length=24,
            max_faults=2,
        )
    return family_sweep(
        name="bench-full",
        registers=(2, 4),
        widths=(1, 2),
        depths=(4, 5),
        styles=("bypass", "blocking"),
        workers=2,
        workload_length=48,
        max_faults=4,
    )


def _run_campaign_sweep(spec):
    from ..campaign import run_campaign

    # No result store: every repetition re-verifies the whole family, so
    # the timing measures the orchestrated verification work, not the
    # content-hash cache.
    report = run_campaign(spec, store=None, use_cache=False)
    if not report.all_ok():
        raise AssertionError("campaign benchmark must verify the whole family")
    return report


def _setup_campaign_sweep_warm(quick: bool):
    import tempfile

    from ..campaign import ResultStore, run_campaign

    spec = _setup_campaign_sweep(quick)
    # One cold campaign populates the store (job results, per-stage
    # results, binary derivation artifacts) and warms the persistent
    # worker pool; the timed region then measures a fully warm re-run.
    # The TemporaryDirectory object rides along in the state so the store
    # survives until the benchmark's state is garbage collected.
    tempdir = tempfile.TemporaryDirectory(prefix="bench-warm-store-")
    store = ResultStore(tempdir.name)
    cold = run_campaign(spec, store=store)
    if not cold.all_ok():
        raise AssertionError("warm-campaign setup run must verify the whole family")
    return spec, store, tempdir


def _run_campaign_sweep_warm(state):
    from ..campaign import run_campaign

    spec, store, _tempdir = state
    # Everything should answer from the content-hashed store: the timing
    # is the artifact-backed warm path (hash, lookup, JSON decode), which
    # the nightly CI gate requires to be >=5x faster than the cold run.
    report = run_campaign(spec, store=store)
    if not report.all_ok():
        raise AssertionError("warm campaign must verify the whole family")
    if len(report.cached()) != report.total():
        raise AssertionError("warm campaign must answer every job from the store")
    return report


def _setup_bmc(quick: bool):
    # Large enough (4-register scoreboard, bound 6) that the timing is
    # dominated by the checker, not by per-run noise — a millisecond-scale
    # scenario makes the --check gate flap.
    arch = example_architecture(num_registers=2 if quick else 4)
    spec = build_functional_spec(arch)
    derivation = symbolic_most_liberal(spec)
    base = CombinationalModel(derivation.moe_expressions, name="example-derived")
    completion = spec.moe_flags()[-1]
    model = StuckResetModel(base, forced_values={completion: False}, cycles=2)
    return spec, environment_formula(arch), model, 2 if quick else 6


def _run_bmc(state):
    # A fresh checker per check: its per-instance caches must not carry
    # over, or the reported time is a warm-cache artefact rather than what
    # a cold check costs.  Three cold checks per timed run keep the
    # scenario long enough that scheduler jitter cannot trip the 1.5x gate.
    spec, environment, model, bound = state
    result = None
    for _ in range(3):
        checker = BoundedModelChecker(spec, environment=environment, stop_at_first=False)
        result = checker.check_performance(model, bound=bound)
    if result.holds:
        raise AssertionError("stuck-reset model must show a performance violation")
    return result


_SCENARIOS: List[Scenario] = [
    Scenario(
        name="derive_example",
        description="symbolic fixed-point derivation, paper example architecture "
        "(8-register scoreboard)",
        setup=_setup_derive_example,
        run=_run_derive_example,
        meta={"kind": "symbolic-derivation"},
        collect=_kernel_metrics,
    ),
    Scenario(
        name="derive_firepath",
        description="symbolic fixed-point derivation, FirePath-scale two-sided LIW "
        "architecture (6 pipes, 8-register scoreboard, ~157 control inputs)",
        setup=_setup_derive_firepath,
        run=_run_derive_firepath,
        meta={"kind": "symbolic-derivation"},
        collect=_kernel_metrics,
    ),
    Scenario(
        name="derive_firepath_full",
        description="symbolic fixed-point derivation + ISOP materialization, FULL "
        "16-register FirePath-scale architecture (26 stages, 277 control inputs; "
        "previously intractable in expression space)",
        setup=_setup_derive_firepath_full,
        run=_run_derive_firepath_full,
        meta={"kind": "symbolic-derivation"},
        collect=_kernel_metrics,
    ),
    Scenario(
        name="derive_family_64r",
        description="symbolic derivation + ISOP materialization, FirePath-scale "
        "architecture with a 64-register scoreboard (quick: 32 registers)",
        setup=_setup_derive_family_64r,
        run=_run_derive_family,
        meta={"kind": "symbolic-derivation"},
        collect=_kernel_metrics,
    ),
    Scenario(
        name="derive_family_256r",
        description="symbolic derivation + ISOP materialization, FirePath-scale "
        "architecture with a 256-register scoreboard (quick: 96 registers) — "
        "the 10x-scale target the array kernel must keep interactive",
        setup=_setup_derive_family_256r,
        run=_run_derive_family,
        meta={"kind": "symbolic-derivation"},
        collect=_kernel_metrics,
    ),
    Scenario(
        name="taut_enum_18",
        description="exhaustive tautology sweep over 18 control inputs "
        "(derived moe assignment substituted into the functional spec)",
        setup=_setup_taut_enum,
        run=_run_taut_enum,
        meta={"kind": "exhaustive-enumeration"},
    ),
    Scenario(
        name="coverage_sweep",
        description="specification coverage of 8 x ~1000-cycle traces of the "
        "example architecture",
        setup=_setup_coverage,
        run=_run_coverage,
        meta={"kind": "trace-sweep"},
    ),
    Scenario(
        name="assertion_monitor",
        description="assertion monitoring of 8 x ~1000-cycle traces (the inner "
        "loop of simulation and fault campaigns)",
        setup=_setup_monitor,
        run=_run_monitor,
        meta={"kind": "trace-sweep"},
    ),
    Scenario(
        name="property_check",
        description="BDD property check (functional + performance + equivalence) "
        "of the conservative interlock, paper example architecture",
        setup=_setup_property_check,
        run=_run_property_check,
        meta={"kind": "property-check"},
    ),
    Scenario(
        name="campaign_sweep",
        description="parallel verification campaign over the parametric "
        "architecture family (full job pipeline per member: properties, "
        "derivation, maximality, obligations, faults, analysis) sharded "
        "across 2 worker processes, caching disabled",
        setup=_setup_campaign_sweep,
        run=_run_campaign_sweep,
        meta={"kind": "campaign-orchestration"},
    ),
    Scenario(
        name="campaign_sweep_warm",
        description="the same family campaign re-run against a populated "
        "content-hashed result store with warm persistent workers — every "
        "job answers from cached results/artifacts, timing the incremental "
        "warm path rather than verification work",
        setup=_setup_campaign_sweep_warm,
        run=_run_campaign_sweep_warm,
        meta={"kind": "campaign-orchestration"},
    ),
    Scenario(
        name="bmc_stuck_reset",
        description="bounded performance check of a stuck-reset interlock model",
        setup=_setup_bmc,
        run=_run_bmc,
        meta={"kind": "bounded-model-check"},
    ),
]


def available_scenarios() -> List[str]:
    """Names of every registered benchmark scenario."""
    return [scenario.name for scenario in _SCENARIOS]


# -- running -----------------------------------------------------------------------


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeat: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, BenchResult]:
    """Run (a subset of) the scenarios and return their timings.

    Each scenario's setup phase is excluded from the timing; the run phase
    is repeated ``repeat`` times and the minimum is reported, which is the
    conventional low-noise estimator for wall-clock microbenchmarks.
    """
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    selected = list(_SCENARIOS)
    if names is not None:
        unknown = set(names) - set(available_scenarios())
        if unknown:
            raise ValueError(f"unknown scenario(s): {sorted(unknown)}")
        selected = [scenario for scenario in selected if scenario.name in set(names)]
    from ..obs import get_registry

    registry = get_registry()
    results: Dict[str, BenchResult] = {}
    for scenario in selected:
        if progress is not None:
            progress(f"[{scenario.name}] setup ...")
        state = scenario.setup(quick)
        # What the timed region adds to the metrics registry (campaign
        # scenarios fold their workers' kernel/store counters home) rides
        # along in the result as an informational snapshot.
        registry_before = registry.snapshot()
        best = None
        outcome = None
        for _ in range(repeat):
            # Pay off garbage from setup and earlier scenarios now, so a
            # small scenario does not absorb a gen-2 collection pause that
            # belongs to its predecessors; then suspend the cyclic
            # collector for the timed region (as pyperf does) so the
            # measurement reflects the scenario, not allocator heuristics.
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                outcome = scenario.run(state)
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            if best is None or elapsed < best:
                best = elapsed
        metrics = _registry_delta_metrics(registry.delta_since(registry_before))
        if scenario.collect is not None:
            metrics.update(scenario.collect(outcome))
        results[scenario.name] = BenchResult(
            name=scenario.name,
            seconds=best,
            repeat=repeat,
            quick=quick,
            meta=dict(scenario.meta, description=scenario.description),
            metrics=metrics,
        )
        if progress is not None:
            progress(f"[{scenario.name}] {best:.4f}s")
    return results


def write_results(results: Dict[str, BenchResult], path: str) -> None:
    """Write one benchmark run to a JSON file."""
    payload = {
        "schema": SCHEMA_VERSION,
        "scenarios": {name: result.as_dict() for name, result in results.items()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _baseline_scenarios(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Extract scenario timings from either a run file or a PR trajectory file."""
    if "scenarios" in payload:
        return payload["scenarios"]
    if "current" in payload and "scenarios" in payload["current"]:
        return payload["current"]["scenarios"]
    raise ValueError("baseline file has no 'scenarios' section")


def check_against_baseline(
    results: Dict[str, BenchResult],
    baseline_path: str,
    tolerance: float = 1.5,
    warn: Optional[Callable[[str], None]] = None,
    slack: float = 0.05,
) -> List[str]:
    """Compare fresh timings to a baseline; return a list of regression messages.

    A scenario counts as regressed when it is more than ``tolerance`` times
    slower than the baseline *and* the excess exceeds ``slack`` seconds.
    The absolute slack keeps millisecond-scale scenarios from gating on
    scheduler and memory-layout noise — on a shared VM a 3 ms scenario
    routinely doubles without any code change — while second-scale
    scenarios still gate at the relative tolerance, and a genuine blowup
    of a tiny scenario (into the tens of milliseconds) still fails.
    Scenarios absent from either side are skipped — with a message through
    ``warn`` when one is given — so the gate does not fail just because a
    new benchmark was added before the baseline was rolled.  Scenarios
    whose ``quick`` flag differs from the baseline's do fail: quick
    workloads are far smaller, so comparing a quick run against a
    full-size baseline (or vice versa) would make the gate vacuous rather
    than strict.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    baseline = _baseline_scenarios(payload)
    failures: List[str] = []
    for name, result in results.items():
        reference = baseline.get(name)
        if reference is None:
            if warn is not None:
                warn(
                    f"{name}: not in baseline {baseline_path} — skipped "
                    "(roll the baseline with --update-baseline to gate it)"
                )
            continue
        if bool(reference.get("quick")) != result.quick:
            failures.append(
                f"{name}: not comparable — this run is "
                f"{'quick' if result.quick else 'full-size'} but the baseline was "
                f"{'quick' if reference.get('quick') else 'full-size'}; "
                "rerun with matching size"
            )
            continue
        reference_seconds = float(reference["seconds"])
        if reference_seconds <= 0.0:
            continue
        ratio = result.seconds / reference_seconds
        # slack <= 0 disables the absolute forgiveness entirely (a purely
        # relative gate); comparing the excess against 0.0 instead would
        # make the verdict depend on the baseline's 6-decimal rounding.
        if ratio > tolerance and (
            slack <= 0.0 or result.seconds - reference_seconds > slack
        ):
            failures.append(
                f"{name}: {result.seconds:.4f}s vs baseline "
                f"{reference_seconds:.4f}s ({ratio:.2f}x > {tolerance:.2f}x tolerance)"
            )
    return failures
