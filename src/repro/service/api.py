"""HTTP API of the verification service (routing + handlers).

All endpoints live under ``/v1`` and speak JSON; errors share one shape,
``{"error": {"code": ..., "message": ...}}``.  The full reference with
request/response schemas and curl transcripts is ``docs/api.md`` — keep
the two in sync.

=======  ==============================  =======================================
method   path                            purpose
=======  ==============================  =======================================
GET      ``/v1/health``                  liveness, version, queue counts
GET      ``/v1/archs``                   architectures the service can verify
POST     ``/v1/jobs``                    submit a job/campaign (``202``; ``200``
                                         when answered from the cache at
                                         submission time)
GET      ``/v1/jobs``                    list jobs (``?state=`` filter)
GET      ``/v1/jobs/<id>``               one job, including its final report
GET      ``/v1/jobs/<id>/events``        NDJSON event stream (``?since=`` cursor)
POST     ``/v1/jobs/<id>/cancel``        cooperative cancellation
DELETE   ``/v1/jobs/<id>``               alias for cancel
GET      ``/v1/store``                   shared result-store telemetry
GET      ``/v1/metrics``                 process metrics — Prometheus text by
                                         default, ``?format=json`` for JSON
=======  ==============================  =======================================
"""

from __future__ import annotations

from typing import List

from ..archs import available_architectures
from .daemon import ServiceClosing, VerificationService
from .http import HttpError, Request, ResponseWriter
from .jobs import JobState, SubmissionError

__all__ = ["dispatch"]


def _job_or_404(service: VerificationService, job_id: str):
    try:
        return service.job(job_id)
    except KeyError:
        raise HttpError(404, "not_found", f"no such job: {job_id}") from None


def _method_not_allowed(method: str, path: str) -> HttpError:
    return HttpError(
        405, "method_not_allowed", f"{method} not supported on {path}"
    )


async def dispatch(
    service: VerificationService, request: Request, responder: ResponseWriter
) -> None:
    """Route one request to its handler (raises HttpError for the 4xx/5xx)."""
    parts: List[str] = [part for part in request.path.split("/") if part]
    if not parts or parts[0] != "v1":
        raise HttpError(404, "not_found", f"unknown path: {request.path}")
    rest = parts[1:]

    if rest == ["health"]:
        if request.method != "GET":
            raise _method_not_allowed(request.method, request.path)
        await responder.send_json(200, service.health())
        return

    if rest == ["archs"]:
        if request.method != "GET":
            raise _method_not_allowed(request.method, request.path)
        await responder.send_json(
            200, {"architectures": available_architectures()}
        )
        return

    if rest == ["store"]:
        if request.method != "GET":
            raise _method_not_allowed(request.method, request.path)
        summary = await service.store_summary()
        await responder.send_json(
            200, {"configured": summary is not None, "store": summary}
        )
        return

    if rest == ["metrics"]:
        if request.method != "GET":
            raise _method_not_allowed(request.method, request.path)
        fmt = request.query.get("format", "prometheus")
        registry = service.metrics_registry()
        if fmt == "json":
            await responder.send_json(200, {"metrics": registry.samples()})
        elif fmt in ("prometheus", "text"):
            await responder.send_text(
                200,
                registry.render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            raise HttpError(
                400, "bad_request", f"unknown metrics format {fmt!r}"
            )
        return

    if rest == ["jobs"]:
        if request.method == "POST":
            await _submit(service, request, responder)
            return
        if request.method == "GET":
            state = request.query.get("state")
            if state is not None and state not in JobState.ALL:
                raise HttpError(
                    400,
                    "bad_request",
                    f"unknown state {state!r}; expected one of {list(JobState.ALL)}",
                )
            await responder.send_json(
                200,
                {"jobs": [record.summary() for record in service.jobs(state)]},
            )
            return
        raise _method_not_allowed(request.method, request.path)

    if len(rest) == 2 and rest[0] == "jobs":
        job_id = rest[1]
        if request.method == "GET":
            record = _job_or_404(service, job_id)
            await responder.send_json(200, {"job": record.detail()})
            return
        if request.method == "DELETE":
            await _cancel(service, job_id, responder)
            return
        raise _method_not_allowed(request.method, request.path)

    if len(rest) == 3 and rest[0] == "jobs" and rest[2] == "cancel":
        if request.method != "POST":
            raise _method_not_allowed(request.method, request.path)
        await _cancel(service, rest[1], responder)
        return

    if len(rest) == 3 and rest[0] == "jobs" and rest[2] == "events":
        if request.method != "GET":
            raise _method_not_allowed(request.method, request.path)
        await _stream_events(service, request, rest[1], responder)
        return

    raise HttpError(404, "not_found", f"unknown path: {request.path}")


async def _submit(
    service: VerificationService, request: Request, responder: ResponseWriter
) -> None:
    payload = request.json()
    try:
        record, coalesced = await service.submit(payload)
    except SubmissionError as exc:
        raise HttpError(400, "bad_request", str(exc)) from exc
    except ServiceClosing as exc:
        raise HttpError(503, "service_unavailable", str(exc)) from exc
    # 200 when the answer is already final (cache fast path or coalesced
    # onto a finished job); 202 while work is still pending.
    status = 200 if record.terminal else 202
    await responder.send_json(
        status, {"job": record.detail(), "coalesced": coalesced}
    )


async def _cancel(
    service: VerificationService, job_id: str, responder: ResponseWriter
) -> None:
    record = _job_or_404(service, job_id)
    cancelled = service.cancel(job_id)
    await responder.send_json(
        200, {"job": record.summary(), "cancelled": cancelled}
    )


async def _stream_events(
    service: VerificationService,
    request: Request,
    job_id: str,
    responder: ResponseWriter,
) -> None:
    _job_or_404(service, job_id)
    since = request.int_query("since", 0)
    await responder.start_stream(200)
    async for event in service.stream(job_id, since=since):
        await responder.send_event(event.as_dict())
    await responder.end_stream()
