"""Blocking Python client for the verification service's HTTP API.

Stdlib-only (:mod:`http.client`), one connection per call, so it works
anywhere the daemon does — tests, scripts, CI smoke checks, the
``repro submit``/``repro jobs`` CLI verbs.  For the wire-level reference
see ``docs/api.md``.

Example::

    from repro.service import ServiceClient

    client = ServiceClient(port=8765)
    submitted = client.submit(arch="fam-r4w2d5s1-bypass")
    job = client.wait(
        submitted["job"]["id"],
        on_event=lambda e: print(e["kind"], e.get("line", "")),
    )
    assert job["state"] == "done" and job["ok"]
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Iterator, List, Optional

from .jobs import JobState

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An API error response (or an unreachable/misbehaving server)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{code} ({status}): {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Thin typed wrapper over the HTTP API.

    Args:
        host/port: where ``repro serve`` listens.
        timeout: per-connection socket timeout in seconds.  Event streams
            use it as an inactivity bound, so keep it comfortably above
            the longest silent stretch of a job (one architecture's
            derivation) rather than above whole-job runtime.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Dict[str, Any]:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    0, "unreachable", f"{self.host}:{self.port}: {exc}"
                ) from exc
            return self._parse(response.status, raw)
        finally:
            connection.close()

    @staticmethod
    def _parse(status: int, raw: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                status, "bad_response", f"non-JSON response: {exc}"
            ) from exc
        if status >= 400:
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            raise ServiceError(
                status,
                error.get("code", "error"),
                error.get("message", f"HTTP {status}"),
            )
        return payload

    # -- one call per endpoint ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def archs(self) -> List[str]:
        """``GET /v1/archs``."""
        return self._request("GET", "/v1/archs")["architectures"]

    def store(self) -> Dict[str, Any]:
        """``GET /v1/store``."""
        return self._request("GET", "/v1/store")

    def metrics(self, fmt: str = "prometheus") -> Any:
        """``GET /v1/metrics``.

        With ``fmt="json"`` returns the sample list; the default
        ``"prometheus"`` returns the raw text exposition (the one
        response in the API that is not JSON, hence the direct framing
        below instead of :meth:`_request`).
        """
        if fmt == "json":
            return self._request("GET", "/v1/metrics?format=json")["metrics"]
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request("GET", f"/v1/metrics?format={fmt}")
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    0, "unreachable", f"{self.host}:{self.port}: {exc}"
                ) from exc
            if response.status >= 400:
                self._parse(response.status, raw)  # raises with the error shape
            return raw.decode("utf-8")
        finally:
            connection.close()

    def submit(
        self,
        arch: Optional[str] = None,
        job: Optional[Dict[str, Any]] = None,
        campaign: Optional[Dict[str, Any]] = None,
        stages: Optional[Any] = None,
        priority: int = 0,
        **knobs: int,
    ) -> Dict[str, Any]:
        """``POST /v1/jobs`` — returns ``{"job": {...}, "coalesced": bool}``.

        Exactly one of ``arch``/``job``/``campaign`` selects the work;
        ``stages`` and integer workload knobs (``workload_length``,
        ``workload_seed``, ``num_programs``, ``max_faults``) only combine
        with ``arch``.
        """
        payload: Dict[str, Any] = {"priority": priority, **knobs}
        if arch is not None:
            payload["arch"] = arch
            if stages is not None:
                payload["stages"] = (
                    stages if isinstance(stages, str) else list(stages)
                )
        if job is not None:
            payload["job"] = job
        if campaign is not None:
            payload["campaign"] = campaign
        return self._request("POST", "/v1/jobs", payload)

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` (optionally filtered by lifecycle state)."""
        path = "/v1/jobs" if state is None else f"/v1/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — full record including the report."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    # -- streaming ---------------------------------------------------------------

    def stream(self, job_id: str, since: int = 0) -> Iterator[Dict[str, Any]]:
        """Iterate ``GET /v1/jobs/<id>/events`` as parsed event dicts.

        The iterator ends when the job reaches a terminal state (the
        server closes the stream); ``since`` resumes a dropped stream
        from a known ``seq`` cursor without replaying what was seen.
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request(
                    "GET", f"/v1/jobs/{job_id}/events?since={since}"
                )
                response = connection.getresponse()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    0, "unreachable", f"{self.host}:{self.port}: {exc}"
                ) from exc
            if response.status >= 400:
                self._parse(response.status, response.read())
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Follow a job to completion; returns its final full record.

        Reconnects the event stream if it drops, resuming from the last
        seen ``seq``.  Raises :class:`TimeoutError` when ``timeout``
        (seconds, wall clock) elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            for event in self.stream(job_id, since=cursor):
                cursor = event["seq"] + 1
                if on_event is not None:
                    on_event(event)
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"job {job_id} still running after {timeout}s")
            record = self.job(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
