"""Minimal stdlib-only HTTP/1.1 layer for the verification service.

Just enough HTTP, written directly on :mod:`asyncio` streams, to serve a
JSON API with long-lived streaming responses — no third-party web
framework, per the repo's zero-hard-dependency rule:

* requests: method + target + headers + optional ``Content-Length``
  body (chunked *request* bodies are not accepted);
* plain responses: ``Content-Length``-framed JSON, connection closed
  after each response (clients open one connection per call);
* streaming responses: ``Transfer-Encoding: chunked`` with one NDJSON
  event per chunk, flushed eagerly so clients observe progress live
  (``http.client`` decodes the chunk framing transparently, so a plain
  ``readline()`` loop consumes the stream — see
  :class:`repro.service.client.ServiceClient`).

Routing and handler logic live in :mod:`repro.service.api`; this module
only knows bytes and framing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bounds keeping a misbehaving client from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds allowed for a client to deliver its request.
REQUEST_TIMEOUT = 30.0

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with a JSON wire shape: status + machine code + message."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The request body as JSON (400 on anything unparsable)."""
        if not self.body:
            raise HttpError(400, "bad_request", "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "bad_request", f"invalid JSON body: {exc}") from exc

    def int_query(self, name: str, default: int = 0) -> int:
        """An integer query parameter (400 when present but malformed)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise HttpError(
                400, "bad_request", f"query parameter {name!r} must be an integer"
            ) from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; None when the client closed early."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=REQUEST_TIMEOUT
        )
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "bad_request", "request headers too large") from exc
    except asyncio.TimeoutError as exc:
        raise HttpError(408, "bad_request", "timed out reading request") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "bad_request", "request headers too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "bad_request", "malformed request line") from exc
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "bad_request", "chunked request bodies not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(400, "bad_request", "malformed Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "payload_too_large", "request body too large")
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=REQUEST_TIMEOUT
            )
        except asyncio.IncompleteReadError:
            return None
        except asyncio.TimeoutError as exc:
            raise HttpError(408, "bad_request", "timed out reading body") from exc
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


class ResponseWriter:
    """Frames responses onto one connection (plain JSON or NDJSON stream)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.started = False
        self.streaming = False

    def _head(self, status: int, extra: str) -> bytes:
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        return (
            f"HTTP/1.1 {status} {phrase}\r\n"
            "Server: repro-service\r\n"
            "Connection: close\r\n"
            f"{extra}\r\n"
        ).encode("latin-1")

    async def send_json(self, status: int, payload: Any) -> None:
        """One complete JSON response (the non-streaming endpoints)."""
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.started = True
        self._writer.write(
            self._head(
                status,
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n",
            )
            + body
        )
        await self._writer.drain()

    async def send_text(
        self,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        """One complete plain-text response (e.g. Prometheus exposition)."""
        data = body.encode("utf-8")
        self.started = True
        self._writer.write(
            self._head(
                status,
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n",
            )
            + data
        )
        await self._writer.drain()

    async def start_stream(self, status: int = 200) -> None:
        """Begin a chunked NDJSON stream (one event per chunk)."""
        self.started = True
        self.streaming = True
        self._writer.write(
            self._head(
                status,
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Cache-Control: no-store\r\n",
            )
        )
        await self._writer.drain()

    async def send_event(self, payload: Any) -> None:
        """One NDJSON line, flushed immediately so followers see it live."""
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
        await self._writer.drain()

    async def end_stream(self) -> None:
        """Terminate the chunked stream cleanly."""
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


class ServiceHTTPServer:
    """The asyncio socket server binding requests to the API dispatcher.

    ``port=0`` binds an ephemeral port; after :meth:`start` the ``port``
    attribute holds the real one (how tests and ``repro serve --port 0``
    discover it).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8765) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting connections (in-flight handlers finish on their own)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from .api import dispatch

        responder = ResponseWriter(writer)
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await dispatch(self.service, request, responder)
            except HttpError as exc:
                if not responder.started:
                    await responder.send_json(exc.status, exc.payload())
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # never leak a traceback as a hung socket
                if not responder.started:
                    error = HttpError(500, "internal", f"internal error: {exc}")
                    await responder.send_json(error.status, error.payload())
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away; nothing to tell it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
