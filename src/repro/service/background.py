"""Run the service as a foreground daemon or a background thread.

Two entry points share the same startup/shutdown choreography:

* :func:`serve_blocking` — what ``repro serve`` calls: run until
  SIGTERM/SIGINT, then drain in-flight jobs, stop the HTTP listener and
  tear down the warm worker pool;
* :func:`start_service` — an in-process harness that runs the daemon's
  event loop on a dedicated thread and hands back a
  :class:`ServiceHandle`; this is what the end-to-end tests and the
  example client use to get a real socket without a subprocess.
"""

from __future__ import annotations

import asyncio
import queue
import signal
import threading
from typing import Optional, TextIO

from ..campaign.store import ResultStore
from .client import ServiceClient
from .daemon import VerificationService
from .http import ServiceHTTPServer

__all__ = ["ServiceHandle", "serve_blocking", "start_service"]


def _build(
    store_root: Optional[str], workers: int, dedup: bool, trace: bool
) -> VerificationService:
    store = ResultStore(store_root) if store_root else None
    return VerificationService(store=store, workers=workers, dedup=dedup, trace=trace)


class ServiceHandle:
    """A live background service: address, loop handle, clean stop."""

    def __init__(
        self,
        host: str,
        port: int,
        service: VerificationService,
        loop: asyncio.AbstractEventLoop,
        stop_event: asyncio.Event,
        thread: threading.Thread,
    ) -> None:
        self.host = host
        self.port = port
        self.service = service
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread
        self._drain = True

    def client(self, timeout: float = 300.0) -> ServiceClient:
        """A client bound to this instance."""
        return ServiceClient(host=self.host, port=self.port, timeout=timeout)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Shut down and join the service thread (idempotent)."""
        self._drain = drain
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone (startup crash race)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service(
    store_root: Optional[str] = None,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    dedup: bool = True,
    trace: bool = False,
) -> ServiceHandle:
    """Start daemon + HTTP server on a fresh thread; returns once listening.

    ``port=0`` (the default) picks an ephemeral port — read it off the
    returned handle.  Startup errors (bad store path, port in use)
    re-raise here rather than being lost on the thread.
    """
    started: "queue.Queue[object]" = queue.Queue()
    holder: dict = {}

    async def _main() -> None:
        service = _build(store_root, workers, dedup, trace)
        await service.start()
        server = ServiceHTTPServer(service, host=host, port=port)
        try:
            await server.start()
        except OSError as exc:
            await service.close(drain=False)
            started.put(exc)
            return
        stop_event = asyncio.Event()
        holder["handle"] = handle = ServiceHandle(
            host=host,
            port=server.port,
            service=service,
            loop=asyncio.get_running_loop(),
            stop_event=stop_event,
            thread=threading.current_thread(),
        )
        started.put(handle)
        await stop_event.wait()
        await server.close()
        await service.close(drain=handle._drain)

    def _target() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # surface startup crashes to the caller
            started.put(exc)

    thread = threading.Thread(target=_target, name="repro-service", daemon=True)
    thread.start()
    outcome = started.get(timeout=60.0)
    if isinstance(outcome, BaseException):
        thread.join(timeout=5.0)
        raise outcome
    assert isinstance(outcome, ServiceHandle)
    return outcome


def serve_blocking(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_root: Optional[str] = ".campaign-results",
    workers: int = 2,
    dedup: bool = True,
    trace: bool = False,
    out: Optional[TextIO] = None,
) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT (``repro serve``).

    Shutdown is graceful: the in-flight job drains, queued jobs are
    cancelled, the event streams see their terminal events, and the warm
    worker pool is torn down before the process exits 0.
    """

    def emit(line: str) -> None:
        if out is not None:
            out.write(line + "\n")
            out.flush()

    async def _main() -> int:
        service = _build(store_root, workers, dedup, trace)
        await service.start()
        server = ServiceHTTPServer(service, host=host, port=port)
        try:
            await server.start()
        except OSError as exc:
            await service.close(drain=False)
            emit(f"error: cannot listen on {host}:{port}: {exc}")
            return 1
        emit(
            f"repro service listening on http://{host}:{server.port} "
            f"(store={store_root or 'disabled'}, workers={service.workers})"
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                registered.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        try:
            await stop_event.wait()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)
        emit("shutting down: draining in-flight jobs, stopping warm pool ...")
        await server.close()
        await service.close(drain=True)
        emit("service stopped")
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
