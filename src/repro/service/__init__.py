"""Verification-as-a-service: a long-running daemon over the campaign engine.

Where ``repro campaign`` is one-shot — spawn a pool, run the grid, exit —
this package keeps the engine resident and shares it between many
concurrent clients over a small HTTP API (``repro serve``):

* :mod:`repro.service.daemon` — the asyncio core: a prioritized job
  queue feeding :func:`repro.campaign.run_campaign` through a runner
  executor, per-job event logs, submission-time cache fast path,
  deduplication, cooperative cancellation, graceful shutdown that drains
  in-flight jobs and tears down the warm worker pool;
* :mod:`repro.service.jobs` — job records, lifecycle states, event log,
  submission-payload parsing;
* :mod:`repro.service.http` / :mod:`repro.service.api` — a stdlib-only
  HTTP/1.1 layer (chunked NDJSON event streams) and the ``/v1`` route
  handlers;
* :mod:`repro.service.client` — a blocking stdlib client
  (:class:`ServiceClient`) used by the CLI verbs and tests;
* :mod:`repro.service.background` — foreground (``serve_blocking``) and
  in-process background (:func:`start_service`) runners.

Minimal end-to-end use::

    from repro.service import start_service

    with start_service(store_root=".campaign-results", workers=2) as svc:
        client = svc.client()
        job_id = client.submit(arch="fam-r2w1d3s1-bypass")["job"]["id"]
        final = client.wait(job_id)
        assert final["ok"]
        # resubmitting now answers from the shared store in milliseconds
        again = client.submit(arch="fam-r2w1d3s1-bypass")
        assert again["job"]["from_cache"]

The HTTP reference is ``docs/api.md``; operating the daemon (store
layout, warm-pool lifecycle, tuning) is ``docs/operations.md``.
"""

from .background import ServiceHandle, serve_blocking, start_service
from .client import ServiceClient, ServiceError
from .daemon import ServiceClosing, VerificationService
from .http import ServiceHTTPServer
from .jobs import JobEvent, JobRecord, JobState, SubmissionError, parse_submission

__all__ = [
    "JobEvent",
    "JobRecord",
    "JobState",
    "ServiceClient",
    "ServiceClosing",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceHandle",
    "SubmissionError",
    "VerificationService",
    "parse_submission",
    "serve_blocking",
    "start_service",
]
