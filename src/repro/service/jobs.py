"""Job records and submission parsing for the verification service.

A *job* is one campaign submitted by one client (possibly a single
architecture wrapped in a one-job campaign).  Its lifecycle is a small
state machine::

    queued ──▶ running ──▶ done        (campaign ran; ``ok`` is the verdict)
       │          │  └───▶ failed      (orchestration crashed; see ``error``)
       └──────────┴──────▶ cancelled   (client or shutdown cancelled it)

Every observable change is appended to the record's ordered event log
(state transitions, per-job progress lines, streaming per-architecture
results, the final report), which is what ``GET /v1/jobs/<id>/events``
replays and follows.  The event log is append-only and lives on the
daemon's event loop thread; worker threads publish into it via
``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.spec import CampaignSpec, CampaignSpecError, JobSpec


class JobState:
    """String constants for the job lifecycle (also the wire format)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})
    #: Every state, in lifecycle order (used to validate filters).
    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


class SubmissionError(ValueError):
    """Raised for malformed or unresolvable submissions (HTTP 400)."""


@dataclass(frozen=True)
class JobEvent:
    """One entry of a job's append-only event log.

    ``data`` is flattened into the wire representation, so an event
    serializes as ``{"seq": 3, "at": ..., "kind": "progress", ...data}``;
    ``seq`` is the log index, which is also the ``since`` cursor for
    resuming a dropped event stream.
    """

    seq: int
    kind: str
    at: float
    data: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        payload = {"seq": self.seq, "at": round(self.at, 6), "kind": self.kind}
        payload.update(self.data)
        return payload


class JobRecord:
    """One submitted campaign and everything observed about it so far.

    Mutable state (``state``, ``events``, timestamps, ``report``) is only
    ever touched on the daemon's event loop thread; the runner thread
    communicates through ``cancel_event`` (loop → thread) and
    ``call_soon_threadsafe`` publishes (thread → loop).  ``changed`` is an
    :class:`asyncio.Event` set on every publish so any number of stream
    consumers can wait for news without polling.
    """

    def __init__(
        self, job_id: str, spec: CampaignSpec, priority: int, submitted_at: float
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.priority = priority
        self.key = spec.campaign_key()
        self.state: str = JobState.QUEUED
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.ok: Optional[bool] = None
        self.error: Optional[str] = None
        self.report: Optional[Dict[str, Any]] = None
        self.from_cache = False
        self.events: List[JobEvent] = []
        self.changed = asyncio.Event()
        self.cancel_event = threading.Event()

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def publish(self, kind: str, data: Dict[str, Any]) -> JobEvent:
        """Append an event and wake every stream consumer (loop thread only)."""
        event = JobEvent(seq=len(self.events), kind=kind, at=time.time(), data=data)
        self.events.append(event)
        self.changed.set()
        return event

    def summary(self) -> Dict[str, Any]:
        """The compact JSON representation used in job listings."""
        return {
            "id": self.id,
            "state": self.state,
            "ok": self.ok,
            "priority": self.priority,
            "campaign": self.spec.name,
            "jobs": len(self.spec.jobs),
            "archs": [job.arch for job in self.spec.jobs],
            "from_cache": self.from_cache,
            "submitted_at": round(self.submitted_at, 6),
            "started_at": None
            if self.started_at is None
            else round(self.started_at, 6),
            "finished_at": None
            if self.finished_at is None
            else round(self.finished_at, 6),
            "events": len(self.events),
            "error": self.error,
        }

    def detail(self) -> Dict[str, Any]:
        """The full JSON representation (summary + spec + final report)."""
        payload = self.summary()
        payload["spec"] = self.spec.to_dict()
        payload["report"] = self.report
        return payload


#: Top-level keys a submission payload may carry.
_SUBMISSION_KEYS = frozenset(
    {
        "campaign",
        "job",
        "arch",
        "priority",
        "stages",
        "workload_length",
        "workload_seed",
        "num_programs",
        "max_faults",
    }
)

#: Per-job knobs accepted alongside the ``arch`` shorthand.
_ARCH_KNOBS = ("workload_length", "workload_seed", "num_programs", "max_faults")


def parse_submission(payload: Any) -> Tuple[CampaignSpec, int]:
    """Normalize a submission payload into ``(CampaignSpec, priority)``.

    Three equivalent shapes are accepted (exactly one per submission):

    ``{"arch": "fam-r4w2d5s1-bypass", "stages": "properties,derive"}``
        the shorthand — one architecture with optional per-job knobs;
    ``{"job": {...JobSpec dict...}}``
        one fully-specified job;
    ``{"campaign": {...CampaignSpec dict...}}``
        a whole multi-job campaign.

    ``priority`` (int, default 0; larger runs sooner) rides alongside any
    shape.  Raises :class:`SubmissionError` on anything malformed — the
    HTTP layer maps that to a 400 with the message.
    """
    if not isinstance(payload, dict):
        raise SubmissionError("submission must be a JSON object")
    unknown = set(payload) - _SUBMISSION_KEYS
    if unknown:
        raise SubmissionError(f"unknown submission fields: {sorted(unknown)}")
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise SubmissionError("priority must be an integer")
    sources = [k for k in ("campaign", "job", "arch") if k in payload]
    if len(sources) != 1:
        raise SubmissionError(
            "submission needs exactly one of 'campaign', 'job' or 'arch'"
        )
    source = sources[0]
    if source != "arch":
        stray = [k for k in ("stages",) + _ARCH_KNOBS if k in payload]
        if stray:
            raise SubmissionError(
                f"fields {stray} only apply to 'arch' submissions; put them "
                f"inside the {source!r} object instead"
            )
    try:
        if source == "campaign":
            spec = CampaignSpec.from_dict(payload["campaign"])
        elif source == "job":
            job = JobSpec.from_dict(payload["job"])
            spec = CampaignSpec(name=f"job-{job.arch}", jobs=(job,), workers=1)
        else:
            arch = payload["arch"]
            if not isinstance(arch, str) or not arch:
                raise SubmissionError("'arch' must be a non-empty string")
            knobs: Dict[str, Any] = {}
            for name in _ARCH_KNOBS:
                if name in payload:
                    value = payload[name]
                    if isinstance(value, bool) or not isinstance(value, int):
                        raise SubmissionError(f"{name} must be an integer")
                    knobs[name] = value
            stages = payload.get("stages")
            if stages is not None:
                if isinstance(stages, str):
                    stages = [part.strip() for part in stages.split(",") if part.strip()]
                if not isinstance(stages, (list, tuple)) or not all(
                    isinstance(s, str) for s in stages
                ):
                    raise SubmissionError(
                        "stages must be a comma-separated string or a list of strings"
                    )
                knobs["stages"] = tuple(stages)
            job = JobSpec(arch=arch, **knobs)
            spec = CampaignSpec(name=f"job-{arch}", jobs=(job,), workers=1)
    except CampaignSpecError as exc:
        raise SubmissionError(str(exc)) from exc
    return spec, priority
