"""The asyncio verification-service core.

:class:`VerificationService` wraps the batch campaign engine
(:func:`repro.campaign.run_campaign`) in a persistent prioritized job
queue that many concurrent clients share:

* **One event loop, zero blocking.**  Campaigns execute on a dedicated
  single-thread runner executor via ``run_in_executor``; the campaign's
  ``progress``/``on_result`` callbacks hop back onto the loop with
  ``call_soon_threadsafe``, feeding each job's append-only event log that
  any number of HTTP streams replay and follow concurrently.
* **One shared cache.**  All jobs read and write the same
  :class:`~repro.campaign.store.ResultStore`; a submission whose every
  job is already stored is answered *at submission time* from a light
  probe executor — milliseconds, no queueing — which is what makes hot
  architectures cheap no matter how busy the queue is.
* **One warm worker pool.**  The campaign layer's persistent fork pool
  (live BDD state per worker) stays warm across jobs and clients; the
  service's graceful shutdown drains in-flight work and then tears the
  pool down explicitly via
  :func:`~repro.campaign.orchestrator.shutdown_warm_pool` (the atexit
  hook remains only as a backstop for non-service embedders).
* **Priorities, deduplication, cancellation.**  Higher-priority
  submissions run first (FIFO within a priority); identical concurrent
  submissions coalesce onto one running job by campaign content hash;
  cancellation is cooperative and job-granular via the orchestrator's
  ``should_stop`` hook.

The HTTP surface over this core lives in :mod:`repro.service.api` /
:mod:`repro.service.http`; this module is usable directly from any
asyncio program.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..archs import load_architecture
from ..campaign.orchestrator import (
    CampaignCancelled,
    run_campaign,
    shutdown_warm_pool,
)
from ..campaign.report import CampaignReport
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..obs import MetricsRegistry, get_registry
from .jobs import JobRecord, JobState, parse_submission

__all__ = ["ServiceClosing", "VerificationService"]


class ServiceClosing(RuntimeError):
    """Raised for submissions that arrive during shutdown (HTTP 503)."""


def _validate_archs(spec: CampaignSpec) -> None:
    """Resolve every architecture name so bad submissions fail fast (400).

    Runs on the probe executor: resolving a family name builds the
    architecture object, which is cheap next to verification but not
    event-loop cheap.
    """
    from .jobs import SubmissionError

    for job in spec.jobs:
        try:
            load_architecture(job.arch)
        except Exception as exc:
            raise SubmissionError(f"unknown architecture {job.arch!r}: {exc}") from exc


class VerificationService:
    """Shared async job queue over the campaign engine.

    Args:
        store: the result store every job shares, or None to disable
            caching entirely (each job then recomputes from scratch).
        workers: worker-process count for each campaign run; submissions
            cannot raise it (the pool is a shared resource), their
            spec's own ``workers`` field is ignored.
        dedup: coalesce concurrent identical submissions (same
            :meth:`~repro.campaign.spec.CampaignSpec.campaign_key`) onto
            one queued/running job.
        trace: run every campaign with span tracing forced on (job
            traces land in the store as NDJSON); the default False still
            honors a ``REPRO_TRACE=1`` environment.

    Lifecycle: ``await start()`` once from the owning event loop, then
    any number of :meth:`submit`/:meth:`stream`/:meth:`cancel` calls,
    then ``await close()`` exactly once.  All public methods must be
    called from the owning loop.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        dedup: bool = True,
        trace: bool = False,
    ) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.dedup = dedup
        self.trace = bool(trace)
        self.started_at = time.time()
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._active_key: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self._fifo = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: "Optional[asyncio.PriorityQueue[Tuple[int, int, str]]]" = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stall_task: Optional[asyncio.Task] = None
        self._runner: Optional[ThreadPoolExecutor] = None
        self._probe: Optional[ThreadPoolExecutor] = None
        self._closing = False
        self._closed = False
        self._current_job_id: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the scheduler."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        # One runner thread: campaigns already shard over the process
        # pool internally, and serializing them keeps the warm pool's
        # per-architecture state coherent.  The probe pool handles the
        # cheap off-loop work (cache probes, arch validation, telemetry).
        self._runner = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-runner"
        )
        self._probe = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-probe"
        )
        self._scheduler_task = asyncio.create_task(self._scheduler())
        if os.environ.get("REPRO_SANITIZE"):
            # Sanitize mode: watch our own event loop for stalls — any
            # blocking call that slips onto the loop thread (the RPL005
            # lint's bug class) surfaces as an EventLoopStallWarning with
            # the measured lag instead of silently freezing every stream.
            from ..devtools.sanitizer import loop_stall_monitor

            self._stall_task = asyncio.create_task(loop_stall_monitor())

    async def close(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, settle the queue, free the pool.

        With ``drain`` (the default) the currently running job completes
        and lands in the store; without it the running job is cancelled
        cooperatively (already-dispatched architectures still finish —
        see :class:`~repro.campaign.orchestrator.CampaignCancelled`).
        Queued jobs are cancelled either way, then the persistent warm
        worker pool is shut down explicitly — this is the documented
        lifecycle owner of
        :func:`~repro.campaign.orchestrator.shutdown_warm_pool`, which
        otherwise only runs from its atexit backstop.
        """
        if self._closed:
            return
        self._closing = True
        for job_id in self._order:
            record = self._jobs[job_id]
            if record.state == JobState.QUEUED:
                self.cancel(job_id)
        current = self._jobs.get(self._current_job_id or "")
        if current is not None and not current.terminal:
            if not drain:
                current.cancel_event.set()
            while not current.terminal:
                current.changed.clear()
                if current.terminal:
                    break
                await current.changed.wait()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._stall_task is not None:
            self._stall_task.cancel()
            try:
                await self._stall_task
            except asyncio.CancelledError:
                pass
            self._stall_task = None
        assert self._loop is not None and self._probe is not None
        await self._loop.run_in_executor(self._probe, shutdown_warm_pool)
        if self._runner is not None:
            self._runner.shutdown(wait=True)
        self._probe.shutdown(wait=True)
        self._closed = True

    # -- submission --------------------------------------------------------------

    async def submit(self, payload: Any) -> Tuple[JobRecord, bool]:
        """Accept a submission; returns ``(record, coalesced)``.

        Raises :class:`~repro.service.jobs.SubmissionError` for bad
        payloads and :class:`ServiceClosing` during shutdown.  When every
        job of the campaign is already in the store, the returned record
        is terminal (``done``, ``from_cache``) before this coroutine
        returns — the warm-cache fast path.
        """
        if self._closing:
            raise ServiceClosing("service is shutting down; submission refused")
        assert self._loop is not None and self._probe is not None
        spec, priority = parse_submission(payload)
        await self._loop.run_in_executor(self._probe, _validate_archs, spec)
        if self.dedup:
            existing_id = self._active_key.get(spec.campaign_key())
            existing = self._jobs.get(existing_id or "")
            if existing is not None and not existing.terminal:
                get_registry().inc("repro_service_coalesced_total")
                return existing, True
        get_registry().inc("repro_service_submissions_total")
        record = JobRecord(
            f"job-{next(self._ids):06d}", spec, priority, time.time()
        )
        self._jobs[record.id] = record
        self._order.append(record.id)
        self._active_key[record.key] = record.id
        record.publish(
            "state",
            {
                "state": JobState.QUEUED,
                "campaign": spec.name,
                "jobs": len(spec.jobs),
                "priority": priority,
            },
        )
        if self.store is not None:
            report = await self._loop.run_in_executor(
                self._probe, self._probe_cache, spec
            )
            if report is not None:
                self._finish_cached(record, report)
                return record, False
        assert self._queue is not None
        self._queue.put_nowait((-priority, next(self._fifo), record.id))
        return record, False

    def _probe_cache(self, spec: CampaignSpec) -> Optional[CampaignReport]:
        """Serve a fully-cached campaign straight from the store (probe thread).

        Returns None — falling back to the queue — unless *every* job of
        the campaign has a valid stored result.  The existence pre-check
        keeps fresh submissions from skewing the miss tally.
        """
        store = self.store
        assert store is not None
        if not all(store.path_for(job).exists() for job in spec.jobs):
            return None
        start = time.perf_counter()
        before = store.stats_snapshot()
        results = []
        for job in spec.jobs:
            result = store.get(job)
            if result is None:  # corrupt or raced away: run it for real
                return None
            result.cached = True
            results.append(result)
        stats = store.stats_snapshot().diff(before)
        return CampaignReport(
            name=spec.name,
            results=results,
            workers=0,
            wall_seconds=time.perf_counter() - start,
            store_stats=stats,
        )

    def _finish_cached(self, record: JobRecord, report: CampaignReport) -> None:
        """Terminal bookkeeping for the submission-time cache fast path."""
        get_registry().inc("repro_service_cache_answers_total")
        record.from_cache = True
        for result in report.results:
            record.publish(
                "result",
                {
                    "arch": result.job.arch,
                    "ok": result.ok,
                    "cached": True,
                    "seconds": round(result.seconds, 6),
                    "failed_stages": result.failed_stages(),
                },
            )
        self._finalize(record, JobState.DONE, report.as_dict(), report.all_ok(), None)

    # -- queries -----------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        """Look up a record (KeyError when unknown — HTTP 404 upstream)."""
        return self._jobs[job_id]

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All records in submission order, optionally filtered by state."""
        records = [self._jobs[job_id] for job_id in self._order]
        if state is not None:
            records = [record for record in records if record.state == state]
        return records

    def state_counts(self) -> Dict[str, int]:
        """How many jobs sit in each lifecycle state."""
        counts = {state: 0 for state in JobState.ALL}
        for job_id in self._order:
            counts[self._jobs[job_id].state] += 1
        return counts

    def health(self) -> Dict[str, Any]:
        """JSON-ready liveness/telemetry snapshot (``GET /v1/health``)."""
        return {
            "status": "closing" if self._closing else "ok",
            "version": __version__,
            "started_at": round(self.started_at, 6),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "store": None if self.store is None else str(self.store.root),
            "dedup": self.dedup,
            "jobs": self.state_counts(),
            "running": self._current_job_id,
        }

    async def store_summary(self) -> Optional[Dict[str, Any]]:
        """The shared store's telemetry, or None when caching is disabled."""
        if self.store is None:
            return None
        assert self._loop is not None and self._probe is not None
        return await self._loop.run_in_executor(self._probe, self.store.summary)

    def metrics_registry(self) -> MetricsRegistry:
        """The process registry with the service's live gauges refreshed.

        Serves ``GET /v1/metrics``; the refresh is a handful of dict
        writes, cheap enough for the loop thread.
        """
        registry = get_registry()
        counts = self.state_counts()
        registry.set_gauge("repro_service_queue_depth", counts[JobState.QUEUED])
        registry.set_gauge("repro_service_jobs_running", counts[JobState.RUNNING])
        return registry

    # -- cancellation ------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable.

        Queued jobs cancel immediately; the running job's cancel event
        makes the orchestrator stop dispatching further architectures
        (already-dispatched ones drain — job-granular, see
        :class:`~repro.campaign.orchestrator.CampaignCancelled`).
        """
        record = self._jobs[job_id]
        if record.terminal:
            return False
        record.cancel_event.set()
        if record.state == JobState.QUEUED:
            self._finalize(record, JobState.CANCELLED, None, None, None)
        return True

    # -- event streaming ---------------------------------------------------------

    async def stream(self, job_id: str, since: int = 0):
        """Async-iterate a job's events from ``since`` until it is terminal.

        Replays the existing log first, then follows live publishes; the
        generator ends once the job is terminal and fully replayed, so a
        consumer that drains it has seen the final state transition.
        """
        record = self._jobs[job_id]
        index = max(0, since)
        while True:
            record.changed.clear()
            while index < len(record.events):
                yield record.events[index]
                index += 1
            if record.terminal:
                return
            await record.changed.wait()

    # -- execution ---------------------------------------------------------------

    async def _scheduler(self) -> None:
        """Pull jobs off the priority queue, one campaign at a time."""
        assert self._queue is not None and self._loop is not None
        while True:
            _, _, job_id = await self._queue.get()
            record = self._jobs[job_id]
            if record.state != JobState.QUEUED:
                continue  # cancelled while queued
            self._current_job_id = job_id
            try:
                await self._loop.run_in_executor(
                    self._runner, self._execute, record
                )
            finally:
                self._current_job_id = None

    def _execute(self, record: JobRecord) -> None:
        """Run one campaign on the runner thread, publishing to the loop."""
        assert self._loop is not None
        loop = self._loop

        def post(callback, *args) -> None:
            loop.call_soon_threadsafe(callback, *args)

        if record.cancel_event.is_set():
            post(self._finalize, record, JobState.CANCELLED, None, None, None)
            return
        post(self._transition, record, JobState.RUNNING, {})
        try:
            report = run_campaign(
                record.spec,
                store=self.store,
                workers=self.workers,
                progress=lambda line: post(
                    record.publish, "progress", {"line": line}
                ),
                on_result=lambda result: post(
                    record.publish,
                    "result",
                    {
                        "arch": result.job.arch,
                        "ok": result.ok,
                        "cached": result.cached,
                        "seconds": round(result.seconds, 6),
                        "failed_stages": result.failed_stages(),
                    },
                ),
                should_stop=record.cancel_event.is_set,
                trace=True if self.trace else None,
            )
        except CampaignCancelled as exc:
            post(self._finalize, record, JobState.CANCELLED, None, None, str(exc))
        except Exception:
            post(
                self._finalize,
                record,
                JobState.FAILED,
                None,
                None,
                traceback.format_exc(),
            )
        else:
            post(
                self._finalize,
                record,
                JobState.DONE,
                report.as_dict(),
                report.all_ok(),
                None,
            )

    # -- state transitions (loop thread only) ------------------------------------

    def _transition(self, record: JobRecord, state: str, data: Dict[str, Any]) -> None:
        """Move a record to a new state and publish it (terminal states stick)."""
        if record.terminal:
            return
        record.state = state
        now = time.time()
        if state == JobState.RUNNING:
            record.started_at = now
            get_registry().observe(
                "repro_service_queue_wait_seconds", max(0.0, now - record.submitted_at)
            )
        if state in JobState.TERMINAL:
            record.finished_at = now
            get_registry().inc("repro_service_jobs_total", state=state)
            if self._active_key.get(record.key) == record.id:
                del self._active_key[record.key]
        record.publish("state", {"state": state, **data})

    def _finalize(
        self,
        record: JobRecord,
        state: str,
        report: Optional[Dict[str, Any]],
        ok: Optional[bool],
        error: Optional[str],
    ) -> None:
        """Record a terminal outcome exactly once (loop thread only)."""
        if record.terminal:
            return
        record.report = report
        record.ok = ok
        record.error = error
        data: Dict[str, Any] = {"ok": ok}
        if report is not None:
            data["passed"] = report.get("passed")
            data["total"] = report.get("total")
            data["wall_seconds"] = report.get("wall_seconds")
            data["from_cache"] = record.from_cache
        if error is not None:
            data["error"] = error
        self._transition(record, state, data)
