"""Command-line front end: the Section 5 tool.

The paper closes with: "We are now working on a tool which, given a
functional specification that has the properties mentioned in Section 3.1,
generates the corresponding performance specification and also
Verilog/VHDL assertions."  This module is that tool (plus the further-work
items: property checking, simulation with the generated assertions, and
interlock RTL synthesis), exposed as ``python -m repro``.

Sub-commands
------------

========================  =====================================================
``list-archs``            list the bundled example architectures
``show-arch``             describe an architecture and draw its pipeline diagram
``spec``                  print the functional / performance / combined spec,
                          or export it in the text interchange format
``derive``                print the closed-form most liberal moe assignment
``check-properties``      verify the Section 3.1 preconditions
``assertions``            emit testbench assertions as SVA or PSL
``synth``                 synthesise interlock RTL (Verilog or VHDL)
``check``                 exhaustively property-check an interlock variant
``simulate``              run the cycle-accurate simulator with the generated
                          assertions armed, report stalls / coverage, dump VCD
``bench``                 time the paper benchmarks (symbolic derivation,
                          exhaustive sweeps, property checking) and write JSON
``campaign``              shard end-to-end verification jobs over many
                          architectures (a parametric family sweep and/or
                          named designs) across persistent worker processes,
                          with content-hashed result, stage and BDD-artifact
                          caching (``--incremental`` replays unchanged stages)
``artifact``              inspect the binary BDD artifacts in a result store
                          (variable order, node counts, payload metadata)
``serve``                 run the verification service daemon: a persistent
                          job queue over the campaign engine with an HTTP API,
                          shared result store and warm worker pool
                          (see ``docs/api.md`` / ``docs/operations.md``)
``submit``                submit a job to a running daemon and (by default)
                          follow its event stream to completion
``jobs``                  list/inspect/cancel the daemon's jobs, or show the
                          shared store's telemetry
``trace``                 render a stored campaign trace (NDJSON spans) as a
                          process waterfall or a per-span rollup table
========================  =====================================================

Every sub-command accepts either ``--arch <name>`` (a bundled architecture
or a parametric family member such as ``fam-r4w2d5s1-bypass``) or
``--spec-file <path>`` (a functional specification in the
:mod:`repro.spec.textio` format); simulation requires an architecture.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from .analysis import classify_stalls, coverage_of
from .archs import available_architectures, load_architecture
from .assertions import (
    monitor_trace,
    psl_vunit,
    sva_module,
    testbench_assertions,
)
from .checking import PropertyChecker
from .pipeline import ClosedFormInterlock, simulate, write_vcd_file
from .spec import (
    build_functional_spec,
    check_all_properties,
    conservative_variant,
    derive_combined_spec,
    derive_performance_spec,
    dumps_spec,
    load_spec_file,
    symbolic_most_liberal,
)
from .spec.functional import FunctionalSpec
from .synth import (
    behavioural_verilog,
    behavioural_vhdl,
    optimize_derivation,
    synthesis_to_verilog,
    synthesis_to_vhdl,
    synthesize_interlock,
)
from .workloads import (
    BALANCED,
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WAIT_HEAVY,
    WorkloadGenerator,
    WorkloadProfile,
)

__all__ = ["main", "build_parser"]

_PROFILES = {
    "balanced": BALANCED,
    "hazard-heavy": HAZARD_HEAVY,
    "contention-heavy": CONTENTION_HEAVY,
    "wait-heavy": WAIT_HEAVY,
}


class CliError(RuntimeError):
    """Raised for user-facing command-line errors."""


_ARCH_HELP = (
    "use a registered architecture (see 'repro list-archs') or a parametric "
    "family name like 'fam-r4w2d5s1-bypass'"
)


def _add_source_arguments(parser: argparse.ArgumentParser, require_arch: bool = False) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--arch", help=_ARCH_HELP)
    if not require_arch:
        group.add_argument(
            "--spec-file",
            help="load a functional specification from a text file instead",
        )


def _resolve(args: argparse.Namespace):
    """Return (architecture-or-None, functional spec) for the selected source."""
    if getattr(args, "arch", None):
        architecture = load_architecture(args.arch)
        return architecture, build_functional_spec(architecture)
    spec = load_spec_file(args.spec_file)
    return None, spec


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximum-performance verification of interlocked pipeline control logic "
                    "(Eder & Barrett, DAC 2002).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-archs", help="list the bundled example architectures")

    show = subparsers.add_parser("show-arch", help="describe a bundled architecture")
    show.add_argument("--arch", required=True, help=_ARCH_HELP)

    spec = subparsers.add_parser("spec", help="print or export the specification")
    _add_source_arguments(spec)
    spec.add_argument(
        "--kind",
        choices=["functional", "performance", "combined"],
        default="functional",
        help="which specification to print (default: functional)",
    )
    spec.add_argument(
        "--format",
        choices=["text", "unicode", "specfile"],
        default="text",
        help="output format; 'specfile' writes the text interchange format "
             "(functional specification only)",
    )

    derive = subparsers.add_parser("derive", help="print the most liberal moe closed forms")
    _add_source_arguments(derive)
    derive.add_argument(
        "--backend",
        choices=["bdd", "expr"],
        default="bdd",
        help="fixed-point engine: 'bdd' iterates on canonical BDD nodes and "
             "prints minimized ISOP covers (default); 'expr' is the DEPRECATED "
             "legacy expression pipeline, kept only for A/B debugging — it "
             "re-flattens substitution residue each step and cannot complete "
             "the largest architectures",
    )
    derive.add_argument(
        "--verbose",
        action="store_true",
        help="also print BDD kernel statistics (node counts, cache hit rates, "
             "GC and reorder activity) after the closed forms",
    )

    props = subparsers.add_parser(
        "check-properties", help="verify the Section 3.1 preconditions of the method"
    )
    _add_source_arguments(props)

    assertions = subparsers.add_parser("assertions", help="emit testbench assertions")
    _add_source_arguments(assertions)
    assertions.add_argument(
        "--language", choices=["sva", "psl"], default="sva", help="assertion language"
    )
    assertions.add_argument(
        "--module-name", default="pipeline_spec_checker", help="generated checker module name"
    )

    synth = subparsers.add_parser("synth", help="synthesise interlock RTL")
    _add_source_arguments(synth)
    synth.add_argument("--language", choices=["verilog", "vhdl"], default="verilog")
    synth.add_argument(
        "--style",
        choices=["netlist", "behavioural"],
        default="behavioural",
        help="gate-level netlist or one continuous assignment per moe flag",
    )
    synth.add_argument(
        "--optimize",
        action="store_true",
        help="run two-level minimisation on the derived equations before emitting",
    )

    check = subparsers.add_parser("check", help="property-check an interlock variant")
    _add_source_arguments(check)
    check.add_argument(
        "--implementation",
        choices=["derived", "conservative"],
        default="derived",
        help="which interlock to check: the derived maximum-performance one or the "
             "conservative (stall-on-any-outstanding-register) variant",
    )
    check.add_argument("--backend", choices=["bdd", "sat"], default="bdd")

    sim = subparsers.add_parser(
        "simulate", help="simulate with the generated assertions armed"
    )
    sim.add_argument("--arch", required=True, help=_ARCH_HELP)
    sim.add_argument("--profile", choices=sorted(_PROFILES), default="balanced")
    sim.add_argument("--length", type=int, default=64, help="instructions per pipe")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--vcd", help="write the control-signal waveform to this VCD file")
    sim.add_argument(
        "--coverage", action="store_true", help="also print specification coverage"
    )

    bench = subparsers.add_parser(
        "bench", help="time the paper benchmarks and write the results as JSON"
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    bench.add_argument("--list", action="store_true", help="list scenarios and exit")
    bench.add_argument(
        "--quick", action="store_true", help="smoke-test sizes (for CI); seconds, not minutes"
    )
    bench.add_argument("--repeat", type=int, default=1, help="timed repetitions per scenario")
    bench.add_argument("--out", help="write the timings to this JSON file")
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline and exit non-zero on regression",
    )
    bench.add_argument(
        "--baseline",
        default="BENCH_PR1.json",
        help="baseline JSON for --check (default: BENCH_PR1.json)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="allowed slow-down factor before --check fails (default: 1.5)",
    )
    bench.add_argument(
        "--slack",
        type=float,
        default=0.05,
        help="absolute seconds of excess forgiven before --check fails, so "
        "millisecond-scale scenarios do not gate on timer noise (default: 0.05)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run a parallel verification campaign over many architectures",
        description="Shard end-to-end verification jobs (properties, derivation, "
        "maximality, obligations, fault campaign, stall/coverage analysis) over "
        "a parametric architecture family and/or named designs across worker "
        "processes, with content-hashed result caching.",
    )
    campaign.add_argument(
        "--campaign-file",
        help="load a declarative campaign spec (JSON) instead of building one "
        "from the grid options below",
    )
    campaign.add_argument(
        "--arch",
        action="append",
        dest="extra_archs",
        metavar="NAME",
        help="also verify this architecture (repeatable); with "
        "--no-family the campaign is only these",
    )
    campaign.add_argument(
        "--registers", default="2,4", help="family axis: register counts (CSV)"
    )
    campaign.add_argument(
        "--widths", default="1,2", help="family axis: issue widths (CSV)"
    )
    campaign.add_argument(
        "--depths", default="3,4,5", help="family axis: deep-pipe depths (CSV)"
    )
    campaign.add_argument(
        "--latency-steps", default="1", help="family axis: latency steps (CSV)"
    )
    campaign.add_argument(
        "--styles",
        default="bypass,blocking",
        help="family axis: scoreboard styles (CSV of bypass/blocking)",
    )
    campaign.add_argument(
        "--no-family",
        action="store_true",
        help="skip the family grid and verify only the --arch names",
    )
    campaign.add_argument(
        "--stages",
        help="comma-separated subset of verification stages "
        "(default: all — properties,derive,maximality,obligations,faults,analysis)",
    )
    campaign.add_argument(
        "--length", type=int, default=48, help="workload length per job (default: 48)"
    )
    campaign.add_argument("--seed", type=int, default=0, help="workload seed")
    campaign.add_argument(
        "--max-faults",
        type=int,
        default=4,
        help="faults injected per job, 0 disables (default: 4)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: the campaign spec's value; 2 for sweeps)",
    )
    campaign.add_argument(
        "--store",
        default=".campaign-results",
        help="result-store directory for content-hashed caching "
        "(default: .campaign-results)",
    )
    campaign.add_argument(
        "--no-cache",
        action="store_true",
        help="re-verify every configuration even when a cached result exists",
    )
    campaign.add_argument(
        "--incremental",
        action="store_true",
        help="replay stored per-stage results whose dependency hashes are "
        "unchanged instead of re-executing those stages (requires --store); "
        "e.g. after changing only the workload seed, the structural stages "
        "answer from the store and only faults/analysis re-run",
    )
    campaign.add_argument(
        "--report", help="write the aggregate report (JSON) to this file"
    )
    campaign.add_argument(
        "--save-campaign",
        help="write the declarative campaign spec (JSON) to this file",
    )
    campaign.add_argument(
        "--list",
        action="store_true",
        help="list the campaign's jobs and exit without verifying",
    )
    campaign.add_argument(
        "--trace",
        action="store_true",
        help="record a structured span trace of the run (equivalent to "
        "REPRO_TRACE=1): per-job NDJSON traces land in the result store "
        "and the report gains per-span rollups; view with 'repro trace'",
    )

    artifact = subparsers.add_parser(
        "artifact",
        help="inspect binary BDD artifacts in a campaign result store",
        description="Summarize serialized derivation artifacts: variable "
        "order, node counts, roots, payload metadata and stored covers.",
    )
    artifact_source = artifact.add_mutually_exclusive_group(required=True)
    artifact_source.add_argument(
        "--store",
        help="result-store directory; lists every artifact-*.bdd it holds",
    )
    artifact_source.add_argument(
        "--file", help="inspect one artifact file in detail"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the verification service daemon (HTTP API over the campaign engine)",
        description="Long-running asyncio daemon: accepts derivation/verification "
        "jobs over HTTP, streams per-job progress, shares one result store and "
        "warm worker pool across all clients, and drains in-flight jobs on "
        "SIGINT/SIGTERM.  API reference: docs/api.md; operations: docs/operations.md.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (default: 8765; 0 picks an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--store",
        default=".campaign-results",
        help="shared result-store directory; empty string disables caching "
        "(default: .campaign-results)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes per campaign run (default: 2)",
    )
    serve.add_argument(
        "--no-dedup",
        action="store_true",
        help="do not coalesce concurrent identical submissions onto one job",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="trace every campaign the daemon runs (equivalent to starting "
        "it with REPRO_TRACE=1); traces land in the shared result store",
    )

    _SERVICE_ADDRESS = "address of a running 'repro serve' daemon"
    submit = subparsers.add_parser(
        "submit",
        help="submit a verification job to a running service daemon",
        description="Submit one architecture (or a declarative campaign file) to "
        "a 'repro serve' daemon, then follow the job's event stream and exit "
        "with its verdict.",
    )
    submit_source = submit.add_mutually_exclusive_group(required=True)
    submit_source.add_argument("--arch", help=_ARCH_HELP)
    submit_source.add_argument(
        "--campaign-file", help="submit a declarative campaign spec (JSON) instead"
    )
    submit.add_argument("--host", default="127.0.0.1", help=_SERVICE_ADDRESS)
    submit.add_argument("--port", type=int, default=8765, help=_SERVICE_ADDRESS)
    submit.add_argument(
        "--stages",
        help="comma-separated subset of verification stages (with --arch; "
        "default: all)",
    )
    submit.add_argument(
        "--length", type=int, default=None, help="workload length (with --arch)"
    )
    submit.add_argument(
        "--seed", type=int, default=None, help="workload seed (with --arch)"
    )
    submit.add_argument(
        "--max-faults", type=int, default=None, help="fault budget (with --arch)"
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority; larger runs sooner (default: 0)",
    )
    submit.add_argument(
        "--no-follow",
        action="store_true",
        help="print the job id and return immediately instead of streaming "
        "events until the job finishes",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up following after this many seconds (default: wait forever)",
    )

    jobs = subparsers.add_parser(
        "jobs",
        help="list, inspect or cancel jobs on a running service daemon",
        description="Query a 'repro serve' daemon: the job table, one job's "
        "full record (including its report), the shared store's telemetry, "
        "or cancel a job.",
    )
    jobs.add_argument("--host", default="127.0.0.1", help=_SERVICE_ADDRESS)
    jobs.add_argument("--port", type=int, default=8765, help=_SERVICE_ADDRESS)
    jobs.add_argument(
        "--state",
        choices=["queued", "running", "done", "failed", "cancelled"],
        help="only list jobs in this state",
    )
    jobs.add_argument("--id", dest="job_id", help="print one job's full record as JSON")
    jobs.add_argument("--cancel", metavar="JOB_ID", help="cancel this job")
    jobs.add_argument(
        "--store-stats",
        action="store_true",
        help="print the shared result store's telemetry as JSON",
    )

    trace = subparsers.add_parser(
        "trace",
        help="render a recorded span trace as a waterfall or rollup table",
        description="Render the NDJSON span trace of a traced campaign run "
        "(REPRO_TRACE=1 / --trace): a cross-process waterfall of nested "
        "spans by default, or a hottest-first rollup with --summary.  The "
        "target is either a trace file path or a job-key prefix resolved "
        "against the result store.",
    )
    trace.add_argument(
        "target",
        help="an NDJSON trace file, or a job-key (prefix) of a traced job "
        "in the result store",
    )
    trace.add_argument(
        "--store",
        default=".campaign-results",
        help="result store to resolve job keys against "
        "(default: .campaign-results)",
    )
    trace.add_argument(
        "--summary",
        action="store_true",
        help="print the per-span rollup table instead of the waterfall",
    )

    lint = subparsers.add_parser(
        "lint",
        help="contract lint: enforce the kernel/campaign/service invariants "
        "the type system can't see",
        description="AST-based contract lint (rules RPL001-RPL007, see "
        "docs/contracts.md): raw node ids stored without protect(), "
        "cross-manager node mixing, raw-id loops outside "
        "postpone_reorder(), STAGE_DEPENDENCIES drift, blocking calls in "
        "coroutines, off-thread service mutation, raw stage timing instead "
        "of the repro.obs span API.  Exits 1 when findings remain after "
        "'# repro: noqa[RPLnnn]' suppressions.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src and ./scripts "
        "when present, else the current directory)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="machine-readable output for CI and editors",
    )
    lint.add_argument(
        "--rules",
        help="comma-separated rule codes to run (e.g. RPL001,RPL003); "
        "default: all",
    )

    return parser


# -- command implementations -------------------------------------------------------------


def _cmd_list_archs(args: argparse.Namespace, out: TextIO) -> int:
    for name in available_architectures():
        out.write(f"{name}\n")
    return 0


def _cmd_show_arch(args: argparse.Namespace, out: TextIO) -> int:
    architecture = load_architecture(args.arch)
    out.write(architecture.describe() + "\n\n")
    out.write(architecture.ascii_diagram() + "\n")
    return 0


def _cmd_spec(args: argparse.Namespace, out: TextIO) -> int:
    _, functional = _resolve(args)
    if args.format == "specfile":
        if args.kind != "functional":
            raise CliError("--format specfile only applies to the functional specification")
        out.write(dumps_spec(functional))
        return 0
    unicode_symbols = args.format == "unicode"
    if args.kind == "functional":
        out.write(functional.describe(unicode_symbols=unicode_symbols) + "\n")
    elif args.kind == "performance":
        out.write(
            derive_performance_spec(functional).describe(unicode_symbols=unicode_symbols) + "\n"
        )
    else:
        out.write(
            derive_combined_spec(functional).describe(unicode_symbols=unicode_symbols) + "\n"
        )
    return 0


def _cmd_derive(args: argparse.Namespace, out: TextIO) -> int:
    _, functional = _resolve(args)
    backend = getattr(args, "backend", "bdd")
    if backend == "expr":
        out.write(
            "note: the 'expr' backend is deprecated and kept for A/B debugging; "
            "the default 'bdd' backend is exact, faster and scales further\n"
        )
    derivation = symbolic_most_liberal(functional, backend=backend)
    out.write(derivation.describe() + "\n")
    if getattr(args, "verbose", False):
        context = getattr(derivation, "context", None)
        if context is not None:
            out.write("kernel statistics:\n")
            out.write(context.manager.stats().describe() + "\n")
        else:
            out.write("kernel statistics: not available for the expr backend\n")
    return 0


def _cmd_check_properties(args: argparse.Namespace, out: TextIO) -> int:
    _, functional = _resolve(args)
    report = check_all_properties(functional)
    out.write(report.describe() + "\n")
    return 0 if report.all_hold() else 1


def _cmd_assertions(args: argparse.Namespace, out: TextIO) -> int:
    _, functional = _resolve(args)
    assertions = testbench_assertions(functional)
    if args.language == "sva":
        out.write(sva_module(assertions, module_name=args.module_name) + "\n")
    else:
        out.write(psl_vunit(assertions, unit_name=args.module_name) + "\n")
    return 0


def _cmd_synth(args: argparse.Namespace, out: TextIO) -> int:
    _, functional = _resolve(args)
    derivation = symbolic_most_liberal(functional)
    if args.optimize:
        derivation = optimize_derivation(functional, derivation).derivation
    if args.style == "behavioural":
        if args.language == "verilog":
            out.write(behavioural_verilog(functional, derivation) + "\n")
        else:
            out.write(behavioural_vhdl(functional, derivation) + "\n")
        return 0
    synthesis = synthesize_interlock(functional, derivation=derivation)
    if args.language == "verilog":
        out.write(synthesis_to_verilog(synthesis) + "\n")
    else:
        out.write(synthesis_to_vhdl(synthesis) + "\n")
    return 0


def _cmd_check(args: argparse.Namespace, out: TextIO) -> int:
    architecture, functional = _resolve(args)
    if args.implementation == "derived":
        interlock = ClosedFormInterlock.from_derivation(symbolic_most_liberal(functional))
    else:
        if architecture is None:
            raise CliError("--implementation conservative requires --arch")
        interlock = ClosedFormInterlock.from_spec(
            conservative_variant(architecture), name="conservative-variant"
        )
    checker = PropertyChecker(functional, architecture, backend=args.backend)
    functional_report = checker.check_functional(interlock)
    performance_report = checker.check_performance(interlock)
    equivalence_report = checker.check_equivalence_with_derived(interlock)
    out.write(functional_report.describe() + "\n")
    out.write(performance_report.describe() + "\n")
    out.write(equivalence_report.describe() + "\n")
    ok = (
        functional_report.all_hold()
        and performance_report.all_hold()
        and equivalence_report.all_hold()
    )
    return 0 if ok else 1


def _cmd_simulate(args: argparse.Namespace, out: TextIO) -> int:
    architecture = load_architecture(args.arch)
    functional = build_functional_spec(architecture)
    derivation = symbolic_most_liberal(functional)
    interlock = ClosedFormInterlock.from_derivation(derivation)
    profile = _PROFILES[args.profile]
    profile = WorkloadProfile(
        length=args.length,
        dependency_rate=profile.dependency_rate,
        store_rate=profile.store_rate,
        wait_rate=profile.wait_rate,
        bubble_rate=profile.bubble_rate,
    )
    program = WorkloadGenerator(architecture, seed=args.seed).generate(profile)
    trace = simulate(architecture, interlock, program)
    report = monitor_trace(trace, testbench_assertions(functional))

    out.write(trace.describe() + "\n")
    out.write(report.describe() + "\n")
    breakdown = classify_stalls(trace, functional, derivation=derivation)
    out.write(breakdown.describe() + "\n")
    if args.coverage:
        out.write(coverage_of(functional, [trace]).describe() + "\n")
    if args.vcd:
        write_vcd_file(trace, args.vcd)
        out.write(f"VCD written to {args.vcd}\n")
    return 0 if report.clean() else 1


def _cmd_bench(args: argparse.Namespace, out: TextIO) -> int:
    from .perf import (
        available_scenarios,
        check_against_baseline,
        run_benchmarks,
        write_results,
    )

    if args.list:
        for name in available_scenarios():
            out.write(f"{name}\n")
        return 0
    try:
        results = run_benchmarks(
            names=args.scenarios,
            quick=args.quick,
            repeat=args.repeat,
            progress=lambda line: out.write(line + "\n"),
        )
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if args.out:
        write_results(results, args.out)
        out.write(f"timings written to {args.out}\n")
    if args.check:
        try:
            failures = check_against_baseline(
                results,
                args.baseline,
                tolerance=args.tolerance,
                warn=lambda line: out.write(f"WARNING {line}\n"),
                slack=args.slack,
            )
        except ValueError as exc:
            raise CliError(f"bad baseline {args.baseline}: {exc}") from exc
        if failures:
            for failure in failures:
                out.write(f"REGRESSION {failure}\n")
            return 1
        out.write(f"no regression against {args.baseline}\n")
    return 0


def _csv_strs(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _csv_ints(text: str, option: str) -> List[int]:
    try:
        return [int(part) for part in _csv_strs(text)]
    except ValueError as exc:
        raise CliError(f"{option} expects comma-separated integers, got {text!r}") from exc


def _cmd_campaign(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from .campaign import (
        CampaignSpec,
        CampaignSpecError,
        JobSpec,
        ResultStore,
        family_sweep,
        run_campaign,
    )
    from .campaign.spec import CANONICAL_STAGES

    stages = tuple(_csv_strs(args.stages or "")) or CANONICAL_STAGES
    extra_archs = tuple(args.extra_archs or ())
    try:
        if args.campaign_file:
            spec = CampaignSpec.load(args.campaign_file)
        elif args.no_family:
            if not extra_archs:
                raise CliError("--no-family needs at least one --arch")
            spec = CampaignSpec(
                name="named-archs",
                jobs=tuple(
                    JobSpec(
                        arch=arch,
                        stages=stages,
                        workload_length=args.length,
                        workload_seed=args.seed,
                        max_faults=args.max_faults,
                    )
                    for arch in extra_archs
                ),
                workers=args.workers or 2,
            )
        else:
            spec = family_sweep(
                registers=_csv_ints(args.registers, "--registers"),
                widths=_csv_ints(args.widths, "--widths"),
                depths=_csv_ints(args.depths, "--depths"),
                latency_steps=_csv_ints(args.latency_steps, "--latency-steps"),
                styles=tuple(_csv_strs(args.styles)),
                extra_archs=extra_archs,
                workers=args.workers or 2,
                stages=stages,
                workload_length=args.length,
                workload_seed=args.seed,
                max_faults=args.max_faults,
            )
    except CampaignSpecError as exc:
        raise CliError(str(exc)) from exc
    if args.save_campaign:
        spec.save(args.save_campaign)
        out.write(f"campaign spec written to {args.save_campaign}\n")
    if args.list:
        out.write(f"campaign {spec.name!r}: {len(spec.jobs)} jobs\n")
        for job in spec.jobs:
            out.write(f"  {job.arch}  stages={','.join(job.stages)}\n")
        return 0
    store = ResultStore(args.store) if args.store else None
    if args.incremental and store is None:
        raise CliError("--incremental requires a result store (--store)")
    report = run_campaign(
        spec,
        store=store,
        use_cache=not args.no_cache,
        progress=lambda line: out.write(line + "\n"),
        workers=args.workers,
        incremental=args.incremental,
        trace=True if args.trace else None,
    )
    out.write(report.describe() + "\n")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write(f"aggregate report written to {args.report}\n")
    return 0 if report.all_ok() else 1


def _cmd_artifact(args: argparse.Namespace, out: TextIO) -> int:
    import json
    from pathlib import Path

    from .bdd import ArtifactError, inspect_artifact

    def summarize(path: Path) -> None:
        try:
            summary = inspect_artifact(path.read_bytes())
        except (OSError, ArtifactError) as exc:
            out.write(f"{path.name}: CORRUPT ({exc})\n")
            return
        payload = summary.get("payload") or {}
        label = payload.get("spec") or payload.get("kind") or "-"
        out.write(
            f"{path.name}: {label}  nodes={summary['num_nodes']} "
            f"vars={summary['num_variables']} bytes={summary['bytes']} "
            f"roots={','.join(summary['roots'])}"
            f"{'  +covers' if summary['has_covers'] else ''}\n"
        )

    if args.file:
        path = Path(args.file)
        try:
            summary = inspect_artifact(path.read_bytes())
        except OSError as exc:
            raise CliError(f"cannot read {args.file}: {exc}") from exc
        except ArtifactError as exc:
            raise CliError(f"{args.file} is not a valid artifact: {exc}") from exc
        json.dump(summary, out, indent=2, sort_keys=True)
        out.write("\n")
        return 0
    root = Path(args.store)
    if not root.is_dir():
        raise CliError(f"store directory {args.store!r} does not exist")
    paths = sorted(root.glob("artifact-*.bdd"))
    if not paths:
        out.write(f"no artifacts in {args.store}\n")
        return 0
    for path in paths:
        summarize(path)
    return 0


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    from .service import serve_blocking

    return serve_blocking(
        host=args.host,
        port=args.port,
        store_root=args.store or None,
        workers=args.workers,
        dedup=not args.no_dedup,
        trace=args.trace,
        out=out,
    )


def _format_event(event: dict) -> Optional[str]:
    kind = event.get("kind")
    if kind == "state":
        extras = ""
        if event.get("state") == "done":
            extras = f"  ({event.get('passed')}/{event.get('total')} passed)"
        return f"state: {event.get('state')}{extras}"
    if kind == "progress":
        # The orchestrator's free-text lines repeat what the structured
        # "result" events already carry; skip them in CLI output.
        return None
    if kind == "result":
        status = "ok" if event.get("ok") else "FAIL"
        cached = " (cached)" if event.get("cached") else ""
        return f"[{event.get('arch')}] {status} in {event.get('seconds'):.3f}s{cached}"
    return str(event)


def _cmd_submit(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from .service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.campaign_file:
            with open(args.campaign_file, "r", encoding="utf-8") as handle:
                campaign = json.load(handle)
            submitted = client.submit(campaign=campaign, priority=args.priority)
        else:
            knobs = {
                name: value
                for name, value in (
                    ("workload_length", args.length),
                    ("workload_seed", args.seed),
                    ("max_faults", args.max_faults),
                )
                if value is not None
            }
            submitted = client.submit(
                arch=args.arch,
                stages=args.stages or None,
                priority=args.priority,
                **knobs,
            )
    except ServiceError as exc:
        raise CliError(str(exc)) from exc
    job = submitted["job"]
    coalesced = " (coalesced onto an identical in-flight job)" if submitted[
        "coalesced"
    ] else ""
    out.write(f"{job['id']}  state={job['state']}{coalesced}\n")
    if args.no_follow:
        return 0
    try:
        def show(event: dict) -> None:
            line = _format_event(event)
            if line is not None:
                out.write(line + "\n")

        final = client.wait(job["id"], timeout=args.timeout, on_event=show)
    except (ServiceError, TimeoutError) as exc:
        raise CliError(str(exc)) from exc
    if final["state"] == "done":
        return 0 if final["ok"] else 1
    out.write(f"job ended {final['state']}\n")
    if final.get("error"):
        out.write(final["error"] + "\n")
    return 1


def _cmd_jobs(args: argparse.Namespace, out: TextIO) -> int:
    import json

    from .analysis import render_table
    from .service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.cancel:
            outcome = client.cancel(args.cancel)
            verdict = "cancelled" if outcome["cancelled"] else "already finished"
            out.write(f"{outcome['job']['id']}: {verdict}\n")
            return 0
        if args.job_id:
            json.dump(client.job(args.job_id), out, indent=2, sort_keys=True)
            out.write("\n")
            return 0
        if args.store_stats:
            json.dump(client.store(), out, indent=2, sort_keys=True)
            out.write("\n")
            return 0
        records = client.jobs(state=args.state)
    except ServiceError as exc:
        raise CliError(str(exc)) from exc
    if not records:
        out.write("no jobs\n")
        return 0
    rows = [
        {
            "id": record["id"],
            "state": record["state"],
            "ok": "-" if record["ok"] is None else ("yes" if record["ok"] else "NO"),
            "campaign": record["campaign"],
            "jobs": str(record["jobs"]),
            "prio": str(record["priority"]),
            "cached": "yes" if record["from_cache"] else "-",
        }
        for record in records
    ]
    out.write(render_table(rows) + "\n")
    return 0


def _cmd_trace(args: argparse.Namespace, out: TextIO) -> int:
    import os

    from .campaign import ResultStore
    from .obs import load_ndjson, render_rollup, render_waterfall

    spans = None
    if os.path.isfile(args.target):
        try:
            with open(args.target, "r", encoding="utf-8") as handle:
                spans = load_ndjson(handle.read())
        except (OSError, ValueError) as exc:
            raise CliError(f"cannot read trace {args.target}: {exc}") from exc
    else:
        if not os.path.isdir(args.store):
            raise CliError(
                f"{args.target!r} is not a file and store directory "
                f"{args.store!r} does not exist"
            )
        store = ResultStore(args.store)
        matches = [
            key for key in store.trace_keys() if key.startswith(args.target)
        ]
        if not matches:
            raise CliError(
                f"no trace matches {args.target!r} in {args.store} "
                f"({len(store.trace_keys())} stored traces; run a campaign "
                "with --trace or REPRO_TRACE=1 first)"
            )
        if len(matches) > 1:
            listing = "\n  ".join(sorted(matches))
            raise CliError(
                f"{args.target!r} is ambiguous; matching traces:\n  {listing}"
            )
        spans = store.get_trace(matches[0])
        if spans is None:
            raise CliError(f"trace {matches[0]} is unreadable or corrupt")
    if not spans:
        out.write("empty trace\n")
        return 0
    render = render_rollup if args.summary else render_waterfall
    out.write(render(spans) + "\n")
    return 0


def _cmd_lint(args: argparse.Namespace, out: TextIO) -> int:
    import os

    from .devtools.lint import LintError, lint_paths, render_json, render_text, resolve_codes

    paths = list(args.paths)
    if not paths:
        paths = [path for path in ("src", "scripts") if os.path.isdir(path)] or ["."]
    try:
        codes = resolve_codes(args.rules)
        findings = lint_paths(paths, codes)
    except LintError as exc:
        raise CliError(str(exc)) from exc
    if args.json_output:
        out.write(render_json(findings) + "\n")
    else:
        out.write(render_text(findings) + "\n")
    return 1 if findings else 0


_COMMANDS = {
    "list-archs": _cmd_list_archs,
    "show-arch": _cmd_show_arch,
    "spec": _cmd_spec,
    "derive": _cmd_derive,
    "check-properties": _cmd_check_properties,
    "assertions": _cmd_assertions,
    "synth": _cmd_synth,
    "check": _cmd_check,
    "simulate": _cmd_simulate,
    "bench": _cmd_bench,
    "campaign": _cmd_campaign,
    "artifact": _cmd_artifact,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Entry point for ``python -m repro`` (returns the process exit code)."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except (CliError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
