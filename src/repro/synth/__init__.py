"""Synthesis of interlock RTL from functional specifications (the paper's Section 5 goal)."""

from .hdl_ir import Gate, GateKind, Module, Port, PortDirection
from .optimize import (
    FlagOptimization,
    OptimizationError,
    OptimizationReport,
    optimize_derivation,
)
from .synthesize import NetlistInterlock, SynthesisResult, synthesize_interlock
from .verilog import behavioural_verilog, module_to_verilog, synthesis_to_verilog
from .vhdl import behavioural_vhdl, module_to_vhdl, synthesis_to_vhdl

__all__ = [
    "Gate",
    "GateKind",
    "Module",
    "Port",
    "PortDirection",
    "FlagOptimization",
    "OptimizationError",
    "OptimizationReport",
    "optimize_derivation",
    "NetlistInterlock",
    "SynthesisResult",
    "synthesize_interlock",
    "behavioural_verilog",
    "module_to_verilog",
    "synthesis_to_verilog",
    "behavioural_vhdl",
    "module_to_vhdl",
    "synthesis_to_vhdl",
]
