"""Logic optimisation of the derived interlock equations before synthesis.

The closed forms produced by :func:`repro.spec.derivation.symbolic_most_liberal`
are built by substitution, so the same sub-conditions (scoreboard hazards,
downstream stall chains) appear repeatedly and some disjuncts subsume
others.  This pass cleans the equations up per moe flag:

* exact two-level minimisation (:mod:`repro.expr.minimize`) whenever the
  flag's support is small enough to enumerate,
* otherwise disjunct-level clean-up: each top-level disjunct is minimised
  on its own (their supports are tiny), duplicates are removed, and
  disjuncts that are implied by another disjunct are absorbed.

Optionally a *care set* — typically the conjunction of the architecture's
environment assumptions from :mod:`repro.checking.environment` — marks
input combinations that can never occur, letting the minimiser treat them
as don't-cares.

The optimised equations remain logically equivalent to the originals on
the care set; :func:`optimize_derivation` verifies this with BDDs before
returning, so the pass cannot silently change behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.expr_to_bdd import ExprBddContext
from ..expr.ast import And, Expr, Iff, Implies, Not, Or
from ..expr.builders import big_or
from ..expr.minimize import (
    DEFAULT_MAX_VARIABLES,
    literal_count,
    minimize_with_care_set,
)
from ..expr.transform import simplify
from ..spec.derivation import DerivationResult
from ..spec.functional import FunctionalSpec

__all__ = ["OptimizationError", "FlagOptimization", "OptimizationReport", "optimize_derivation"]


class OptimizationError(RuntimeError):
    """Raised when an optimised equation is not equivalent to the original."""


@dataclass
class FlagOptimization:
    """Before/after cost record for one moe flag."""

    moe: str
    original: Expr
    optimized: Expr
    method: str

    @property
    def literals_before(self) -> int:
        """Literal count of the original closed form."""
        return literal_count(self.original)

    @property
    def literals_after(self) -> int:
        """Literal count of the optimised closed form."""
        return literal_count(self.optimized)

    @property
    def reduction(self) -> float:
        """Fractional literal-count reduction (0.0 when nothing was saved)."""
        before = self.literals_before
        if before == 0:
            return 0.0
        return 1.0 - self.literals_after / before

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "moe flag": self.moe,
            "method": self.method,
            "literals before": self.literals_before,
            "literals after": self.literals_after,
            "reduction": f"{100.0 * self.reduction:.1f}%",
        }


@dataclass
class OptimizationReport:
    """Whole-interlock optimisation outcome."""

    derivation: DerivationResult
    flags: List[FlagOptimization] = field(default_factory=list)

    def total_literals_before(self) -> int:
        """Summed literal count before optimisation."""
        return sum(flag.literals_before for flag in self.flags)

    def total_literals_after(self) -> int:
        """Summed literal count after optimisation."""
        return sum(flag.literals_after for flag in self.flags)

    def rows(self) -> List[Dict[str, object]]:
        """Per-flag rows for report tables."""
        return [flag.as_row() for flag in self.flags]


def _dedup_and_absorb(disjuncts: List[Expr], context: ExprBddContext) -> List[Expr]:
    """Remove duplicate disjuncts and disjuncts implied by another disjunct."""
    unique: List[Expr] = []
    for disjunct in disjuncts:
        if disjunct not in unique:
            unique.append(disjunct)
    kept: List[Expr] = []
    for index, disjunct in enumerate(unique):
        absorbed = False
        for other_index, other in enumerate(unique):
            if index == other_index:
                continue
            # ``disjunct -> other`` means ``other`` already covers it; prefer
            # keeping the earlier (or the other) term to break mutual-implication
            # ties deterministically.
            if context.is_valid(Implies(disjunct, other)) and (
                not context.is_valid(Implies(other, disjunct)) or other_index < index
            ):
                absorbed = True
                break
        if not absorbed:
            kept.append(disjunct)
    return kept


def _optimize_expression(
    expr: Expr,
    care: Optional[Expr],
    max_vars: int,
    context: ExprBddContext,
) -> tuple:
    """Optimise one equation; returns (expression, method-label)."""
    support = expr.variables() | (care.variables() if care is not None else frozenset())
    if len(support) <= max_vars:
        result = minimize_with_care_set(expr, care=care, max_vars=max_vars)
        return result.expression, "exact two-level"

    simplified = simplify(expr)
    if isinstance(simplified, Or):
        disjuncts: List[Expr] = []
        for disjunct in simplified.operands:
            if len(disjunct.variables()) <= max_vars:
                disjuncts.append(minimize_with_care_set(disjunct, max_vars=max_vars).expression)
            else:
                disjuncts.append(disjunct)
        disjuncts = _dedup_and_absorb(disjuncts, context)
        return simplify(big_or(disjuncts)), "per-disjunct + absorption"
    if isinstance(simplified, Not) and isinstance(simplified.operand, Or):
        # Closed-form moe flags are usually ¬(stall-condition); optimise the
        # stall condition underneath the negation instead.
        inner, method = _optimize_expression(simplified.operand, care, max_vars, context)
        return simplify(Not(inner)), method
    if isinstance(simplified, Not) and isinstance(simplified.operand, And):
        inner, method = _optimize_expression(simplified.operand, care, max_vars, context)
        return simplify(Not(inner)), method
    if isinstance(simplified, And):
        conjuncts: List[Expr] = []
        for conjunct in simplified.operands:
            optimized, _ = _optimize_expression(conjunct, care, max_vars, context)
            conjuncts.append(optimized)
        return simplify(And(*conjuncts)), "per-conjunct"
    return simplified, "structural"


def optimize_derivation(
    spec: FunctionalSpec,
    derivation: DerivationResult,
    care: Optional[Expr] = None,
    max_vars: int = DEFAULT_MAX_VARIABLES,
    verify: bool = True,
) -> OptimizationReport:
    """Optimise every derived moe equation, preserving equivalence on the care set.

    Args:
        spec: the functional specification the derivation belongs to.
        derivation: the fixed-point derivation to optimise.
        care: optional care-set expression (input combinations outside it are
            treated as don't-cares, e.g. the environment assumptions).
        max_vars: enumeration limit for exact minimisation.
        verify: prove equivalence of each optimised equation (on the care
            set) before accepting it; disable only in benchmarks that time
            the optimisation step in isolation.

    Returns:
        An :class:`OptimizationReport` whose ``derivation`` carries the
        optimised expressions (original derivation is left untouched).
    """
    context = ExprBddContext()
    optimized_expressions: Dict[str, Expr] = {}
    report = OptimizationReport(
        derivation=DerivationResult(
            spec=spec,
            moe_expressions=optimized_expressions,
            iterations=derivation.iterations,
            feed_forward=derivation.feed_forward,
            bdd_sizes=dict(derivation.bdd_sizes),
        )
    )

    for moe, expression in derivation.moe_expressions.items():
        optimized, method = _optimize_expression(expression, care, max_vars, context)
        if literal_count(optimized) > literal_count(expression):
            # The derivation already materializes minimized ISOP covers, so
            # a flag can arrive in a form (e.g. the negation of a compact
            # complement cover) that two-level expansion only makes bigger.
            optimized, method = expression, "already minimal"
        if verify:
            claim: Expr = Iff(expression, optimized)
            if care is not None:
                claim = Implies(care, claim)
            if not context.is_valid(claim):
                raise OptimizationError(
                    f"optimised equation for {moe} is not equivalent to the original"
                )
        optimized_expressions[moe] = optimized
        report.flags.append(
            FlagOptimization(moe=moe, original=expression, optimized=optimized, method=method)
        )
    return report
