"""Synthesis of the interlock control logic from its functional specification.

This implements the paper's stated end goal ("Ultimately, we would like to
generate the HDL code that implements the pipeline flow control logic from
the functional specification"):

1. derive the closed-form maximum-performance moe equations with the
   Section 3.2 fixed point,
2. lower each equation into primitive gates (structural netlist IR),
3. emit synthesisable Verilog (:mod:`repro.synth.verilog`).

The generated block is purely combinational in the interlock inputs, which
matches the specification's per-cycle semantics; registering of inputs or
the insertion of shunt stages for timing closure (discussed as future work
in the paper's Section 5) is left to the consuming design flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..expr.ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var
from ..expr.transform import eliminate_derived, simplify
from ..pipeline.interlock import ClosedFormInterlock
from ..pipeline.signals import to_hdl_identifier
from ..spec.derivation import DerivationResult, symbolic_most_liberal
from ..spec.functional import FunctionalSpec
from .hdl_ir import Gate, GateKind, Module, Port, PortDirection


@dataclass
class SynthesisResult:
    """Everything the synthesiser produced for one specification.

    Attributes:
        spec: the functional specification synthesis started from.
        derivation: the fixed-point derivation used for the moe equations.
        module: the structural netlist.
        name_map: mapping from specification signal names to HDL identifiers.
    """

    spec: FunctionalSpec
    derivation: DerivationResult
    module: Module
    name_map: Dict[str, str]

    def interlock(self) -> ClosedFormInterlock:
        """A simulator-pluggable interlock that evaluates the synthesised netlist."""
        return NetlistInterlock(self)

    def gate_count(self) -> int:
        """Primitive gate count of the synthesised module."""
        return self.module.gate_count()


class NetlistInterlock(ClosedFormInterlock):
    """Interlock backed by the synthesised netlist's evaluator.

    It subclasses :class:`ClosedFormInterlock` so the property checker can
    reason about the same expressions, but ``compute_moe`` executes the
    gate-level netlist — the test-suite uses the pair to show netlist and
    closed forms agree on every input.
    """

    def __init__(self, synthesis: SynthesisResult):
        super().__init__(
            synthesis.derivation.moe_expressions,
            name=f"synthesised({synthesis.spec.name})",
            description="evaluates the synthesised gate-level netlist each cycle",
        )
        self._synthesis = synthesis

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        hdl_inputs = {}
        for signal, identifier in self._synthesis.name_map.items():
            if signal in self._synthesis.derivation.moe_expressions:
                continue
            hdl_inputs[identifier] = bool(inputs.get(signal, False))
        outputs = self._synthesis.module.evaluate(hdl_inputs)
        reverse = {v: k for k, v in self._synthesis.name_map.items()}
        return {
            reverse[identifier]: value
            for identifier, value in outputs.items()
        }


class _NetlistBuilder:
    """Lowers expressions to gates with structural sharing."""

    def __init__(self, module: Module):
        self.module = module
        self.cache: Dict[Expr, str] = {}
        self.counter = 0

    def fresh_wire(self, hint: str) -> str:
        self.counter += 1
        name = f"n{self.counter}_{hint}"
        self.module.wires.append(name)
        return name

    def lower(self, expr: Expr) -> str:
        expr = simplify(eliminate_derived(expr))
        return self._lower(expr)

    def _lower(self, expr: Expr) -> str:
        if expr in self.cache:
            return self.cache[expr]
        if isinstance(expr, Var):
            net = to_hdl_identifier(expr.name)
        elif isinstance(expr, Const):
            net = self.fresh_wire("const")
            kind = GateKind.CONST1 if expr.value else GateKind.CONST0
            self.module.gates.append(Gate(kind=kind, output=net))
        elif isinstance(expr, Not):
            operand = self._lower(expr.operand)
            net = self.fresh_wire("not")
            self.module.gates.append(Gate(kind=GateKind.NOT, output=net, inputs=(operand,)))
        elif isinstance(expr, And):
            operands = tuple(self._lower(op) for op in expr.operands)
            net = self.fresh_wire("and")
            self.module.gates.append(Gate(kind=GateKind.AND, output=net, inputs=operands))
        elif isinstance(expr, Or):
            operands = tuple(self._lower(op) for op in expr.operands)
            net = self.fresh_wire("or")
            self.module.gates.append(Gate(kind=GateKind.OR, output=net, inputs=operands))
        else:
            raise TypeError(f"cannot lower node {type(expr).__name__}")
        self.cache[expr] = net
        return net


def synthesize_interlock(
    spec: FunctionalSpec,
    module_name: Optional[str] = None,
    derivation: Optional[DerivationResult] = None,
) -> SynthesisResult:
    """Synthesise the maximum-performance interlock for a functional spec."""
    derivation = derivation or symbolic_most_liberal(spec)
    module_name = module_name or to_hdl_identifier(f"{spec.name}_interlock")

    name_map: Dict[str, str] = {}
    module = Module(
        name=module_name,
        comment=(
            "Maximum-performance pipeline interlock synthesised from the functional "
            f"specification {spec.name!r} (DAC 2002 method)."
        ),
    )

    input_names: List[str] = []
    for signal in spec.input_signals():
        identifier = to_hdl_identifier(signal)
        name_map[signal] = identifier
        input_names.append(identifier)
        module.ports.append(
            Port(name=identifier, direction=PortDirection.INPUT, comment=signal)
        )
    for moe in spec.moe_flags():
        identifier = to_hdl_identifier(moe)
        name_map[moe] = identifier
        module.ports.append(
            Port(name=identifier, direction=PortDirection.OUTPUT, comment=moe)
        )

    builder = _NetlistBuilder(module)
    for moe in spec.moe_flags():
        expression = derivation.moe_expressions[moe]
        hdl_expression = _rename_for_hdl(expression, name_map)
        net = builder.lower(hdl_expression)
        module.gates.append(
            Gate(kind=GateKind.BUF, output=name_map[moe], inputs=(net,))
        )

    module.validate()
    return SynthesisResult(
        spec=spec, derivation=derivation, module=module, name_map=name_map
    )


def _rename_for_hdl(expr: Expr, name_map: Mapping[str, str]) -> Expr:
    from ..expr.transform import rename

    relevant = {name: name_map[name] for name in expr.variables() if name in name_map}
    return rename(expr, relevant)
