"""Synthesis of the interlock control logic from its functional specification.

This implements the paper's stated end goal ("Ultimately, we would like to
generate the HDL code that implements the pipeline flow control logic from
the functional specification"):

1. derive the closed-form maximum-performance moe equations with the
   Section 3.2 fixed point,
2. lower each equation into primitive gates (structural netlist IR),
3. emit synthesisable Verilog (:mod:`repro.synth.verilog`).

The generated block is purely combinational in the interlock inputs, which
matches the specification's per-cycle semantics; registering of inputs or
the insertion of shunt stages for timing closure (discussed as future work
in the paper's Section 5) is left to the consuming design flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..expr.ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var
from ..expr.transform import eliminate_derived, simplify
from ..pipeline.interlock import ClosedFormInterlock
from ..pipeline.signals import to_hdl_identifier
from ..spec.derivation import DerivationResult, symbolic_most_liberal
from ..spec.functional import FunctionalSpec
from .hdl_ir import Gate, GateKind, Module, Port, PortDirection


@dataclass
class SynthesisResult:
    """Everything the synthesiser produced for one specification.

    Attributes:
        spec: the functional specification synthesis started from.
        derivation: the fixed-point derivation used for the moe equations.
        module: the structural netlist.
        name_map: mapping from specification signal names to HDL identifiers.
    """

    spec: FunctionalSpec
    derivation: DerivationResult
    module: Module
    name_map: Dict[str, str]

    def interlock(self) -> ClosedFormInterlock:
        """A simulator-pluggable interlock that evaluates the synthesised netlist."""
        return NetlistInterlock(self)

    def gate_count(self) -> int:
        """Primitive gate count of the synthesised module."""
        return self.module.gate_count()


class NetlistInterlock(ClosedFormInterlock):
    """Interlock backed by the synthesised netlist's evaluator.

    It subclasses :class:`ClosedFormInterlock` so the property checker can
    reason about the same expressions, but ``compute_moe`` executes the
    gate-level netlist — the test-suite uses the pair to show netlist and
    closed forms agree on every input.
    """

    def __init__(self, synthesis: SynthesisResult):
        super().__init__(
            synthesis.derivation.moe_expressions,
            name=f"synthesised({synthesis.spec.name})",
            description="evaluates the synthesised gate-level netlist each cycle",
        )
        self._synthesis = synthesis
        # Hoisted out of the per-cycle loop: moe_expressions is a copying
        # property, and the reverse name map never changes.
        self._moe_set = set(synthesis.spec.moe_flags())
        self._reverse_names = {v: k for k, v in synthesis.name_map.items()}

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        hdl_inputs = {}
        for signal, identifier in self._synthesis.name_map.items():
            if signal in self._moe_set:
                continue
            hdl_inputs[identifier] = bool(inputs.get(signal, False))
        outputs = self._synthesis.module.evaluate(hdl_inputs)
        reverse = self._reverse_names
        return {
            reverse[identifier]: value
            for identifier, value in outputs.items()
        }


class _NetlistBuilder:
    """Lowers expressions and ISOP covers to gates with structural sharing."""

    def __init__(self, module: Module):
        self.module = module
        self.cache: Dict[Expr, str] = {}
        self._net_cache: Dict[tuple, str] = {}
        self.counter = 0

    def fresh_wire(self, hint: str) -> str:
        self.counter += 1
        name = f"n{self.counter}_{hint}"
        self.module.wires.append(name)
        return name

    def lower(self, expr: Expr) -> str:
        expr = simplify(eliminate_derived(expr))
        return self._lower(expr)

    # -- cover lowering (the SymbolicFunction path) --------------------------------

    def not_net(self, operand: str) -> str:
        """A shared inverter of an existing net."""
        key = ("not", operand)
        net = self._net_cache.get(key)
        if net is None:
            net = self.fresh_wire("not")
            self.module.gates.append(Gate(kind=GateKind.NOT, output=net, inputs=(operand,)))
            self._net_cache[key] = net
        return net

    def lower_cover(self, cover: Sequence[Mapping[str, bool]]) -> str:
        """Lower an ISOP cover (cubes of HDL-named literals) to an AND–OR net.

        The two-level structure is built directly — one AND per cube over
        shared literal nets, one OR over the cube nets — without an
        intermediate expression tree; duplicate cubes and inverters are
        shared through the net cache.
        """
        if not cover:
            net = self.fresh_wire("const")
            self.module.gates.append(Gate(kind=GateKind.CONST0, output=net))
            return net
        cube_nets = []
        for cube in cover:
            if not cube:  # the empty product: the cover is the constant TRUE
                net = self.fresh_wire("const")
                self.module.gates.append(Gate(kind=GateKind.CONST1, output=net))
                return net
            literals = tuple(sorted(cube.items()))
            net = self._net_cache.get(("cube", literals))
            if net is None:
                literal_nets = tuple(
                    name if polarity else self.not_net(name)
                    for name, polarity in literals
                )
                if len(literal_nets) == 1:
                    net = literal_nets[0]
                else:
                    net = self.fresh_wire("and")
                    self.module.gates.append(
                        Gate(kind=GateKind.AND, output=net, inputs=literal_nets)
                    )
                self._net_cache[("cube", literals)] = net
            cube_nets.append(net)
        if len(cube_nets) == 1:
            return cube_nets[0]
        net = self.fresh_wire("or")
        self.module.gates.append(
            Gate(kind=GateKind.OR, output=net, inputs=tuple(cube_nets))
        )
        return net

    def _lower(self, expr: Expr) -> str:
        if expr in self.cache:
            return self.cache[expr]
        if isinstance(expr, Var):
            net = to_hdl_identifier(expr.name)
        elif isinstance(expr, Const):
            net = self.fresh_wire("const")
            kind = GateKind.CONST1 if expr.value else GateKind.CONST0
            self.module.gates.append(Gate(kind=kind, output=net))
        elif isinstance(expr, Not):
            operand = self._lower(expr.operand)
            net = self.fresh_wire("not")
            self.module.gates.append(Gate(kind=GateKind.NOT, output=net, inputs=(operand,)))
        elif isinstance(expr, And):
            operands = tuple(self._lower(op) for op in expr.operands)
            net = self.fresh_wire("and")
            self.module.gates.append(Gate(kind=GateKind.AND, output=net, inputs=operands))
        elif isinstance(expr, Or):
            operands = tuple(self._lower(op) for op in expr.operands)
            net = self.fresh_wire("or")
            self.module.gates.append(Gate(kind=GateKind.OR, output=net, inputs=operands))
        else:
            raise TypeError(f"cannot lower node {type(expr).__name__}")
        self.cache[expr] = net
        return net


def synthesize_interlock(
    spec: FunctionalSpec,
    module_name: Optional[str] = None,
    derivation: Optional[DerivationResult] = None,
) -> SynthesisResult:
    """Synthesise the maximum-performance interlock for a functional spec."""
    derivation = derivation or symbolic_most_liberal(spec)
    module_name = module_name or to_hdl_identifier(f"{spec.name}_interlock")

    name_map: Dict[str, str] = {}
    module = Module(
        name=module_name,
        comment=(
            "Maximum-performance pipeline interlock synthesised from the functional "
            f"specification {spec.name!r} (DAC 2002 method)."
        ),
    )

    input_names: List[str] = []
    for signal in spec.input_signals():
        identifier = to_hdl_identifier(signal)
        name_map[signal] = identifier
        input_names.append(identifier)
        module.ports.append(
            Port(name=identifier, direction=PortDirection.INPUT, comment=signal)
        )
    for moe in spec.moe_flags():
        identifier = to_hdl_identifier(moe)
        name_map[moe] = identifier
        module.ports.append(
            Port(name=identifier, direction=PortDirection.OUTPUT, comment=moe)
        )

    builder = _NetlistBuilder(module)
    for moe in spec.moe_flags():
        if derivation.moe_functions is not None:
            # The SymbolicFunction path: gates come straight from the
            # (possibly complemented) minimized ISOP cover of the BDD node —
            # no expression tree is built or simplified on the way.
            complemented, cover = derivation.moe_functions[moe].minimized_cover()
            hdl_cover = [
                {name_map.get(name, to_hdl_identifier(name)): polarity
                 for name, polarity in cube.items()}
                for cube in cover
            ]
            net = builder.lower_cover(hdl_cover)
            if complemented:
                net = builder.not_net(net)
        else:
            expression = derivation.moe_expressions[moe]
            hdl_expression = _rename_for_hdl(expression, name_map)
            net = builder.lower(hdl_expression)
        module.gates.append(
            Gate(kind=GateKind.BUF, output=name_map[moe], inputs=(net,))
        )

    module.validate()
    return SynthesisResult(
        spec=spec, derivation=derivation, module=module, name_map=name_map
    )


def _rename_for_hdl(expr: Expr, name_map: Mapping[str, str]) -> Expr:
    from ..expr.transform import rename

    relevant = {name: name_map[name] for name in expr.variables() if name in name_map}
    return rename(expr, relevant)
