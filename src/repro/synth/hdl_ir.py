"""A small structural HDL intermediate representation.

The synthesiser (:mod:`repro.synth.synthesize`) lowers the derived interlock
equations into this IR; the Verilog emitter prints it and the built-in
evaluator executes it, which lets the test-suite prove that the emitted RTL
computes exactly the derived maximum-performance moe functions without
needing an external simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence


class PortDirection(Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A single-bit module port."""

    name: str
    direction: PortDirection
    comment: str = ""


@dataclass(frozen=True)
class NetRef:
    """Reference to a net (port or internal wire) by name."""

    name: str


class GateKind(Enum):
    """Primitive gate types the synthesiser emits."""

    NOT = "not"
    AND = "and"
    OR = "or"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"


@dataclass(frozen=True)
class Gate:
    """One primitive gate driving one output net."""

    kind: GateKind
    output: str
    inputs: tuple = ()

    def __post_init__(self):
        expected = {
            GateKind.NOT: (1, 1),
            GateKind.BUF: (1, 1),
            GateKind.AND: (2, None),
            GateKind.OR: (2, None),
            GateKind.CONST0: (0, 0),
            GateKind.CONST1: (0, 0),
        }[self.kind]
        low, high = expected
        count = len(self.inputs)
        if count < low or (high is not None and count > high):
            raise ValueError(
                f"{self.kind.value} gate {self.output!r} has {count} inputs"
            )


@dataclass
class Module:
    """A combinational module: ports, wires and gates in topological order."""

    name: str
    ports: List[Port] = field(default_factory=list)
    wires: List[str] = field(default_factory=list)
    gates: List[Gate] = field(default_factory=list)
    comment: str = ""

    # -- structure queries -------------------------------------------------------

    def inputs(self) -> List[Port]:
        """Input ports in declaration order."""
        return [port for port in self.ports if port.direction is PortDirection.INPUT]

    def outputs(self) -> List[Port]:
        """Output ports in declaration order."""
        return [port for port in self.ports if port.direction is PortDirection.OUTPUT]

    def port_names(self) -> List[str]:
        """All port names."""
        return [port.name for port in self.ports]

    def gate_count(self) -> int:
        """Number of primitive gates (a crude area estimate)."""
        return len(self.gates)

    def driver_of(self, net: str) -> Optional[Gate]:
        """The gate driving a net, or None for inputs/undriven nets."""
        for gate in self.gates:
            if gate.output == net:
                return gate
        return None

    def validate(self) -> None:
        """Check single drivers, known nets and topological gate order."""
        known = {port.name for port in self.inputs()}
        declared = set(self.port_names()) | set(self.wires)
        driven = set()
        for gate in self.gates:
            for source in gate.inputs:
                if source not in declared:
                    raise ValueError(f"gate {gate.output!r} reads undeclared net {source!r}")
                if source not in known:
                    raise ValueError(
                        f"gate {gate.output!r} reads net {source!r} before it is driven"
                    )
            if gate.output not in declared:
                raise ValueError(f"gate drives undeclared net {gate.output!r}")
            if gate.output in driven:
                raise ValueError(f"net {gate.output!r} has multiple drivers")
            driven.add(gate.output)
            known.add(gate.output)
        for port in self.outputs():
            if port.name not in driven:
                raise ValueError(f"output port {port.name!r} is never driven")

    # -- execution -------------------------------------------------------------------

    def evaluate(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate the module combinationally for one input valuation."""
        values: Dict[str, bool] = {}
        for port in self.inputs():
            try:
                values[port.name] = bool(inputs[port.name])
            except KeyError as exc:
                raise KeyError(f"missing value for input port {port.name!r}") from exc
        for gate in self.gates:
            operands = [values[name] for name in gate.inputs]
            if gate.kind is GateKind.NOT:
                result = not operands[0]
            elif gate.kind is GateKind.BUF:
                result = operands[0]
            elif gate.kind is GateKind.AND:
                result = all(operands)
            elif gate.kind is GateKind.OR:
                result = any(operands)
            elif gate.kind is GateKind.CONST0:
                result = False
            else:
                result = True
            values[gate.output] = result
        return {port.name: values[port.name] for port in self.outputs()}
