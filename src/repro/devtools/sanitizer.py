"""Runtime sanitizer for the BDD kernel and the service event loop.

``REPRO_SANITIZE=1`` turns the kernel's silent-wrong-answer bug classes
into immediate, diagnosable exceptions.  The env var is read when a
:class:`~repro.bdd.manager.BddManager` is *constructed* (the same
late-binding pattern as ``REPRO_PURE_ARRAY``): construction transparently
yields a :class:`SanitizedBddManager`, so every layer above — symbolic
contexts, campaign workers, the service — runs sanitized without a line
of code changing.  When the variable is unset nothing here is imported
and the kernel pays zero cost.

What the sanitizer adds:

* **Use-after-free detection.**  Freed slots are *quarantined* instead
  of recycled and each carries a generation counter, so a raw node id
  that survives the GC or a sifting pass keeps pointing at a tombstone
  forever — any public operation fed a stale id raises
  :class:`UseAfterFreeError` (with the slot's free generation and the
  sweep epoch) instead of returning whichever function reused the slot.
* **Cross-manager detection.**  Every public operation validates its
  node operands against this manager's store.  Ids from another manager
  land outside the store or on per-manager *poison padding* (each
  manager skews its id space by a distinct offset, so structurally equal
  nodes in two managers get different ids) and raise
  :class:`CrossManagerError`, naming the live manager that does own the
  id when one can be found.
* **Sweep-epoch memo validation.**  :meth:`SanitizedBddManager.check_integrity`
  runs after every ``gc()``/``reorder()`` and raises
  :class:`MemoLeakError` if a unique-table, negation-cache or op-cache
  entry references a node that sweep should have evicted.
* **Protection leak accounting.**  ``protect()`` records its call site
  (skipping kernel/wrapper frames); :meth:`SanitizedBddManager.leak_report`
  aggregates the protections never released, by ``file:line`` — the
  shutdown-time answer to "who is pinning the node store".
* **Event-loop stall detection.**  :func:`loop_stall_monitor` measures
  scheduling lag and emits :class:`EventLoopStallWarning` when a
  coroutine step blocks the loop past its budget; the service wires it
  into ``start()``/``close()`` automatically under ``REPRO_SANITIZE=1``.

The sanitizer deliberately trades memory (quarantine never recycles
slots) and a constant per-operation check for diagnosis; it is a CI and
debugging mode, not a production one.  The full tier-1 suite runs green
under ``REPRO_SANITIZE=1`` in its own CI leg.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import itertools
import os
import sys
import warnings
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..bdd.manager import TRUE_NODE, BddManager, _NODE_BITS

__all__ = [
    "CrossManagerError",
    "EventLoopStallWarning",
    "MemoLeakError",
    "SanitizedBddManager",
    "SanitizerError",
    "UseAfterFreeError",
    "loop_stall_monitor",
]


class SanitizerError(RuntimeError):
    """Base class for sanitizer diagnoses (all are real contract bugs)."""


class UseAfterFreeError(SanitizerError):
    """A node id whose slot was reclaimed was fed back into the kernel."""


class CrossManagerError(SanitizerError):
    """A node id from one manager was fed into a different manager."""


class MemoLeakError(SanitizerError):
    """A memo/unique-table entry survived a sweep that should have evicted it."""


class EventLoopStallWarning(UserWarning):
    """The service event loop was blocked past the sanitizer's budget."""


#: Sentinel level for poison-padding slots: never allocated, never freed,
#: skipped by every kernel loop (which guard on ``_var[i] >= 0`` for live
#: and ``== -1`` for freed).
_POISON_LEVEL = -2

#: Live sanitized managers, so cross-manager errors can name the owner.
_LIVE_MANAGERS: "weakref.WeakSet[SanitizedBddManager]" = weakref.WeakSet()

_MANAGER_SEQ = itertools.count(1)

#: Frames from these files *inside the repro package* are skipped when
#: attributing a protect() call — the package check matters so that a
#: caller's module that merely shares a basename (``test_sanitizer.py``,
#: someone's own ``manager.py``) is still attributed.
_INTERNAL_FRAME_FILES = frozenset({"manager.py", "sanitizer.py", "function.py"})

_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _call_site() -> str:
    """``file:line`` of the nearest caller outside kernel/wrapper code."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        internal = (
            os.path.basename(filename) in _INTERNAL_FRAME_FILES
            and os.path.abspath(filename).startswith(_PACKAGE_DIR + os.sep)
        )
        if not internal:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class SanitizedBddManager(BddManager):
    """A :class:`BddManager` with runtime contract enforcement.

    Drop-in compatible: same constructor, same public API, same results.
    Constructing one directly is how the tests exercise specific
    diagnoses; setting ``REPRO_SANITIZE=1`` makes every plain
    ``BddManager(...)`` call build one of these instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sanitize_seq = next(_MANAGER_SEQ)
        #: slot -> how many times it has been freed (quarantine generation).
        self._generation: Dict[int, int] = {}
        #: Slots retired forever — never returned to the allocator.
        self._quarantine: List[int] = []
        self._sweep_epoch = 0
        #: node -> stack of ``file:line`` sites holding a protection.
        self._protect_sites: Dict[int, List[str]] = {}
        # Poison padding: a per-manager run of dead slots directly after
        # the terminals, so distinct managers assign different ids to the
        # same structure and a foreign id lands on poison, not on a live
        # node.  Kernel loops skip them (level < 0, never on the free list).
        pad = 2 + (self._sanitize_seq * 29) % 61
        start = len(self._var)
        for _ in range(pad):
            self._var.append(_POISON_LEVEL)
            self._lo.append(0)
            self._hi.append(0)
            self._ref.append(0)
        self._poison_span = (start, start + pad)
        _LIVE_MANAGERS.add(self)

    # -- operand validation ----------------------------------------------------

    def _owner_description(self, node: int) -> Optional[str]:
        for manager in list(_LIVE_MANAGERS):
            if manager is self:
                continue
            # Deliberate peek at a *foreign* manager's store to name the
            # true owner in the diagnostic; read-only, no id is held.
            if 0 <= node < len(manager._var) and manager._var[node] >= 0:  # repro: noqa[RPL003]
                return f"SanitizedBddManager #{manager._sanitize_seq}"
        return None

    def _check_node(self, node: int, operation: str) -> None:
        """Raise unless ``node`` is a valid, live id of *this* manager."""
        if type(node) is not int:
            raise SanitizerError(
                f"{operation}() got {node!r} ({type(node).__name__}) — "
                "node ids are plain ints"
            )
        if node < 0 or node >= len(self._var):
            owner = self._owner_description(node)
            owned = f"; it is live in {owner}" if owner else ""
            raise CrossManagerError(
                f"{operation}() got node {node}, which is outside this "
                f"manager's store (manager #{self._sanitize_seq}, "
                f"{len(self._var)} slots){owned} — node ids never cross "
                "BddManager instances"
            )
        level = self._var[node]
        if level == _POISON_LEVEL:
            owner = self._owner_description(node)
            owned = f"; it is live in {owner}" if owner else ""
            raise CrossManagerError(
                f"{operation}() got node {node}, which falls on manager "
                f"#{self._sanitize_seq}'s poison padding{owned} — it was "
                "built by a different manager"
            )
        if level == -1:
            generation = self._generation.get(node, 1)
            raise UseAfterFreeError(
                f"{operation}() got node {node}, freed in sweep epoch "
                f"{self._sweep_epoch} (slot generation {generation}) — the "
                "id was held across a gc()/reorder() without protect() or a "
                "SymbolicFunction wrap"
            )

    def _check_nodes(self, nodes: Iterable[int], operation: str) -> List[int]:
        items = list(nodes)
        for node in items:
            self._check_node(node, operation)
        return items

    # -- quarantine (use-after-free) -------------------------------------------

    def _quarantine_freed(self) -> None:
        """Retire everything the last sweep freed; stale ids stay tombstones."""
        free = self._free
        if not free:
            return
        for slot in free:
            self._generation[slot] = self._generation.get(slot, 0) + 1
        self._quarantine.extend(free)
        del free[:]

    def gc(self, extra_roots: Iterable[int] = ()) -> int:
        roots = self._check_nodes(extra_roots, "gc")
        reclaimed = super().gc(roots)
        self._sweep_epoch += 1
        self._quarantine_freed()
        self.check_integrity()
        return reclaimed

    def reorder(self, *args, **kwargs) -> int:
        swaps = super().reorder(*args, **kwargs)
        self._sweep_epoch += 1
        self._quarantine_freed()
        self.check_integrity()
        return swaps

    # -- sweep-epoch memo validation -------------------------------------------

    def _is_live(self, node: int) -> bool:
        return 0 <= node < len(self._var) and (
            node <= TRUE_NODE or self._var[node] >= 0
        )

    def check_integrity(self) -> None:
        """Validate unique tables and memo caches against the live store.

        Called automatically after every sweep; raises
        :class:`MemoLeakError` when an entry references a reclaimed slot
        (the bug class where a stale memo resurrects a dead id) and
        :class:`SanitizerError` for structural damage (mis-levelled or
        mis-keyed unique-table entries).
        """
        epoch = self._sweep_epoch
        for level, table in enumerate(self._utables):
            for key, node in table.items():
                if not self._is_live(node) or node <= TRUE_NODE:
                    raise MemoLeakError(
                        f"unique table level {level} references dead node "
                        f"{node} after sweep epoch {epoch}"
                    )
                if self._var[node] != level:
                    raise SanitizerError(
                        f"unique table level {level} holds node {node} whose "
                        f"level is {self._var[node]}"
                    )
                if ((self._lo[node] << _NODE_BITS) | self._hi[node]) != key:
                    raise SanitizerError(
                        f"unique table level {level} key {key} does not match "
                        f"node {node}'s children"
                    )
        for a, b in self._not_cache.items():
            if not (self._is_live(a) and self._is_live(b)):
                raise MemoLeakError(
                    f"negation cache pair ({a}, {b}) survived sweep epoch "
                    f"{epoch} with a dead side"
                )
        for value in self._op_cache.values():
            if not self._is_live(value):
                raise MemoLeakError(
                    f"op cache result {value} is dead after sweep epoch {epoch}"
                )
        for entry in self._isop_cache.values():
            node = entry[0]
            if not self._is_live(node):
                raise MemoLeakError(
                    f"isop cache node {node} is dead after sweep epoch {epoch}"
                )

    # -- protection accounting --------------------------------------------------

    def protect(self, node: int) -> int:
        self._check_node(node, "protect")
        if node > TRUE_NODE:
            self._protect_sites.setdefault(node, []).append(_call_site())
        return super().protect(node)

    def release(self, node: int) -> None:
        self._check_node(node, "release")
        if node > TRUE_NODE and self._ref[node] > 0:
            sites = self._protect_sites.get(node)
            if sites:
                sites.pop()
                if not sites:
                    del self._protect_sites[node]
        super().release(node)

    def stats(self):
        """Kernel stats with the sanitizer's bookkeeping slots factored out.

        Poison padding is subtracted from ``allocated_slots`` (those slots
        were never allocatable) and quarantined slots count as free (they
        *are* reclaimed — just never recycled), so the public invariant
        ``allocated == live + free`` holds under the sanitizer too.
        """
        snapshot = super().stats()
        start, end = self._poison_span
        return dataclasses.replace(
            snapshot,
            allocated_slots=snapshot.allocated_slots - (end - start),
            free_slots=snapshot.free_slots + len(self._quarantine),
        )

    def leak_report(self) -> Dict[str, int]:
        """Unreleased protections, aggregated by ``file:line`` call site.

        Nodes still legitimately held (e.g. by live ``SymbolicFunction``
        objects) appear here too — at shutdown, after dropping every
        handle, a non-empty report means protect/release imbalance.
        """
        leaks: Dict[str, int] = {}
        for node, sites in self._protect_sites.items():
            if node < len(self._ref) and self._ref[node] > 0:
                for site in sites:
                    leaks[site] = leaks.get(site, 0) + 1
        return leaks

    def describe_leaks(self) -> str:
        """Human-readable :meth:`leak_report` (empty string when clean)."""
        leaks = self.leak_report()
        if not leaks:
            return ""
        lines = [
            f"repro sanitizer: manager #{self._sanitize_seq} has "
            f"{sum(leaks.values())} unreleased protection(s):"
        ]
        for site, count in sorted(leaks.items(), key=lambda item: -item[1]):
            lines.append(f"  {site}: {count}")
        return "\n".join(lines)


def _validated(name: str, positions: Tuple[int, ...]) -> Callable:
    base = getattr(BddManager, name)

    @functools.wraps(base)
    def method(self, *args, **kwargs):
        for position in positions:
            if position < len(args):
                self._check_node(args[position], name)
        return base(self, *args, **kwargs)

    return method


# Public operations taking node ids at fixed positions (0-based, after
# self).  protect/release/gc/reorder have bespoke overrides above;
# and_all/or_all/compose_many take collections and are overridden below.
_VALIDATED_OPERATIONS = {
    "ite": (0, 1, 2),
    "not_": (0,),
    "and_": (0, 1),
    "or_": (0, 1),
    "xor": (0, 1),
    "implies": (0, 1),
    "iff": (0, 1),
    "restrict": (0,),
    "compose": (0, 2),
    "constrain": (0, 1),
    "restrict_with": (0, 1),
    "exists": (0,),
    "forall": (0,),
    "and_exists": (0, 1),
    "isop": (0,),
    "isop_cover": (0,),
    "is_true": (0,),
    "is_false": (0,),
    "equivalent": (0, 1),
    "evaluate": (0,),
    "support": (0,),
    "density": (0,),
    "sat_count": (0,),
    "find_difference": (0, 1),
    "pick_one": (0,),
    "all_sat": (0,),
    "dag_size": (0,),
}

for _name, _positions in _VALIDATED_OPERATIONS.items():
    setattr(SanitizedBddManager, _name, _validated(_name, _positions))
del _name, _positions


def _validated_collection(name: str) -> Callable:
    base = getattr(BddManager, name)

    @functools.wraps(base)
    def method(self, nodes, *args, **kwargs):
        return base(self, self._check_nodes(nodes, name), *args, **kwargs)

    return method


SanitizedBddManager.and_all = _validated_collection("and_all")
SanitizedBddManager.or_all = _validated_collection("or_all")


def _compose_many(self, f: int, mapping: Dict[str, int]) -> int:
    self._check_node(f, "compose_many")
    for node in mapping.values():
        self._check_node(node, "compose_many")
    return BddManager.compose_many(self, f, mapping)


SanitizedBddManager.compose_many = functools.wraps(BddManager.compose_many)(
    _compose_many
)


# -- event-loop stall detection ------------------------------------------------


async def loop_stall_monitor(
    interval: float = 0.05,
    budget: float = 0.25,
    warn: Optional[Callable[[str], None]] = None,
) -> None:
    """Warn whenever the running event loop stalls past ``budget`` seconds.

    Sleeps ``interval`` seconds in a loop and measures scheduling lag —
    the time the wakeup was *late*.  Lag beyond ``budget`` means some
    coroutine step blocked the loop (exactly the RPL005 bug class, caught
    at runtime).  Emits :class:`EventLoopStallWarning` through ``warn``
    (default: :func:`warnings.warn`).  Run as a task; cancel to stop —
    the service does both automatically under ``REPRO_SANITIZE=1``.
    """
    loop = asyncio.get_running_loop()

    def default_warn(message: str) -> None:
        warnings.warn(EventLoopStallWarning(message), stacklevel=2)

    emit = warn or default_warn
    while True:
        before = loop.time()
        await asyncio.sleep(interval)
        lag = loop.time() - before - interval
        if lag > budget:
            emit(
                f"event loop stalled for {lag:.3f}s (budget {budget:.3f}s) — "
                "a coroutine is doing blocking work on the loop thread"
            )
