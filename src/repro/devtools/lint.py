"""The contract-lint framework: rule registry, findings, noqa, output.

This is ``ruff`` for the contracts ruff cannot know about: each rule in
:mod:`repro.devtools.rules` encodes one repo-specific invariant (node
protection before GC, reorder inhibition around raw-id regions,
``STAGE_DEPENDENCIES`` coverage, non-blocking coroutines, ...) as a
static check over the AST.  The framework here is rule-agnostic:

* :class:`Rule` — subclass, set ``code``/``summary``, implement
  :meth:`Rule.check`, decorate with :func:`register`;
* :class:`SourceFile` — one parsed file: text, lines, AST and the
  per-line ``# repro: noqa[RPLnnn]`` suppressions;
* :func:`lint_paths` — walk files/directories, run the selected rules,
  apply suppressions, return sorted :class:`Finding` objects;
* :func:`render_text` / :func:`render_json` — the two output shapes
  (``repro lint`` / ``repro lint --json``).

Rules are *heuristics with teeth*: they aim for zero false positives on
idiomatic code, and anything deliberate is silenced in place with
``# repro: noqa[RPLnnn]`` — which keeps every suppression greppable.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

__all__ = [
    "Finding",
    "LintError",
    "Rule",
    "SourceFile",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "resolve_codes",
]

#: ``# repro: noqa`` silences every rule on the line; ``# repro:
#: noqa[RPL001]`` (comma-separated codes allowed) silences just those.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9,\s]+)\])?")

_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".venv",
    "build",
    "dist",
}

#: Reported for files the linter cannot parse at all.
SYNTAX_ERROR_CODE = "RPL000"


class LintError(ValueError):
    """Bad linter invocation (unknown rule code, missing path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation, anchored to a precise source span."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready shape (stable keys; consumed by editors and CI)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def describe(self) -> str:
        """The classic compiler one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceFile:
    """A parsed source file plus its per-line noqa suppressions."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        # line number -> None (suppress everything) or a set of codes.
        self.noqa: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA.search(line)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None:
                self.noqa[lineno] = None
            else:
                wanted = {code.strip().upper() for code in codes.split(",")}
                self.noqa[lineno] = {code for code in wanted if code}

    def suppressed(self, finding: Finding) -> bool:
        """Is this finding silenced by a noqa comment on its line?"""
        if finding.line not in self.noqa:
            return False
        codes = self.noqa[finding.line]
        return codes is None or finding.rule in codes

    def finding(self, node: ast.AST, rule: "Rule", message: str) -> Finding:
        """A finding anchored at an AST node's span (1-based line/col)."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.code,
            message=message,
        )


class Rule:
    """Base class for contract rules.

    Subclasses set :attr:`code` (``RPLnnn``) and :attr:`summary` (one
    line, shown by ``repro lint --rules help`` and in docs), and
    implement :meth:`check`.  ``exempt_path_suffixes`` lists path
    endings the rule never applies to — e.g. the BDD kernel itself is
    allowed to touch its own internals.
    """

    code: str = ""
    summary: str = ""
    exempt_path_suffixes: Sequence[str] = ()

    def applies_to(self, source: SourceFile) -> bool:
        normalized = source.path.replace("\\", "/")
        return not any(
            normalized.endswith(suffix) for suffix in self.exempt_path_suffixes
        )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry (keyed by code)."""
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The full registry, importing the bundled rules on first use."""
    from . import rules  # noqa: F401  (import registers the RPL rules)

    return dict(_REGISTRY)


def resolve_codes(spec: Optional[str]) -> List[str]:
    """Parse a ``--rules`` filter ("RPL001,RPL003") into known codes."""
    registry = all_rules()
    if not spec:
        return sorted(registry)
    codes = []
    for part in spec.split(","):
        code = part.strip().upper()
        if not code:
            continue
        if code not in registry:
            known = ", ".join(sorted(registry))
            raise LintError(f"unknown rule {code!r} (known rules: {known})")
        codes.append(code)
    if not codes:
        raise LintError(f"--rules selected nothing from {spec!r}")
    return sorted(set(codes))


def _python_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {raw}")
        if path.is_file():
            files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            files.append(candidate)
    # De-duplicate while keeping a stable order.
    seen: Set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def lint_paths(
    paths: Sequence[str], codes: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint files and directories; returns findings sorted by position.

    ``codes`` restricts to a subset of registered rules (default: all).
    Unparseable files yield a single :data:`SYNTAX_ERROR_CODE` finding
    rather than aborting the run.
    """
    registry = all_rules()
    selected = [registry[code]() for code in (codes or sorted(registry))]
    findings: List[Finding] = []
    for path in _python_files(paths):
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=SYNTAX_ERROR_CODE,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        source = SourceFile(str(path), text, tree)
        for rule in selected:
            if not rule.applies_to(source):
                continue
            for finding in rule.check(source):
                if not source.suppressed(finding):
                    findings.append(finding)
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail (empty input → all-clear)."""
    if not findings:
        return "contract lint: clean"
    lines = [finding.describe() for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    tally = ", ".join(f"{code}: {count}" for code, count in sorted(by_rule.items()))
    lines.append(f"contract lint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable output for ``repro lint --json`` (stable ordering)."""
    return json.dumps(
        {
            "findings": [finding.as_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )
