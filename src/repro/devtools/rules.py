"""The bundled contract rules (RPL001–RPL007).

Each rule encodes one invariant from the kernel/service contracts (see
``docs/contracts.md`` for the catalog with rationale and worked
examples).  They are deliberately syntactic heuristics — precise enough
to be zero-noise on idiomatic code, simple enough to audit — and every
deliberate exception is silenced in place with ``# repro: noqa[RPLnnn]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .lint import Finding, Rule, SourceFile, register

#: BddManager methods that return a *raw node id* the GC does not know
#: about.  ``true``/``false`` are excluded (terminals are never swept),
#: and ``protect`` is excluded because protecting is the fix.
NODE_RETURNING_METHODS = frozenset(
    {
        "var",
        "nvar",
        "ite",
        "not_",
        "and_",
        "or_",
        "xor",
        "implies",
        "iff",
        "and_all",
        "or_all",
        "restrict",
        "compose",
        "compose_many",
        "constrain",
        "restrict_with",
        "exists",
        "forall",
        "and_exists",
        "_make_node",
    }
)

#: Methods that *combine* nodes, i.e. where a foreign-manager operand is
#: a silent-wrong-answer bug (node ids are plain ints; an id from
#: another manager aliases an arbitrary function in this one).
NODE_COMBINING_METHODS = frozenset(
    {
        "ite",
        "and_",
        "or_",
        "xor",
        "implies",
        "iff",
        "and_all",
        "or_all",
        "compose",
        "compose_many",
        "constrain",
        "restrict_with",
        "and_exists",
        "equivalent",
        "find_difference",
    }
)

#: Manager internals whose raw contents (node ids, free slots, table
#: entries) go stale across a GC or an automatic reorder.
MANAGER_INTERNALS = frozenset({"_var", "_lo", "_hi", "_ref", "_free", "_utables"})

#: JobSpec fields a campaign stage may read — the universe RPL004 checks
#: ``STAGE_DEPENDENCIES`` coverage against.  Kept in sync with
#: :class:`repro.campaign.spec.JobSpec` (the rule prefers the live
#: dataclass when it can import it).
JOBSPEC_FIELDS = (
    "arch",
    "stages",
    "workload_length",
    "workload_seed",
    "num_programs",
    "max_faults",
)


def _receiver_name(expr: ast.expr) -> Optional[str]:
    """The trailing identifier of a ``Name``/``Attribute`` chain, or None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_managerish(expr: ast.expr) -> bool:
    """Does this expression read like a BddManager handle?

    Matches the repo's naming idiom: ``manager``, ``mgr``, ``self.manager``,
    ``context.manager``, ``self._manager`` and friends.
    """
    name = _receiver_name(expr)
    if name is None:
        return False
    return "manager" in name.lower() or name in {"mgr", "m"}


def _expr_text(expr: ast.expr) -> str:
    """Source-ish text of an expression, for same-receiver comparison."""
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return repr(expr)


def _node_call(expr: ast.expr) -> Optional[Tuple[ast.expr, str]]:
    """``(receiver, method)`` when ``expr`` is a raw-node-returning call
    on a manager-looking receiver, else None."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in NODE_RETURNING_METHODS
        and _is_managerish(expr.func.value)
    ):
        return expr.func.value, expr.func.attr
    return None


def _function_defs(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class UnprotectedNodeStore(Rule):
    """RPL001: a raw node id parked on ``self`` or at module scope.

    ``self.x = manager.and_(f, g)`` outlives the statement, but the GC
    only sees protected nodes — the next ``gc()``/``reorder()`` reclaims
    the id and ``self.x`` silently aliases whatever reuses the slot.
    The fix is ``manager.protect(...)`` around the call (paired with a
    ``release``) or wrapping in a ``SymbolicFunction``/``context.function``.
    """

    code = "RPL001"
    summary = (
        "raw BDD node id stored on self/module scope without protect() "
        "or a SymbolicFunction wrap"
    )

    _WRAPPERS = frozenset({"protect", "function", "SymbolicFunction"})

    def _wrapped(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in self._WRAPPERS:
            return True
        if isinstance(func, ast.Name) and func.id in self._WRAPPERS:
            return True
        return False

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []

        def escapes(target: ast.expr) -> bool:
            # self.<attr> = ... anywhere, or NAME = ... at module scope.
            if isinstance(target, ast.Attribute):
                return isinstance(target.value, ast.Name) and target.value.id == "self"
            return False

        module_level = {id(stmt) for stmt in source.tree.body}

        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or self._wrapped(value):
                continue
            called = _node_call(value)
            if called is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                stored = escapes(target) or (
                    isinstance(target, ast.Name) and id(node) in module_level
                )
                if stored:
                    where = (
                        "self attribute" if isinstance(target, ast.Attribute)
                        else "module scope"
                    )
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"raw node id from .{called[1]}() stored on {where} "
                            "without protect()/SymbolicFunction — the next "
                            "gc()/reorder() can reclaim it",
                        )
                    )
        return findings


@register
class CrossManagerMix(Rule):
    """RPL002: one manager's operation fed a node built by another.

    Node ids are plain ints scoped to their manager; ``a.and_(f,
    b.var("x"))`` does not error — it aliases an arbitrary function of
    ``a``.  The rule flags combining calls whose argument is itself a
    node-returning call on a *textually different* manager expression.
    """

    code = "RPL002"
    summary = "BDD operation mixes nodes from two distinct manager expressions"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in NODE_COMBINING_METHODS
                and _is_managerish(node.func.value)
            ):
                continue
            outer = _expr_text(node.func.value)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                inner = _node_call(arg)
                if inner is None:
                    continue
                inner_text = _expr_text(inner[0])
                if inner_text != outer:
                    findings.append(
                        source.finding(
                            arg,
                            self,
                            f"operand built by {inner_text}.{inner[1]}() passed "
                            f"into {outer}.{node.func.attr}() — node ids never "
                            "cross managers",
                        )
                    )
        return findings


@register
class RawLoopWithoutPostpone(Rule):
    """RPL003: a loop over manager internals outside ``postpone_reorder()``.

    Code that walks ``_var``/``_lo``/``_hi`` (or replays nodes through
    ``_make_node``) holds raw ids in locals across many operations; an
    auto-reorder triggered mid-loop reclaims nodes only those locals
    reference.  Wrap the loop in ``with manager.postpone_reorder():``.
    """

    code = "RPL003"
    summary = (
        "raw-id loop over manager internals outside a postpone_reorder() block"
    )
    exempt_path_suffixes = ("repro/bdd/manager.py", "bdd/manager.py")

    def _aliases(self, scope: ast.AST) -> Set[str]:
        """Names bound (in this scope) to manager internals or _make_node."""
        aliases: Set[str] = set()
        stack: List[ast.AST] = list(getattr(scope, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes collect their own aliases
            if isinstance(node, ast.Assign):
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and _is_managerish(value.value)
                    and (value.attr in MANAGER_INTERNALS or value.attr == "_make_node")
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
            stack.extend(ast.iter_child_nodes(node))
        return aliases

    def _is_postponed_with(self, node: ast.AST) -> bool:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            return False
        for item in node.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Call)
                and isinstance(ctx.func, ast.Attribute)
                and ctx.func.attr == "postpone_reorder"
            ):
                return True
        return False

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        scopes: List[ast.AST] = [source.tree]
        scopes.extend(_function_defs(source.tree))

        for scope in scopes:
            aliases = self._aliases(scope)
            body = scope.body if hasattr(scope, "body") else []
            self._walk(source, body, aliases, False, False, findings, scope)
        return findings

    def _walk(
        self,
        source: SourceFile,
        body: Sequence[ast.stmt],
        aliases: Set[str],
        in_loop: bool,
        postponed: bool,
        findings: List[Finding],
        scope: ast.AST,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes are visited on their own
            stmt_postponed = postponed or self._is_postponed_with(stmt)
            stmt_in_loop = in_loop or isinstance(stmt, (ast.For, ast.While))
            if stmt_in_loop and not stmt_postponed:
                self._flag_expressions(source, stmt, aliases, in_loop, findings)
            for child_body in self._child_bodies(stmt):
                self._walk(
                    source,
                    child_body,
                    aliases,
                    stmt_in_loop,
                    stmt_postponed,
                    findings,
                    scope,
                )

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if block:
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    def _flag_expressions(
        self,
        source: SourceFile,
        stmt: ast.stmt,
        aliases: Set[str],
        already_in_loop: bool,
        findings: List[Finding],
    ) -> None:
        """Flag internal accesses in the *header and inline expressions* of
        ``stmt`` (loop bodies recurse through :meth:`_walk`)."""
        inline: List[ast.expr] = []
        if isinstance(stmt, ast.For):
            inline.append(stmt.iter)
            if already_in_loop:
                inline.append(stmt.target)
        elif isinstance(stmt, ast.While):
            inline.append(stmt.test)
        elif not isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try, ast.If)):
            inline.extend(
                node for node in ast.iter_child_nodes(stmt)
                if isinstance(node, ast.expr)
            )
        elif isinstance(stmt, ast.If):
            inline.append(stmt.test)
        for expr in inline:
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in MANAGER_INTERNALS
                    and _is_managerish(node.value)
                ):
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"loop reads manager internal ._{node.attr.lstrip('_')} "
                            "outside postpone_reorder() — an auto-reorder here "
                            "reclaims unprotected ids",
                        )
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "_make_node"
                    and _is_managerish(node.func.value)
                ):
                    findings.append(
                        source.finding(
                            node,
                            self,
                            "loop replays nodes through ._make_node() outside "
                            "postpone_reorder()",
                        )
                    )
                elif isinstance(node, ast.Name) and node.id in aliases and isinstance(
                    node.ctx, ast.Load
                ):
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"loop uses {node.id!r} (bound to a manager internal) "
                            "outside postpone_reorder()",
                        )
                    )


@register
class StageDependencyDrift(Rule):
    """RPL004: a stage function reads a JobSpec field its entry omits.

    ``stage_key()`` hashes only the fields listed in
    ``STAGE_DEPENDENCIES`` — a stage that reads an unlisted field keeps
    one cache key across values of that field, so incremental campaigns
    replay stale results (see PERFORMANCE.md, dependency-hashed stage
    identity).  Over-listing merely re-runs; under-listing poisons.
    """

    code = "RPL004"
    summary = (
        "JobSpec field read inside a stage function missing from that "
        "stage's STAGE_DEPENDENCIES entry"
    )

    _PARAM_NAMES = ("job", "spec")

    def _literal_dependencies(
        self, tree: ast.Module
    ) -> Optional[Dict[str, Set[str]]]:
        for node in tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == "STAGE_DEPENDENCIES"):
                continue
            if not isinstance(node.value, ast.Dict):
                return None
            mapping: Dict[str, Set[str]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    return None
                fields: Set[str] = set()
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            fields.add(element.value)
                mapping[key.value] = fields
            return mapping
        return None

    def _imported_dependencies(
        self, tree: ast.Module
    ) -> Optional[Dict[str, Set[str]]]:
        imports_it = any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "STAGE_DEPENDENCIES" for alias in node.names)
            for node in ast.walk(tree)
        )
        if not imports_it:
            return None
        try:
            from ..campaign.spec import STAGE_DEPENDENCIES
        except Exception:  # pragma: no cover - only without the package on path
            return None
        return {stage: set(fields) for stage, fields in STAGE_DEPENDENCIES.items()}

    @staticmethod
    def _field_universe() -> Set[str]:
        try:
            import dataclasses

            from ..campaign.spec import JobSpec

            return {field.name for field in dataclasses.fields(JobSpec)}
        except Exception:  # pragma: no cover - fallback for detached use
            return set(JOBSPEC_FIELDS)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        dependencies = self._literal_dependencies(source.tree)
        if dependencies is None:
            dependencies = self._imported_dependencies(source.tree)
        if dependencies is None:
            return []
        fields = self._field_universe()
        findings: List[Finding] = []
        for func in _function_defs(source.tree):
            name = func.name
            stage = None
            for prefix in ("_stage_", "stage_"):
                if name.startswith(prefix):
                    stage = name[len(prefix):]
                    break
            if stage is None or stage not in dependencies:
                continue
            params = {arg.arg for arg in func.args.args}
            spec_params = [p for p in self._PARAM_NAMES if p in params]
            if not spec_params:
                continue
            allowed = dependencies[stage]
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in spec_params
                    and node.attr in fields
                ):
                    continue
                if node.attr not in allowed:
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"stage {stage!r} reads job.{node.attr} but its "
                            "STAGE_DEPENDENCIES entry omits it — stage_key() "
                            "will not change with this field and cached "
                            "results go stale",
                        )
                    )
        return findings


@register
class BlockingCallInCoroutine(Rule):
    """RPL005: a blocking call directly inside an ``async def`` body.

    One blocking call freezes every job stream and health check the
    daemon is serving.  Blocking work belongs on the runner/probe
    executors via ``run_in_executor`` (see ``repro/service/daemon.py``).
    """

    code = "RPL005"
    summary = "blocking call (sleep/subprocess/file or socket I/O) in async def"

    _BLOCKING_ATTR_ON_MODULE = {
        "time": {"sleep"},
        "subprocess": {
            "run",
            "call",
            "check_call",
            "check_output",
            "Popen",
            "getoutput",
            "getstatusoutput",
        },
        "os": {"system", "popen", "waitpid"},
        "socket": {"create_connection", "getaddrinfo", "gethostbyname"},
        "urllib": set(),  # handled via the chain text below
    }
    _BLOCKING_NAMES = {"open", "HTTPConnection", "HTTPSConnection", "urlopen"}
    _BLOCKING_METHODS = {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "urlopen",
        "HTTPConnection",
        "HTTPSConnection",
    }

    def _blocking(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self._BLOCKING_NAMES:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                allowed = self._BLOCKING_ATTR_ON_MODULE.get(base.id)
                if allowed is not None and func.attr in allowed:
                    return f"{base.id}.{func.attr}()"
            if func.attr in self._BLOCKING_METHODS:
                return f"{_expr_text(func)}()"
        return None

    def _direct_body(self, func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk the coroutine body without descending into nested defs."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(source.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in self._direct_body(func):
                if not isinstance(node, ast.Call):
                    continue
                what = self._blocking(node)
                if what is not None:
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"blocking {what} inside async def {func.name}() — "
                            "hop to an executor (run_in_executor) instead of "
                            "stalling the event loop",
                        )
                    )
        return findings


@register
class OffThreadServiceMutation(Rule):
    """RPL006: service/job-table state touched from the runner thread.

    Everything mutable on :class:`VerificationService` and its
    ``JobRecord`` table is loop-thread-only; the runner thread must
    publish through ``loop.call_soon_threadsafe`` (the ``post`` helper in
    ``_execute``).  The rule flags direct mutation or direct calls to the
    loop-thread-only methods inside runner-thread methods (``_execute*``)
    of ``*Service`` classes.
    """

    code = "RPL006"
    summary = (
        "VerificationService/job-table state mutated outside the event-loop "
        "thread's call_soon_threadsafe hop"
    )

    _LOOP_ONLY_CALLS = frozenset({"_transition", "_finalize", "publish"})
    _TABLE_ATTRS = frozenset({"_jobs", "_order", "_active_key", "_current_job_id"})

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for cls in ast.walk(source.tree):
            if not (isinstance(cls, ast.ClassDef) and cls.name.endswith("Service")):
                continue
            for method in cls.body:
                if not (
                    isinstance(method, ast.FunctionDef)
                    and method.name.startswith("_execute")
                ):
                    continue
                findings.extend(self._check_runner_method(source, method))
        return findings

    def _check_runner_method(
        self, source: SourceFile, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    described = self._mutated_state(target)
                    if described is not None:
                        yield source.finding(
                            node,
                            self,
                            f"runner thread mutates {described} directly — "
                            "route through post()/call_soon_threadsafe",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self._LOOP_ONLY_CALLS:
                    yield source.finding(
                        node,
                        self,
                        f"runner thread calls .{node.func.attr}() directly — "
                        "loop-thread-only; pass it to post()/"
                        "call_soon_threadsafe instead",
                    )

    def _mutated_state(self, target: ast.expr) -> Optional[str]:
        # record.<attr> = ...   (JobRecord fields are loop-thread-only)
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id in {"record", "job"}:
                return f"{target.value.id}.{target.attr}"
            if target.value.id == "self" and target.attr in self._TABLE_ATTRS:
                return f"self.{target.attr}"
        # self._jobs[...] = ... / del-style subscript writes
        if isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in self._TABLE_ATTRS
            ):
                return f"self.{base.attr}[...]"
        return None


@register
class RawStageTiming(Rule):
    """RPL007: hand-rolled clock timing inside a pipeline stage function.

    Stage wall-clock belongs to the observability layer: the stage loop
    in ``run_verification_job`` wraps every stage in :func:`repro.obs.span`
    and feeds the ``repro_stage_seconds`` histogram, so a
    ``time.monotonic()``/``time.perf_counter()`` pair inside a
    ``_stage_*`` function produces a second, unaggregated timing that
    drifts from the traced one and never reaches ``/v1/metrics``.  Time
    a sub-step with a nested ``span(...)`` (or attach the number to the
    open span with ``repro.obs.annotate``) instead.
    """

    code = "RPL007"
    summary = (
        "raw time.monotonic()/perf_counter() timing inside a stage "
        "function instead of the repro.obs span API"
    )

    _CLOCKS = frozenset(
        {
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in _function_defs(source.tree):
            name = getattr(func, "name", "")
            if not name.startswith(("_stage_", "stage_")):
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._CLOCKS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"
                ):
                    findings.append(
                        source.finding(
                            node,
                            self,
                            f"stage function {name}() reads time.{node.func.attr}() "
                            "directly — the stage loop already times stages into "
                            "repro_stage_seconds; wrap the sub-step in "
                            "repro.obs.span() or annotate() the open span",
                        )
                    )
        return findings
