"""Correctness tooling: the contract lint and the runtime sanitizer.

The codebase rests on a stack of correctness contracts the type system
cannot see — raw BDD node ids must be protected before GC, raw-id
regions must inhibit reordering, nodes must never cross
:class:`~repro.bdd.manager.BddManager` instances, ``STAGE_DEPENDENCIES``
must cover exactly the spec fields each campaign stage reads, and the
asyncio daemon must never block its event loop.  This package enforces
them twice over:

* **statically** — :mod:`repro.devtools.lint` is an AST-based contract
  linter (``repro lint``; rules RPL001–RPL007 in
  :mod:`repro.devtools.rules`) that flags violations at review time,
  with ``# repro: noqa[RPLnnn]`` suppression and JSON output for CI;
* **dynamically** — :mod:`repro.devtools.sanitizer` turns the silent
  failure modes into loud ones at runtime: ``REPRO_SANITIZE=1`` swaps
  every :class:`~repro.bdd.manager.BddManager` for a
  :class:`~repro.devtools.sanitizer.SanitizedBddManager` that
  quarantines freed slots (use-after-free raises), rejects ids from
  other managers, validates memo tables after every sweep, tracks
  unreleased protections by call site, and watches the service's event
  loop for stalls.

The rule catalog with rationale and examples is ``docs/contracts.md``.
"""

from .lint import Finding, LintError, lint_paths, render_json, render_text
from .sanitizer import (
    CrossManagerError,
    EventLoopStallWarning,
    MemoLeakError,
    SanitizedBddManager,
    SanitizerError,
    UseAfterFreeError,
    loop_stall_monitor,
)

__all__ = [
    "CrossManagerError",
    "EventLoopStallWarning",
    "Finding",
    "LintError",
    "MemoLeakError",
    "SanitizedBddManager",
    "SanitizerError",
    "UseAfterFreeError",
    "lint_paths",
    "loop_stall_monitor",
    "render_json",
    "render_text",
]
