"""DIMACS CNF import and export.

Interlock verification problems are tiny by SAT standards, but DIMACS
support makes it easy to cross-check results with an external solver and to
archive the generated problems alongside the specification.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

Clause = Tuple[int, ...]


def to_dimacs(num_vars: int, clauses: Iterable[Clause], comments: Iterable[str] = ()) -> str:
    """Render a clause set in DIMACS CNF format."""
    clause_list = [tuple(clause) for clause in clauses]
    lines: List[str] = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {num_vars} {len(clause_list)}")
    for clause in clause_list:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> Tuple[int, List[Clause]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``."""
    num_vars = 0
    declared_clauses = None
    clauses: List[Clause] = []
    pending: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {raw_line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(tuple(pending))
                pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(tuple(pending))
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ValueError(
            f"problem line declares {declared_clauses} clauses but {len(clauses)} were parsed"
        )
    return num_vars, clauses
