"""High-level decision procedures on expressions backed by the SAT solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..expr.ast import And, Expr, Iff, Not
from ..expr.cnf import to_cnf_clauses
from .solver import CdclSolver, SatResult


@dataclass
class Decision:
    """Result of a decision procedure call with an optional model."""

    answer: bool
    model: Optional[Dict[str, bool]] = None
    stats: Optional[SatResult] = None

    def __bool__(self) -> bool:
        return self.answer


def check_satisfiable(expr: Expr) -> Decision:
    """Is the expression satisfiable?  Returns a model if so."""
    cnf = to_cnf_clauses(expr)
    result = CdclSolver(cnf.num_vars, cnf.clauses).solve()
    if not result.satisfiable:
        return Decision(False, stats=result)
    model = {
        name: result.assignment.get(var_id, False)
        for name, var_id in cnf.var_ids.items()
    }
    return Decision(True, model=model, stats=result)


def check_valid(expr: Expr) -> Decision:
    """Is the expression a tautology?  Returns a counterexample if not."""
    refutation = check_satisfiable(Not(expr))
    if refutation.answer:
        return Decision(False, model=refutation.model, stats=refutation.stats)
    return Decision(True, stats=refutation.stats)


def check_equivalent(left: Expr, right: Expr) -> Decision:
    """Are two expressions logically equivalent?  Counterexample if not."""
    return check_valid(Iff(left, right))


def check_implies(antecedent: Expr, consequent: Expr) -> Decision:
    """Does ``antecedent`` entail ``consequent``?  Counterexample if not."""
    return check_valid(antecedent.implies(consequent))


def check_consistent(*exprs: Expr) -> Decision:
    """Is the conjunction of the given expressions satisfiable?"""
    if not exprs:
        return Decision(True)
    combined = exprs[0]
    for expr in exprs[1:]:
        combined = And(combined, expr)
    return check_satisfiable(combined)
