"""SAT solving substrate: CDCL solver, DIMACS IO, expression-level interface."""

from .dimacs import from_dimacs, to_dimacs
from .interface import (
    Decision,
    check_consistent,
    check_equivalent,
    check_implies,
    check_satisfiable,
    check_valid,
)
from .solver import CdclSolver, SatResult, solve_clauses

__all__ = [
    "from_dimacs",
    "to_dimacs",
    "Decision",
    "check_consistent",
    "check_equivalent",
    "check_implies",
    "check_satisfiable",
    "check_valid",
    "CdclSolver",
    "SatResult",
    "solve_clauses",
]
