"""A DPLL SAT solver with unit propagation, watched literals and VSIDS-lite.

The solver is small but complete; interlock-verification formulas have at
most a few hundred variables after Tseitin encoding, well inside its
comfortable range.  It implements:

* two-watched-literal unit propagation,
* conflict-driven clause learning with first-UIP analysis,
* non-chronological backjumping,
* an exponentially decayed activity heuristic for branching,
* restarts on a Luby sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Clause = Tuple[int, ...]


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    satisfiable: bool
    assignment: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable


class CdclSolver:
    """Conflict-driven clause learning solver over integer literals."""

    def __init__(self, num_vars: int, clauses: Iterable[Clause]):
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        # assignment[v] is None (unassigned), True or False for variable v (1-based).
        self.assignment: List[Optional[bool]] = [None] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (num_vars + 1)
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.watches: Dict[int, List[int]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._empty_clause = False
        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    # -- clause management ---------------------------------------------------

    def _add_clause(self, literals: List[int], learned: bool) -> Optional[int]:
        literals = self._normalise(literals)
        if literals is None:
            return None  # tautological clause, skip
        if not literals:
            self._empty_clause = True
            return None
        index = len(self.clauses)
        self.clauses.append(literals)
        if len(literals) == 1:
            # Unit clause: enqueue at the root level.
            lit = literals[0]
            if not self._enqueue(lit, None):
                self._empty_clause = True
            return index
        for lit in literals[:2]:
            self.watches.setdefault(-lit, []).append(index)
        return index

    @staticmethod
    def _normalise(literals: List[int]) -> Optional[List[int]]:
        seen = set()
        out = []
        for lit in literals:
            if -lit in seen:
                return None
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        return out

    # -- assignment/trail ------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        value = self.assignment[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation -------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        head = len(self.trail) - 1 if self.trail else 0
        queue_index = getattr(self, "_queue_index", 0)
        while queue_index < len(self.trail):
            lit = self.trail[queue_index]
            queue_index += 1
            self.propagations += 1
            watching = self.watches.get(lit, [])
            index = 0
            while index < len(watching):
                clause_index = watching[index]
                clause = self.clauses[clause_index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self.watches.setdefault(-clause[1], []).append(clause_index)
                        watching[index] = watching[-1]
                        watching.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) is False:
                    self._queue_index = len(self.trail)
                    return clause_index
                self._enqueue(first, clause_index)
                index += 1
        self._queue_index = queue_index
        _ = head
        return None

    # -- conflict analysis ----------------------------------------------------------

    def _analyse(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = list(self.clauses[conflict_index])
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for reason_lit in clause:
                var = abs(reason_lit)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # Find the next literal on the trail at the current level.
            while True:
                lit = self.trail[trail_index]
                trail_index -= 1
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[abs(lit)]
            clause = [l for l in self.clauses[reason_index] if l != lit]
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        backjump = max(self.level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100

    def _decay(self) -> None:
        self.var_inc /= self.var_decay

    # -- backtracking -----------------------------------------------------------------

    def _backjump(self, target_level: int) -> None:
        while self._decision_level() > target_level:
            boundary = self.trail_lim.pop()
            while len(self.trail) > boundary:
                lit = self.trail.pop()
                var = abs(lit)
                self.assignment[var] = None
                self.reason[var] = None
        self._queue_index = len(self.trail)

    # -- branching ---------------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assignment[var] is None and self.activity[var] > best_activity:
                best_activity = self.activity[var]
                best_var = var
        if best_var is None:
            return None
        return best_var  # branch positive first

    # -- main loop -------------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Decide satisfiability under optional assumption literals."""
        if self._empty_clause:
            return SatResult(False, conflicts=self.conflicts)
        self._queue_index = 0
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(False, conflicts=self.conflicts)

        for lit in assumptions:
            if self._value(lit) is True:
                continue
            if self._value(lit) is False:
                self._restart()
                return SatResult(False, conflicts=self.conflicts)
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)
            conflict = self._propagate()
            if conflict is not None:
                self._restart()
                return SatResult(False, conflicts=self.conflicts)

        luby_base = 64
        restart_count = 0
        conflicts_until_restart = luby_base * _luby(restart_count + 1)
        conflicts_since_restart = 0
        assumption_level = self._decision_level()

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() <= assumption_level:
                    self._restart()
                    return SatResult(False, conflicts=self.conflicts)
                learned, backjump = self._analyse(conflict)
                self._backjump(max(backjump, assumption_level))
                index = self._add_clause(learned, learned=True)
                if index is not None and len(self.clauses[index]) > 1:
                    self._enqueue(learned[0], index)
                elif index is not None:
                    self._enqueue(learned[0], None)
                self._decay()
                if conflicts_since_restart >= conflicts_until_restart:
                    restart_count += 1
                    conflicts_until_restart = luby_base * _luby(restart_count + 1)
                    conflicts_since_restart = 0
                    self._backjump(assumption_level)
                continue
            branch_var = self._pick_branch()
            if branch_var is None:
                assignment = {
                    var: bool(self.assignment[var])
                    for var in range(1, self.num_vars + 1)
                    if self.assignment[var] is not None
                }
                result = SatResult(
                    True,
                    assignment=assignment,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
                self._restart()
                return result
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(branch_var, None)

    def _restart(self) -> None:
        self._backjump(0)


def _luby(index: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    if index < 1:
        raise ValueError("Luby index is 1-based")
    while True:
        # Smallest k such that the complete subsequence of length 2^k - 1
        # covers the requested index.
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if (1 << k) - 1 == index:
            return 1 << (k - 1)
        # Recurse into the trailing repetition of the previous subsequence.
        index -= (1 << (k - 1)) - 1


def solve_clauses(num_vars: int, clauses: Iterable[Clause], assumptions: Sequence[int] = ()) -> SatResult:
    """Convenience wrapper: build a solver and solve once."""
    return CdclSolver(num_vars, clauses).solve(assumptions)
