"""repro — reproduction of "Achieving Maximum Performance: A Method for the
Verification of Interlocked Pipeline Control Logic" (Eder & Barrett, DAC 2002).

The library derives maximum-performance specifications of pipeline interlock
logic from functional stall specifications, generates testbench assertions
and HDL checkers from them, property-checks interlock implementations
against them exhaustively, and synthesises maximum-performance interlock RTL
— together with the cycle-accurate pipeline simulator, workload generators
and fault-injection campaigns used to evaluate the method.

Quickstart::

    from repro.archs import example_architecture
    from repro.spec import build_functional_spec, derive_performance_spec

    arch = example_architecture()
    functional = build_functional_spec(arch)            # Figure 2
    performance = derive_performance_spec(functional)   # Figure 3
    print(performance.describe())
"""

from . import (
    analysis,
    archs,
    assertions,
    bdd,
    checking,
    expr,
    faults,
    pipeline,
    sat,
    spec,
    symbolic,
    synth,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "archs",
    "assertions",
    "bdd",
    "checking",
    "expr",
    "faults",
    "pipeline",
    "sat",
    "spec",
    "symbolic",
    "synth",
    "workloads",
    "__version__",
]
