"""Completion-bus arbitration schemes.

The paper's example gives the short pipe fixed priority over the long pipe
and notes that "the completion logic, eg the arbitration scheme of the bus,
can also be included in the functional specification".  Two arbiters are
provided; the interlock specification is agnostic to the choice, which the
test-suite verifies by running both under the same derived interlock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence

from ..expr.ast import Expr, Var
from ..expr.builders import big_and
from . import signals as sig
from .structure import CompletionBusSpec


class Arbiter(ABC):
    """Grants a completion bus to at most one requesting pipe per cycle."""

    def __init__(self, bus: CompletionBusSpec):
        self.bus = bus

    @abstractmethod
    def grant(self, requests: Mapping[str, bool]) -> Optional[str]:
        """Return the name of the granted pipe, or None if nobody requested."""

    def reset(self) -> None:
        """Reset any internal arbitration state (round-robin pointers etc.)."""

    def grants(self, requests: Mapping[str, bool]) -> Dict[str, bool]:
        """Grant signals for every pipe on the bus."""
        winner = self.grant(requests)
        return {pipe: (pipe == winner) for pipe in self.bus.priority}


class FixedPriorityArbiter(Arbiter):
    """Grants the highest-priority requesting pipe (the paper's scheme)."""

    def grant(self, requests: Mapping[str, bool]) -> Optional[str]:
        for pipe in self.bus.priority:
            if requests.get(pipe, False):
                return pipe
        return None


class RoundRobinArbiter(Arbiter):
    """Rotates priority among the pipes so no requester starves."""

    def __init__(self, bus: CompletionBusSpec):
        super().__init__(bus)
        self._next_index = 0

    def reset(self) -> None:
        self._next_index = 0

    def grant(self, requests: Mapping[str, bool]) -> Optional[str]:
        order = list(self.bus.priority)
        count = len(order)
        for offset in range(count):
            pipe = order[(self._next_index + offset) % count]
            if requests.get(pipe, False):
                self._next_index = (self._next_index + offset + 1) % count
                return pipe
        return None


ARBITER_FACTORIES = {
    "fixed-priority": FixedPriorityArbiter,
    "round-robin": RoundRobinArbiter,
}


def make_arbiter(kind: str, bus: CompletionBusSpec) -> Arbiter:
    """Construct an arbiter by name (``fixed-priority`` or ``round-robin``)."""
    try:
        factory = ARBITER_FACTORIES[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown arbiter kind {kind!r}; choose from {sorted(ARBITER_FACTORIES)}"
        ) from exc
    return factory(bus)


def fixed_priority_grant_expressions(bus: CompletionBusSpec) -> Dict[str, Expr]:
    """Symbolic grant logic of the fixed-priority arbiter.

    Used when refining the abstract ``gnt`` inputs of a functional
    specification into concrete completion logic
    (:meth:`repro.spec.functional.FunctionalSpec.substitute_inputs`).
    """
    expressions: Dict[str, Expr] = {}
    higher: List[str] = []
    for pipe in bus.priority:
        request = Var(sig.req_name(pipe))
        blockers = [~Var(sig.req_name(other)) for other in higher]
        expressions[sig.gnt_name(pipe)] = big_and([request] + blockers)
        higher.append(pipe)
    return expressions


def arbitration_environment_assumptions(bus: CompletionBusSpec) -> List[Expr]:
    """Constraints every sane arbiter obeys, used by the property checker.

    * a grant is only given to a requesting pipe, and
    * at most one pipe is granted per bus per cycle.
    """
    assumptions: List[Expr] = []
    for pipe in bus.priority:
        assumptions.append(Var(sig.gnt_name(pipe)).implies(Var(sig.req_name(pipe))))
    pipes: Sequence[str] = bus.priority
    for index, pipe in enumerate(pipes):
        for other in pipes[index + 1 :]:
            assumptions.append(~(Var(sig.gnt_name(pipe)) & Var(sig.gnt_name(other))))
    return assumptions


def work_conserving_assumption(bus: CompletionBusSpec) -> Expr:
    """If some pipe requests the bus, some pipe is granted it.

    Fixed-priority and round-robin arbiters are both work conserving; this
    extra assumption tightens the property-checking environment and is what
    makes the completion stages' maximum-performance condition achievable.
    """
    any_request = Var(sig.req_name(bus.priority[0]))
    for pipe in bus.priority[1:]:
        any_request = any_request | Var(sig.req_name(pipe))
    any_grant = Var(sig.gnt_name(bus.priority[0]))
    for pipe in bus.priority[1:]:
        any_grant = any_grant | Var(sig.gnt_name(pipe))
    return any_request.implies(any_grant)
