"""Instruction model for the cycle-accurate pipeline simulator.

The paper's method is deliberately independent of the instruction set:
"the specification is, except for instructions which enforce an explicit
pipeline stall, independent of the actual instruction set".  The simulator
therefore only models the features the interlock logic can observe:

* which pipe an instruction executes in,
* its source and destination register addresses (for the scoreboard),
* whether it needs a completion-bus writeback,
* whether it is a WAIT-style instruction that enforces an explicit stall.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, List, Optional


class InstructionKind(Enum):
    """Coarse instruction classes distinguished by the flow-control model."""

    ALU = "alu"  # produces a register result, needs a completion-bus writeback
    NO_WRITEBACK = "no_writeback"  # e.g. store/branch: flows down the pipe, no bus
    WAIT = "wait"  # enforces an explicit stall at the issue stage
    BUBBLE = "bubble"  # an empty issue slot


_uid_counter = itertools.count(1)


@dataclass
class Instruction:
    """One instruction as seen by the pipeline flow control.

    Attributes:
        pipe: name of the pipe the instruction executes in.
        kind: coarse class, see :class:`InstructionKind`.
        src: source register address or None.
        dst: destination register address or None (None for instructions
            without a register result).
        wait_cycles: for WAIT instructions, how many cycles the wait state
            persists before the instruction retires in place.
        uid: unique id assigned at construction, used by traces and reports.
        issue_cycle: filled in by the simulator when the instruction enters
            the issue stage.
        retire_cycle: filled in by the simulator when the instruction
            retires (writes back, completes or is dropped).
    """

    pipe: str
    kind: InstructionKind = InstructionKind.ALU
    src: Optional[int] = None
    dst: Optional[int] = None
    wait_cycles: int = 0
    uid: int = field(default_factory=lambda: next(_uid_counter))
    issue_cycle: Optional[int] = None
    retire_cycle: Optional[int] = None

    def __post_init__(self):
        if self.kind is InstructionKind.WAIT and self.wait_cycles < 1:
            raise ValueError("WAIT instructions need wait_cycles >= 1")
        if self.kind is InstructionKind.ALU and self.dst is None:
            raise ValueError("ALU instructions need a destination register")

    # -- flow-control visible properties -------------------------------------------

    @property
    def needs_writeback(self) -> bool:
        """Does the instruction require the completion bus?"""
        return self.kind is InstructionKind.ALU

    @property
    def is_wait(self) -> bool:
        """Does the instruction enforce an explicit issue-stage stall?"""
        return self.kind is InstructionKind.WAIT

    @property
    def is_bubble(self) -> bool:
        """Is this an empty issue slot?"""
        return self.kind is InstructionKind.BUBBLE

    def source_registers(self) -> List[int]:
        """Registers read by the instruction."""
        return [self.src] if self.src is not None else []

    def destination_registers(self) -> List[int]:
        """Registers written by the instruction."""
        return [self.dst] if self.dst is not None else []

    def copy(self) -> "Instruction":
        """A fresh copy with a new uid (used by workload generators)."""
        return replace(self, uid=next(_uid_counter), issue_cycle=None, retire_cycle=None)

    def describe(self) -> str:
        """Compact single-line rendering for traces."""
        parts = [f"#{self.uid}", self.pipe, self.kind.value]
        if self.src is not None:
            parts.append(f"src=r{self.src}")
        if self.dst is not None:
            parts.append(f"dst=r{self.dst}")
        if self.kind is InstructionKind.WAIT:
            parts.append(f"wait={self.wait_cycles}")
        return " ".join(parts)


def alu(pipe: str, dst: int, src: Optional[int] = None) -> Instruction:
    """An ALU instruction producing register ``dst`` (optionally reading ``src``)."""
    return Instruction(pipe=pipe, kind=InstructionKind.ALU, src=src, dst=dst)


def store(pipe: str, src: int) -> Instruction:
    """A no-writeback instruction reading register ``src`` (store/branch class)."""
    return Instruction(pipe=pipe, kind=InstructionKind.NO_WRITEBACK, src=src)


def wait(pipe: str, cycles: int = 1) -> Instruction:
    """A WAIT instruction that holds the issue stage for ``cycles`` cycles."""
    return Instruction(pipe=pipe, kind=InstructionKind.WAIT, wait_cycles=cycles)


def bubble(pipe: str) -> Instruction:
    """An empty issue slot."""
    return Instruction(pipe=pipe, kind=InstructionKind.BUBBLE)


@dataclass
class Program:
    """Per-pipe instruction streams plus external stall-input waveforms.

    Attributes:
        streams: mapping from pipe name to the ordered list of instructions
            fetched into that pipe's issue stage.
        external_inputs: mapping from signal name (e.g. an interrupt request)
            to the list of cycles in which the signal is asserted.
    """

    streams: Dict[str, List[Instruction]] = field(default_factory=dict)
    external_inputs: Dict[str, List[int]] = field(default_factory=dict)

    def stream_for(self, pipe: str) -> List[Instruction]:
        """The instruction stream of a pipe (empty list if none was given)."""
        return self.streams.get(pipe, [])

    def instruction_count(self) -> int:
        """Total number of non-bubble instructions."""
        return sum(
            1
            for stream in self.streams.values()
            for instruction in stream
            if not instruction.is_bubble
        )

    def external_asserted(self, signal: str, cycle: int) -> bool:
        """Is the external signal asserted in the given cycle?"""
        return cycle in self.external_inputs.get(signal, [])

    def max_length(self) -> int:
        """Length of the longest per-pipe stream."""
        if not self.streams:
            return 0
        return max(len(stream) for stream in self.streams.values())

    @classmethod
    def from_streams(cls, **streams: Iterable[Instruction]) -> "Program":
        """Build a program from keyword per-pipe streams."""
        return cls(streams={pipe: list(items) for pipe, items in streams.items()})
