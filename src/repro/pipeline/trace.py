"""Simulation traces: per-cycle records, hazard events and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class HazardKind(Enum):
    """Physical failures the simulator can detect independently of the spec."""

    OVERWRITE = "overwrite"  # a stage's content was clobbered before it could leave
    LOST_WRITEBACK = "lost_writeback"  # a completing instruction was dropped without its bus slot
    STALE_OPERAND = "stale_operand"  # issued while a source register was outstanding and not bypassed
    WAW_VIOLATION = "waw_violation"  # issued while its destination register was still outstanding
    ISSUED_DURING_WAIT = "issued_during_wait"  # the issue stage accepted work during an enforced wait
    LOCKSTEP_BROKEN = "lockstep_broken"  # lock-step issue stages moved out of synchrony


@dataclass(frozen=True)
class HazardEvent:
    """One physically observed hazard (the consequence of a functional bug)."""

    cycle: int
    kind: HazardKind
    pipe: str
    stage: int
    instruction_uid: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        """Single-line rendering for reports."""
        uid = f" insn#{self.instruction_uid}" if self.instruction_uid is not None else ""
        return f"cycle {self.cycle}: {self.kind.value} at {self.pipe}.{self.stage}{uid} {self.detail}"


@dataclass
class CycleRecord:
    """Everything observable about one simulated cycle.

    Attributes:
        cycle: cycle index, starting at 0.
        inputs: control-input valuation presented to the interlock.
        moe: moe flag valuation the interlock produced.
        occupancy: per-stage occupying instruction uid (None when empty),
            keyed by ``"pipe.index"``.
        issued: uids of instructions that entered stage 1 this cycle.
        retired: uids of instructions that completed or retired this cycle.
        moved: stage keys whose content advanced this cycle.
        stalled: stage keys that held content which could not advance.
    """

    cycle: int
    inputs: Dict[str, bool]
    moe: Dict[str, bool]
    occupancy: Dict[str, Optional[int]]
    issued: List[int] = field(default_factory=list)
    retired: List[int] = field(default_factory=list)
    moved: List[str] = field(default_factory=list)
    stalled: List[str] = field(default_factory=list)

    def signals(self) -> Dict[str, bool]:
        """Merged input + moe valuation, as sampled by assertion monitors."""
        merged = dict(self.inputs)
        merged.update(self.moe)
        return merged


@dataclass
class SimulationTrace:
    """Result of one simulation run."""

    architecture_name: str
    interlock_name: str
    cycles: List[CycleRecord] = field(default_factory=list)
    hazards: List[HazardEvent] = field(default_factory=list)
    retired_instructions: int = 0
    issued_instructions: int = 0
    dropped_instructions: int = 0

    # -- bulk access ----------------------------------------------------------------

    def pack_signal_columns(
        self,
        names: List[str],
        defaults: Optional[Dict[str, bool]] = None,
    ) -> Dict[str, List[int]]:
        """Pack per-cycle signal values into 64-bit words (cycle k → bit k%64).

        This is the input format of the bit-parallel expression evaluator
        (:mod:`repro.expr.compile`): the assertion monitor and the coverage
        scorer both evaluate their formulas 64 cycles at a time over these
        columns.  Each signal is resolved from the cycle's moe valuation
        first, then its inputs; a signal a cycle does not sample falls back
        to ``defaults`` or raises ``KeyError`` with the signal name.
        """
        word_bits = 64
        defaults = defaults or {}
        columns: Dict[str, List[int]] = {name: [] for name in names}
        current = dict.fromkeys(names, 0)
        for index, record in enumerate(self.cycles):
            bit = index % word_bits
            if bit == 0 and index:
                for name in names:
                    columns[name].append(current[name])
                    current[name] = 0
            moe = record.moe
            inputs = record.inputs
            for name in names:
                if name in moe:
                    value = moe[name]
                elif name in inputs:
                    value = inputs[name]
                elif name in defaults:
                    value = defaults[name]
                else:
                    raise KeyError(name)
                if value:
                    current[name] |= 1 << bit
        if self.cycles:
            for name in names:
                columns[name].append(current[name])
        return columns

    # -- aggregate statistics -------------------------------------------------------

    def num_cycles(self) -> int:
        """Number of simulated cycles."""
        return len(self.cycles)

    def hazard_count(self, kind: Optional[HazardKind] = None) -> int:
        """Number of hazards observed (optionally of one kind)."""
        if kind is None:
            return len(self.hazards)
        return sum(1 for hazard in self.hazards if hazard.kind is kind)

    def hazard_free(self) -> bool:
        """True when the run completed without any physical hazard."""
        return not self.hazards

    def instructions_per_cycle(self) -> float:
        """Retired instructions per cycle (the throughput measure)."""
        if not self.cycles:
            return 0.0
        return self.retired_instructions / len(self.cycles)

    def cycles_per_instruction(self) -> float:
        """Average cycles per retired instruction (lower is better)."""
        if self.retired_instructions == 0:
            return float("inf")
        return len(self.cycles) / self.retired_instructions

    def stall_cycles(self, moe_flag: str) -> int:
        """Number of cycles in which a given moe flag was low."""
        return sum(1 for record in self.cycles if not record.moe.get(moe_flag, True))

    def stall_cycles_by_flag(self) -> Dict[str, int]:
        """Low-cycle counts for every moe flag."""
        if not self.cycles:
            return {}
        counts: Dict[str, int] = {flag: 0 for flag in self.cycles[0].moe}
        for record in self.cycles:
            for flag, value in record.moe.items():
                if not value:
                    counts[flag] = counts.get(flag, 0) + 1
        return counts

    def total_stall_cycles(self) -> int:
        """Sum of low cycles over all moe flags."""
        return sum(self.stall_cycles_by_flag().values())

    def describe(self) -> str:
        """Multi-line summary used by examples and benchmark output."""
        lines = [
            f"Simulation of {self.architecture_name} with interlock {self.interlock_name!r}:",
            f"  cycles:             {self.num_cycles()}",
            f"  issued:             {self.issued_instructions}",
            f"  retired:            {self.retired_instructions}",
            f"  dropped:            {self.dropped_instructions}",
            f"  IPC:                {self.instructions_per_cycle():.3f}",
            f"  stall cycles (sum): {self.total_stall_cycles()}",
            f"  hazards:            {self.hazard_count()}",
        ]
        if self.hazards:
            lines.append("  first hazards:")
            for hazard in self.hazards[:5]:
                lines.append(f"    {hazard.describe()}")
        return "\n".join(lines)
