"""Pipeline micro-architecture substrate: description, simulator, interlocks."""

from .arbitration import (
    Arbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    fixed_priority_grant_expressions,
    make_arbiter,
)
from .instructions import (
    Instruction,
    InstructionKind,
    Program,
    alu,
    bubble,
    store,
    wait,
)
from .interlock import (
    ClosedFormInterlock,
    ConservativeCompletionInterlock,
    Interlock,
    SpecFixedPointInterlock,
    StuckResetInterlock,
    reference_interlock,
)
from .scoreboard import Scoreboard
from .simulator import PipelineSimulator, SimulatorConfig, simulate
from .structure import (
    Architecture,
    ArchitectureError,
    CompletionBusSpec,
    PipeSpec,
    ScoreboardSpec,
    StageRef,
    StallInput,
)
from .trace import CycleRecord, HazardEvent, HazardKind, SimulationTrace
from .vcd import VcdWriter, trace_to_vcd, write_vcd_file

__all__ = [
    "Arbiter",
    "FixedPriorityArbiter",
    "RoundRobinArbiter",
    "fixed_priority_grant_expressions",
    "make_arbiter",
    "Instruction",
    "InstructionKind",
    "Program",
    "alu",
    "bubble",
    "store",
    "wait",
    "ClosedFormInterlock",
    "ConservativeCompletionInterlock",
    "Interlock",
    "SpecFixedPointInterlock",
    "StuckResetInterlock",
    "reference_interlock",
    "Scoreboard",
    "PipelineSimulator",
    "SimulatorConfig",
    "simulate",
    "Architecture",
    "ArchitectureError",
    "CompletionBusSpec",
    "PipeSpec",
    "ScoreboardSpec",
    "StageRef",
    "StallInput",
    "CycleRecord",
    "HazardEvent",
    "HazardKind",
    "SimulationTrace",
    "VcdWriter",
    "trace_to_vcd",
    "write_vcd_file",
]
