"""Runtime register scoreboard with completion-bus bypassing."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from . import signals as sig
from .structure import ScoreboardSpec


class ScoreboardOverflowError(RuntimeError):
    """Raised when a register is marked outstanding twice without completing.

    A correct interlock never lets this happen (the WAW case is covered by
    the destination-register conjunct of the issue stall condition), so the
    simulator treats it as a detected hazard rather than silently corrupting
    state; the exception is only raised when hazard recording is disabled.
    """


class Scoreboard:
    """Tracks which architectural registers have an outstanding writeback."""

    def __init__(self, spec: ScoreboardSpec):
        self.spec = spec
        self._outstanding: List[bool] = [False] * spec.num_registers

    # -- queries ------------------------------------------------------------------

    def is_outstanding(self, address: int) -> bool:
        """Is a register waiting for a writeback?"""
        self._check_address(address)
        return self._outstanding[address]

    def outstanding_registers(self) -> List[int]:
        """All register addresses currently outstanding."""
        return [a for a, flag in enumerate(self._outstanding) if flag]

    def outstanding_count(self) -> int:
        """Number of outstanding registers."""
        return sum(self._outstanding)

    def is_hazard(self, address: Optional[int], bypass_addresses: Iterable[int]) -> bool:
        """Outstanding and not bypassed this cycle — the paper's hazard test."""
        if address is None:
            return False
        self._check_address(address)
        return self._outstanding[address] and address not in set(bypass_addresses)

    # -- updates -------------------------------------------------------------------

    def mark_outstanding(self, address: int) -> bool:
        """Record a pending writeback; returns False if it was already pending."""
        self._check_address(address)
        if self._outstanding[address]:
            return False
        self._outstanding[address] = True
        return True

    def complete(self, address: int) -> bool:
        """Clear a pending writeback; returns False if none was pending."""
        self._check_address(address)
        if not self._outstanding[address]:
            return False
        self._outstanding[address] = False
        return True

    def reset(self) -> None:
        """Clear all pending writebacks."""
        self._outstanding = [False] * self.spec.num_registers

    # -- signal view ----------------------------------------------------------------

    def as_signals(self) -> Dict[str, bool]:
        """Scoreboard bits as a signal valuation (``scb[a]`` names)."""
        return {
            sig.scoreboard_name(address, self.spec.prefix): value
            for address, value in enumerate(self._outstanding)
        }

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.spec.num_registers:
            raise IndexError(
                f"register address {address} out of range 0..{self.spec.num_registers - 1}"
            )

    def __repr__(self) -> str:
        marks = "".join("1" if flag else "0" for flag in self._outstanding)
        return f"Scoreboard({marks})"
