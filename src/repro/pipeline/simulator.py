"""Cycle-accurate simulator of interlocked pipeline flow control.

The simulator models exactly what the DAC 2002 method reasons about: the
movement of instructions through pipeline stages under the control of an
interlock block that drives the per-stage moving-or-empty (moe) flags.  The
datapath obeys the moe flags the interlock produces — as real hardware
would — and *independently* watches for physical mishaps:

* an instruction overwritten before it could leave its stage,
* an instruction issued while one of its registers was outstanding and not
  bypassed,
* an instruction issued while an enforced wait/interrupt was pending,
* lock-step issue stages moving out of synchrony.

A correct interlock never lets these happen; a functionally buggy one does,
and a merely conservative one produces no hazards but wastes cycles.  The
assertion monitors in :mod:`repro.assertions` check the specification on the
same per-cycle signal samples, so the experiments can relate specification
violations to their physical consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from . import signals as sig
from .arbitration import Arbiter, make_arbiter
from .instructions import Instruction, InstructionKind, Program
from .interlock import Interlock
from .scoreboard import Scoreboard
from .structure import Architecture, PipeSpec
from .trace import CycleRecord, HazardEvent, HazardKind, SimulationTrace


@dataclass
class SimulatorConfig:
    """Simulation options.

    Attributes:
        max_cycles: hard cap on simulated cycles (guards against deadlocked
            interlocks).
        arbiter: completion-bus arbitration scheme, ``"fixed-priority"`` or
            ``"round-robin"``.
        drain: keep simulating after the instruction streams are exhausted
            until the pipeline is empty (or the cap is reached).
        stop_on_hazard: abort the run at the first physical hazard.
    """

    max_cycles: int = 10_000
    arbiter: str = "fixed-priority"
    drain: bool = True
    stop_on_hazard: bool = False


@dataclass
class _Slot:
    """Occupancy of one pipeline stage."""

    instruction: Optional[Instruction] = None
    wait_remaining: int = 0

    @property
    def occupied(self) -> bool:
        return self.instruction is not None

    def clear(self) -> None:
        self.instruction = None
        self.wait_remaining = 0


class PipelineSimulator:
    """Drives a :class:`Program` through an :class:`Architecture` under an interlock."""

    def __init__(
        self,
        architecture: Architecture,
        interlock: Interlock,
        config: Optional[SimulatorConfig] = None,
    ):
        self.architecture = architecture
        self.interlock = interlock
        self.config = config or SimulatorConfig()
        self.scoreboard = (
            Scoreboard(architecture.scoreboard) if architecture.scoreboard else None
        )
        self._arbiters: Dict[str, Arbiter] = {
            bus.name: make_arbiter(self.config.arbiter, bus) for bus in architecture.buses
        }
        self._slots: Dict[Tuple[str, int], _Slot] = {}
        for pipe in architecture.pipes:
            for stage in pipe.stages():
                self._slots[(pipe.name, stage.index)] = _Slot()
        self._fetch_index: Dict[str, int] = {pipe.name: 0 for pipe in architecture.pipes}
        # The interlock must drive every moe flag the architecture defines;
        # a partial implementation is rejected at the first step.
        self._expected_moe = set(architecture.moe_signals())

    # -- public API -------------------------------------------------------------------

    def run(self, program: Program) -> SimulationTrace:
        """Simulate a whole program and return the trace."""
        self.reset()
        trace = SimulationTrace(
            architecture_name=self.architecture.name,
            interlock_name=self.interlock.name,
        )
        for cycle in range(self.config.max_cycles):
            if self._finished(program):
                break
            record = self.step(cycle, program, trace)
            trace.cycles.append(record)
            if self.config.stop_on_hazard and trace.hazards:
                break
        return trace

    def reset(self) -> None:
        """Reset pipeline occupancy, scoreboard, arbiters and the interlock."""
        for slot in self._slots.values():
            slot.clear()
        if self.scoreboard is not None:
            self.scoreboard.reset()
        for arbiter in self._arbiters.values():
            arbiter.reset()
        for pipe in self._fetch_index:
            self._fetch_index[pipe] = 0
        self.interlock.reset()

    # -- per-cycle behaviour ---------------------------------------------------------------

    def step(self, cycle: int, program: Program, trace: SimulationTrace) -> CycleRecord:
        """Simulate one cycle; mutates pipeline state and appends hazards to the trace."""
        self.interlock.on_cycle_start(cycle)

        inputs = self._sample_inputs(cycle, program)
        grants = self._arbitrate(inputs)
        inputs.update(self._grant_signals(grants))
        inputs.update(self._bus_target_signals(grants))

        moe = dict(self.interlock.compute_moe(inputs))
        missing = self._expected_moe - set(moe)
        if missing:
            raise RuntimeError(
                f"interlock {self.interlock.name!r} did not drive moe flags {sorted(missing)}"
            )

        record = CycleRecord(
            cycle=cycle,
            inputs=inputs,
            moe=moe,
            occupancy=self._occupancy_snapshot(),
        )

        self._check_lockstep(cycle, moe, trace)
        self._advance(cycle, program, moe, grants, record, trace)
        return record

    # -- input sampling -----------------------------------------------------------------------

    def _sample_inputs(self, cycle: int, program: Program) -> Dict[str, bool]:
        arch = self.architecture
        inputs: Dict[str, bool] = {name: False for name in arch.input_signals()}

        for pipe in arch.pipes:
            for stage in pipe.stages():
                slot = self._slots[(pipe.name, stage.index)]
                inputs[stage.rtm] = self._requires_to_move(pipe, stage.index, slot)
            if pipe.completion_bus is not None:
                completion_slot = self._slots[(pipe.name, pipe.num_stages)]
                inputs[sig.req_name(pipe.name)] = self._requests_bus(completion_slot)

        if self.scoreboard is not None:
            inputs.update(self.scoreboard.as_signals())
            for pipe in arch.pipes:
                issue_slot = self._slots[(pipe.name, 1)]
                instruction = issue_slot.instruction
                for which, address in (
                    ("src", instruction.src if instruction else None),
                    ("dst", instruction.dst if instruction else None),
                ):
                    for candidate in range(arch.scoreboard.num_registers):
                        name = sig.stage_regaddr_indicator(pipe.name, 1, which, candidate)
                        inputs[name] = address == candidate

        for stall_input in arch.extra_stall_inputs:
            asserted = program.external_asserted(stall_input.signal, cycle)
            for pipe_name in stall_input.applies_to:
                issue_slot = self._slots[(pipe_name, 1)]
                instruction = issue_slot.instruction
                if (
                    instruction is not None
                    and instruction.is_wait
                    and issue_slot.wait_remaining > 0
                ):
                    asserted = True
            inputs[stall_input.signal] = asserted
        return inputs

    def _requires_to_move(self, pipe: PipeSpec, stage_index: int, slot: _Slot) -> bool:
        instruction = slot.instruction
        if instruction is None or instruction.is_bubble:
            return False
        if instruction.is_wait:
            return False
        if stage_index < pipe.num_stages:
            return True
        # Final stage: only writeback instructions still require to move
        # (onto the completion bus); everything else completes in place.
        return instruction.needs_writeback and pipe.completion_bus is not None

    def _requests_bus(self, slot: _Slot) -> bool:
        instruction = slot.instruction
        return instruction is not None and instruction.needs_writeback

    def _arbitrate(self, inputs: Mapping[str, bool]) -> Dict[str, Optional[str]]:
        winners: Dict[str, Optional[str]] = {}
        for bus in self.architecture.buses:
            requests = {
                pipe: inputs.get(sig.req_name(pipe), False) for pipe in bus.priority
            }
            winners[bus.name] = self._arbiters[bus.name].grant(requests)
        return winners

    def _grant_signals(self, winners: Mapping[str, Optional[str]]) -> Dict[str, bool]:
        grants: Dict[str, bool] = {}
        for bus in self.architecture.buses:
            winner = winners[bus.name]
            for pipe in bus.priority:
                grants[sig.gnt_name(pipe)] = pipe == winner
        return grants

    def _bus_target_signals(self, winners: Mapping[str, Optional[str]]) -> Dict[str, bool]:
        arch = self.architecture
        targets: Dict[str, bool] = {}
        if arch.scoreboard is None:
            return targets
        for bus in arch.buses:
            winner = winners[bus.name]
            target: Optional[int] = None
            if winner is not None:
                slot = self._slots[(winner, arch.pipe(winner).num_stages)]
                if slot.instruction is not None:
                    target = slot.instruction.dst
            for address in range(arch.scoreboard.num_registers):
                targets[sig.bus_target_indicator(bus.name, address)] = address == target
        return targets

    # -- movement ------------------------------------------------------------------------------

    def _advance(
        self,
        cycle: int,
        program: Program,
        moe: Mapping[str, bool],
        winners: Mapping[str, Optional[str]],
        record: CycleRecord,
        trace: SimulationTrace,
    ) -> None:
        arch = self.architecture
        granted_targets = self._granted_targets(winners)
        # Hazards are judged against the scoreboard as the interlock saw it at
        # the start of the cycle; same-cycle cross-pipe issue conflicts are a
        # decoder responsibility outside the paper's flow-control model.
        outstanding_at_sample = (
            set(self.scoreboard.outstanding_registers()) if self.scoreboard else set()
        )

        for pipe in arch.pipes:
            leaving: Dict[int, Instruction] = {}
            vacated: Dict[int, bool] = {}

            # Phase 1: decide, per stage, whether its content departs this cycle.
            for stage_index in range(pipe.num_stages, 0, -1):
                slot = self._slots[(pipe.name, stage_index)]
                instruction = slot.instruction
                key = f"{pipe.name}.{stage_index}"
                if instruction is None:
                    vacated[stage_index] = True
                    continue
                departs, retires, dropped = self._departure(
                    pipe, stage_index, slot, moe, winners, cycle
                )
                vacated[stage_index] = departs or retires or dropped
                if departs:
                    leaving[stage_index] = instruction
                    record.moved.append(key)
                elif retires:
                    instruction.retire_cycle = cycle
                    record.retired.append(instruction.uid)
                    trace.retired_instructions += 1
                    record.moved.append(key)
                    if (
                        self.scoreboard is not None
                        and instruction.dst is not None
                        and instruction.needs_writeback
                    ):
                        # Retirement in place (no completion bus) still releases
                        # the destination register.
                        self.scoreboard.complete(instruction.dst)
                elif dropped:
                    trace.dropped_instructions += 1
                else:
                    record.stalled.append(key)

            # Phase 2: apply completion effects and transfers, deepest stage first.
            for stage_index in range(pipe.num_stages, 0, -1):
                slot = self._slots[(pipe.name, stage_index)]
                instruction = leaving.get(stage_index)
                if vacated.get(stage_index, False):
                    if instruction is not None and stage_index == pipe.num_stages:
                        self._complete(cycle, pipe, instruction, record, trace)
                    slot.clear()
                if instruction is not None and stage_index < pipe.num_stages:
                    self._transfer(
                        cycle, pipe, stage_index, instruction, vacated, record, trace
                    )
                if instruction is not None and stage_index == 1:
                    self._note_issue_hazards(
                        cycle,
                        pipe,
                        instruction,
                        granted_targets,
                        outstanding_at_sample,
                        program,
                        trace,
                    )

            # Phase 3: fetch a new instruction into the (possibly vacated) issue stage.
            self._fetch(cycle, pipe, program, moe, vacated, record, trace)

    def _departure(
        self,
        pipe: PipeSpec,
        stage_index: int,
        slot: _Slot,
        moe: Mapping[str, bool],
        winners: Mapping[str, Optional[str]],
        cycle: int,
    ) -> Tuple[bool, bool, bool]:
        """Classify a stage's occupant this cycle: (moves on, retires in place, dropped)."""
        instruction = slot.instruction
        assert instruction is not None
        moe_value = moe.get(sig.moe_name(pipe.name, stage_index), False)

        if instruction.is_wait:
            if slot.wait_remaining > 1:
                slot.wait_remaining -= 1
                return False, False, False
            return False, True, False

        is_final = stage_index == pipe.num_stages
        if is_final:
            if instruction.needs_writeback and pipe.completion_bus is not None:
                granted = winners.get(pipe.completion_bus) == pipe.name
                if granted and moe_value:
                    return True, False, False
                if moe_value and not granted:
                    # The interlock let the stage be overwritten although the
                    # writeback has not happened: the result is lost as soon as
                    # a predecessor pushes in; dropping is handled by _transfer.
                    return False, False, False
                return False, False, False
            # No writeback needed: the instruction completes in place.
            return False, True, False

        if moe_value:
            return True, False, False
        return False, False, False

    def _complete(
        self,
        cycle: int,
        pipe: PipeSpec,
        instruction: Instruction,
        record: CycleRecord,
        trace: SimulationTrace,
    ) -> None:
        """Writeback of a completing instruction: clears its scoreboard entry."""
        instruction.retire_cycle = cycle
        record.retired.append(instruction.uid)
        trace.retired_instructions += 1
        if self.scoreboard is not None and instruction.dst is not None:
            self.scoreboard.complete(instruction.dst)

    def _transfer(
        self,
        cycle: int,
        pipe: PipeSpec,
        stage_index: int,
        instruction: Instruction,
        vacated: Mapping[int, bool],
        record: CycleRecord,
        trace: SimulationTrace,
    ) -> None:
        """Move an instruction into the next stage, detecting overwrites."""
        destination = self._slots[(pipe.name, stage_index + 1)]
        if not vacated.get(stage_index + 1, False) and destination.occupied:
            victim = destination.instruction
            trace.dropped_instructions += 1
            trace.hazards.append(
                HazardEvent(
                    cycle=cycle,
                    kind=HazardKind.OVERWRITE,
                    pipe=pipe.name,
                    stage=stage_index + 1,
                    instruction_uid=victim.uid if victim else None,
                    detail=f"overwritten by insn#{instruction.uid}",
                )
            )
        elif (
            stage_index + 1 == pipe.num_stages
            and destination.occupied
            and vacated.get(stage_index + 1, False)
            and destination.instruction is not None
            and destination.instruction.needs_writeback
            and destination.instruction.retire_cycle is None
        ):
            # The completion stage was marked vacated without a grant: the old
            # occupant is displaced before writing back.
            victim = destination.instruction
            trace.dropped_instructions += 1
            trace.hazards.append(
                HazardEvent(
                    cycle=cycle,
                    kind=HazardKind.LOST_WRITEBACK,
                    pipe=pipe.name,
                    stage=stage_index + 1,
                    instruction_uid=victim.uid,
                    detail="displaced from the completion stage without a bus grant",
                )
            )
        destination.instruction = instruction

    def _note_issue_hazards(
        self,
        cycle: int,
        pipe: PipeSpec,
        instruction: Instruction,
        granted_targets: Dict[str, List[int]],
        outstanding_at_sample: set,
        program: Program,
        trace: SimulationTrace,
    ) -> None:
        """Physical hazard checks when an instruction leaves the issue stage."""
        bypass_buses = (
            self.architecture.scoreboard.bypass_buses
            if self.architecture.scoreboard is not None
            else ()
        )
        bypassed = {
            address
            for bus_name in bypass_buses
            for address in granted_targets.get(bus_name, [])
        }

        def hazardous(address: int) -> bool:
            return address in outstanding_at_sample and address not in bypassed

        if self.scoreboard is not None:
            for address in instruction.source_registers():
                if hazardous(address):
                    trace.hazards.append(
                        HazardEvent(
                            cycle=cycle,
                            kind=HazardKind.STALE_OPERAND,
                            pipe=pipe.name,
                            stage=1,
                            instruction_uid=instruction.uid,
                            detail=f"source r{address} outstanding and not bypassed",
                        )
                    )
            for address in instruction.destination_registers():
                if hazardous(address):
                    trace.hazards.append(
                        HazardEvent(
                            cycle=cycle,
                            kind=HazardKind.WAW_VIOLATION,
                            pipe=pipe.name,
                            stage=1,
                            instruction_uid=instruction.uid,
                            detail=f"destination r{address} outstanding and not bypassed",
                        )
                    )
            for address in instruction.destination_registers():
                if instruction.needs_writeback:
                    self.scoreboard.mark_outstanding(address)
        for stall_input in self.architecture.extra_stall_inputs:
            if pipe.name in stall_input.applies_to and program.external_asserted(
                stall_input.signal, cycle
            ):
                trace.hazards.append(
                    HazardEvent(
                        cycle=cycle,
                        kind=HazardKind.ISSUED_DURING_WAIT,
                        pipe=pipe.name,
                        stage=1,
                        instruction_uid=instruction.uid,
                        detail=f"issued while {stall_input.signal} was asserted",
                    )
                )
        instruction.issue_cycle = instruction.issue_cycle or cycle

    def _fetch(
        self,
        cycle: int,
        pipe: PipeSpec,
        program: Program,
        moe: Mapping[str, bool],
        vacated: Mapping[int, bool],
        record: CycleRecord,
        trace: SimulationTrace,
    ) -> None:
        """Bring the next instruction of a pipe's stream into its issue stage."""
        issue_slot = self._slots[(pipe.name, 1)]
        if issue_slot.occupied and not vacated.get(1, False):
            return
        if not moe.get(sig.moe_name(pipe.name, 1), False):
            return
        stream = program.stream_for(pipe.name)
        index = self._fetch_index[pipe.name]
        if index >= len(stream):
            return
        instruction = stream[index]
        self._fetch_index[pipe.name] = index + 1
        if instruction.is_bubble:
            return
        issue_slot.instruction = instruction
        issue_slot.wait_remaining = instruction.wait_cycles if instruction.is_wait else 0
        instruction.issue_cycle = cycle
        record.issued.append(instruction.uid)
        trace.issued_instructions += 1

    def _granted_targets(self, winners: Mapping[str, Optional[str]]) -> Dict[str, List[int]]:
        """Register addresses written back this cycle, per bus (for bypassing)."""
        targets: Dict[str, List[int]] = {}
        for bus_name, winner in winners.items():
            addresses: List[int] = []
            if winner is not None:
                slot = self._slots[(winner, self.architecture.pipe(winner).num_stages)]
                if slot.instruction is not None and slot.instruction.dst is not None:
                    addresses.append(slot.instruction.dst)
            targets[bus_name] = addresses
        return targets

    def _check_lockstep(
        self, cycle: int, moe: Mapping[str, bool], trace: SimulationTrace
    ) -> None:
        for group in self.architecture.lockstep_groups:
            values = {
                pipe: moe.get(sig.moe_name(pipe, 1), False) for pipe in group
            }
            if len(set(values.values())) > 1:
                detail = ", ".join(f"{pipe}.1.moe={int(v)}" for pipe, v in values.items())
                trace.hazards.append(
                    HazardEvent(
                        cycle=cycle,
                        kind=HazardKind.LOCKSTEP_BROKEN,
                        pipe="/".join(group),
                        stage=1,
                        detail=detail,
                    )
                )

    # -- bookkeeping ---------------------------------------------------------------------------

    def _occupancy_snapshot(self) -> Dict[str, Optional[int]]:
        return {
            f"{pipe}.{stage}": (slot.instruction.uid if slot.instruction else None)
            for (pipe, stage), slot in self._slots.items()
        }

    def _finished(self, program: Program) -> bool:
        streams_done = all(
            self._fetch_index[pipe.name] >= len(program.stream_for(pipe.name))
            for pipe in self.architecture.pipes
        )
        if not streams_done:
            return False
        if not self.config.drain:
            return True
        return all(not slot.occupied for slot in self._slots.values())


def simulate(
    architecture: Architecture,
    interlock: Interlock,
    program: Program,
    config: Optional[SimulatorConfig] = None,
) -> SimulationTrace:
    """One-call convenience wrapper: build a simulator and run a program."""
    return PipelineSimulator(architecture, interlock, config).run(program)
