"""Structural description of a pipelined micro-architecture.

The description captures exactly the information the DAC 2002 method needs:
which pipes and stages exist, which stages complete onto which bus, how
register hazards are tracked (scoreboard width), which issue stages operate
in lock step, and which instruction-specific or external conditions
(WAIT, interrupt) force stalls.  The functional specification of the
interlock logic is generated from this description by
:class:`repro.spec.builder.SpecBuilder`, and the same description drives the
cycle-accurate simulator in :mod:`repro.pipeline.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import signals as sig


class ArchitectureError(ValueError):
    """Raised when an architecture description is inconsistent."""


@dataclass(frozen=True)
class StageRef:
    """Reference to a single pipeline stage: pipe name and 1-based index."""

    pipe: str
    index: int

    @property
    def moe(self) -> str:
        """Name of the stage's moving-or-empty flag."""
        return sig.moe_name(self.pipe, self.index)

    @property
    def rtm(self) -> str:
        """Name of the stage's require-to-move flag."""
        return sig.rtm_name(self.pipe, self.index)

    def __str__(self) -> str:
        return f"{self.pipe}.{self.index}"


@dataclass(frozen=True)
class PipeSpec:
    """One execution pipe.

    Attributes:
        name: pipe name, e.g. ``"long"``.
        num_stages: total number of stages including the issue stage
            (stage 1) and the completion stage (stage ``num_stages``).
        completion_bus: name of the completion bus the final stage writes
            back on, or None for pipes whose results never leave the pipe
            (store-only pipes).
        shunt_stages: indices of decouple ("shunt") stages; they behave as
            ordinary stages for the interlock specification but are marked
            so the FirePath-like model and reports can single them out.
        has_wait: whether instruction-specific WAIT stalls are visible at
            this pipe's issue stage (only the long pipe in the paper).
    """

    name: str
    num_stages: int
    completion_bus: Optional[str] = None
    shunt_stages: Tuple[int, ...] = ()
    has_wait: bool = False

    def __post_init__(self):
        if self.num_stages < 1:
            raise ArchitectureError(f"pipe {self.name!r} must have at least one stage")
        for index in self.shunt_stages:
            if not 1 <= index <= self.num_stages:
                raise ArchitectureError(
                    f"shunt stage {index} out of range for pipe {self.name!r}"
                )

    def stages(self) -> List[StageRef]:
        """All stages of the pipe, issue stage first."""
        return [StageRef(self.name, index) for index in range(1, self.num_stages + 1)]

    def stage(self, index: int) -> StageRef:
        """A specific stage of this pipe."""
        if not 1 <= index <= self.num_stages:
            raise ArchitectureError(f"pipe {self.name!r} has no stage {index}")
        return StageRef(self.name, index)

    @property
    def issue_stage(self) -> StageRef:
        """Stage 1 — the combined fetch/decode/issue stage."""
        return StageRef(self.name, 1)

    @property
    def completion_stage(self) -> StageRef:
        """The final stage, which competes for the completion bus."""
        return StageRef(self.name, self.num_stages)


@dataclass(frozen=True)
class CompletionBusSpec:
    """A completion (writeback) bus shared by the final stages of pipes.

    Attributes:
        name: bus name, e.g. ``"c"``.
        priority: pipe names in decreasing priority order for fixed-priority
            arbitration (the paper gives the short pipe priority over the
            long pipe).
    """

    name: str
    priority: Tuple[str, ...]

    def __post_init__(self):
        if not self.priority:
            raise ArchitectureError(f"completion bus {self.name!r} has no pipes attached")
        if len(set(self.priority)) != len(self.priority):
            raise ArchitectureError(f"completion bus {self.name!r} lists a pipe twice")


@dataclass(frozen=True)
class ScoreboardSpec:
    """Register scoreboard configuration.

    Attributes:
        num_registers: number of architectural registers tracked.
        prefix: signal prefix of the scoreboard bits (``scb`` in the paper).
        bypass_buses: completion buses whose target register bypasses the
            scoreboard check in the same cycle (the paper's single bus
            ``c`` bypasses).
    """

    num_registers: int
    prefix: str = "scb"
    bypass_buses: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.num_registers < 1:
            raise ArchitectureError("scoreboard must track at least one register")

    def bit_names(self) -> List[str]:
        """Signal names of all scoreboard bits."""
        return [sig.scoreboard_name(a, self.prefix) for a in range(self.num_registers)]


@dataclass(frozen=True)
class StallInput:
    """An extra external or instruction-specific stall input.

    ``signal`` stalls the issue stages of all pipes in ``applies_to`` when
    asserted.  The paper's ``op_is_WAIT`` (long pipe only) and the
    FirePath-like interrupt request are modelled this way.
    """

    signal: str
    applies_to: Tuple[str, ...]
    description: str = ""


@dataclass
class Architecture:
    """Complete structural description of a pipelined design.

    Attributes:
        name: human-readable architecture name.
        pipes: the execution pipes.
        buses: the completion buses.
        scoreboard: register scoreboard configuration, or None when the
            design tracks no register hazards.
        lockstep_groups: groups of pipe names whose issue stages move in
            lock step (their stage-1 moe flags are pairwise equivalent).
        extra_stall_inputs: WAIT/interrupt style stall inputs.
    """

    name: str
    pipes: List[PipeSpec]
    buses: List[CompletionBusSpec] = field(default_factory=list)
    scoreboard: Optional[ScoreboardSpec] = None
    lockstep_groups: List[Tuple[str, ...]] = field(default_factory=list)
    extra_stall_inputs: List[StallInput] = field(default_factory=list)

    def __post_init__(self):
        self.validate()

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ArchitectureError`."""
        names = [pipe.name for pipe in self.pipes]
        if len(set(names)) != len(names):
            raise ArchitectureError("duplicate pipe names")
        if not self.pipes:
            raise ArchitectureError("an architecture needs at least one pipe")
        bus_names = [bus.name for bus in self.buses]
        if len(set(bus_names)) != len(bus_names):
            raise ArchitectureError("duplicate completion bus names")
        pipe_by_name = {pipe.name: pipe for pipe in self.pipes}
        for bus in self.buses:
            for pipe_name in bus.priority:
                if pipe_name not in pipe_by_name:
                    raise ArchitectureError(
                        f"bus {bus.name!r} references unknown pipe {pipe_name!r}"
                    )
                if pipe_by_name[pipe_name].completion_bus != bus.name:
                    raise ArchitectureError(
                        f"pipe {pipe_name!r} is listed on bus {bus.name!r} but its "
                        f"completion_bus is {pipe_by_name[pipe_name].completion_bus!r}"
                    )
        for pipe in self.pipes:
            if pipe.completion_bus is not None and pipe.completion_bus not in bus_names:
                raise ArchitectureError(
                    f"pipe {pipe.name!r} completes on unknown bus {pipe.completion_bus!r}"
                )
        for group in self.lockstep_groups:
            if len(group) < 2:
                raise ArchitectureError("a lock-step group needs at least two pipes")
            for pipe_name in group:
                if pipe_name not in pipe_by_name:
                    raise ArchitectureError(
                        f"lock-step group references unknown pipe {pipe_name!r}"
                    )
        for stall_input in self.extra_stall_inputs:
            for pipe_name in stall_input.applies_to:
                if pipe_name not in pipe_by_name:
                    raise ArchitectureError(
                        f"stall input {stall_input.signal!r} references unknown pipe "
                        f"{pipe_name!r}"
                    )

    # -- lookups -----------------------------------------------------------------

    def pipe(self, name: str) -> PipeSpec:
        """Look up a pipe by name."""
        for pipe in self.pipes:
            if pipe.name == name:
                return pipe
        raise ArchitectureError(f"no pipe named {name!r} in architecture {self.name!r}")

    def bus(self, name: str) -> CompletionBusSpec:
        """Look up a completion bus by name."""
        for bus in self.buses:
            if bus.name == name:
                return bus
        raise ArchitectureError(f"no bus named {name!r} in architecture {self.name!r}")

    def all_stages(self) -> List[StageRef]:
        """All stages of all pipes, deepest (completion) stages first per pipe.

        The ordering mirrors the backwards flow of control from the
        completion stages, which is also a good BDD variable order.
        """
        out: List[StageRef] = []
        for pipe in self.pipes:
            out.extend(reversed(pipe.stages()))
        return out

    def completion_stages(self) -> List[StageRef]:
        """The final stage of every pipe that completes onto a bus."""
        return [
            pipe.completion_stage for pipe in self.pipes if pipe.completion_bus is not None
        ]

    def pipes_on_bus(self, bus_name: str) -> List[PipeSpec]:
        """Pipes attached to a completion bus, in priority order."""
        bus = self.bus(bus_name)
        return [self.pipe(name) for name in bus.priority]

    def lockstep_partners(self, pipe_name: str) -> List[str]:
        """Other pipes whose issue stage is locked to the given pipe's."""
        partners: List[str] = []
        for group in self.lockstep_groups:
            if pipe_name in group:
                partners.extend(name for name in group if name != pipe_name)
        return partners

    def wait_signals_for(self, pipe_name: str) -> List[str]:
        """Extra stall input signals applying to a pipe's issue stage."""
        return [
            stall.signal
            for stall in self.extra_stall_inputs
            if pipe_name in stall.applies_to
        ]

    # -- signal inventory ----------------------------------------------------------

    def moe_signals(self) -> List[str]:
        """All moving-or-empty flag names."""
        return [stage.moe for stage in self.all_stages()]

    def rtm_signals(self) -> List[str]:
        """All require-to-move flag names."""
        return [stage.rtm for stage in self.all_stages()]

    def grant_signals(self) -> List[str]:
        """Completion bus grant signal names, one per completing pipe."""
        return [sig.gnt_name(pipe.name) for pipe in self.pipes if pipe.completion_bus]

    def request_signals(self) -> List[str]:
        """Completion bus request signal names, one per completing pipe."""
        return [sig.req_name(pipe.name) for pipe in self.pipes if pipe.completion_bus]

    def scoreboard_signals(self) -> List[str]:
        """Scoreboard bit names (empty when there is no scoreboard)."""
        if self.scoreboard is None:
            return []
        return self.scoreboard.bit_names()

    def bus_target_signals(self) -> List[str]:
        """One-hot completion-target indicators for every bus and address."""
        if self.scoreboard is None:
            return []
        out = []
        for bus in self.buses:
            for address in range(self.scoreboard.num_registers):
                out.append(sig.bus_target_indicator(bus.name, address))
        return out

    def issue_regaddr_signals(self) -> List[str]:
        """One-hot src/dst register-address indicators at every issue stage."""
        if self.scoreboard is None:
            return []
        out = []
        for pipe in self.pipes:
            for which in ("src", "dst"):
                for address in range(self.scoreboard.num_registers):
                    out.append(
                        sig.stage_regaddr_indicator(pipe.name, 1, which, address)
                    )
        return out

    def extra_stall_signals(self) -> List[str]:
        """WAIT / interrupt style stall input names."""
        return [stall.signal for stall in self.extra_stall_inputs]

    def input_signals(self) -> List[str]:
        """Every primary input of the interlock logic (everything except moe)."""
        out: List[str] = []
        out.extend(self.rtm_signals())
        out.extend(self.request_signals())
        out.extend(self.grant_signals())
        out.extend(self.extra_stall_signals())
        out.extend(self.scoreboard_signals())
        out.extend(self.bus_target_signals())
        out.extend(self.issue_regaddr_signals())
        return out

    def stage_count(self) -> int:
        """Total number of pipeline stages across all pipes."""
        return sum(pipe.num_stages for pipe in self.pipes)

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples and benches)."""
        lines = [f"Architecture {self.name!r}:"]
        for pipe in self.pipes:
            bus = pipe.completion_bus or "-"
            shunts = f", shunts at {list(pipe.shunt_stages)}" if pipe.shunt_stages else ""
            lines.append(
                f"  pipe {pipe.name}: {pipe.num_stages} stages, completion bus {bus}{shunts}"
            )
        for bus in self.buses:
            lines.append(f"  bus {bus.name}: priority {' > '.join(bus.priority)}")
        if self.scoreboard is not None:
            lines.append(
                f"  scoreboard: {self.scoreboard.num_registers} registers "
                f"(prefix {self.scoreboard.prefix!r})"
            )
        for group in self.lockstep_groups:
            lines.append(f"  lock-step issue: {' = '.join(group)}")
        for stall in self.extra_stall_inputs:
            pipes = ", ".join(stall.applies_to)
            lines.append(f"  stall input {stall.signal} -> issue of {pipes}")
        lines.append(f"  total stages: {self.stage_count()}")
        return "\n".join(lines)

    def ascii_diagram(self) -> str:
        """Figure-1 style ASCII rendering of the pipe/stage structure."""
        lines = [f"{self.name}"]
        depth = max(pipe.num_stages for pipe in self.pipes)
        header = "stage | " + " | ".join(f"{pipe.name:^8}" for pipe in self.pipes)
        lines.append(header)
        lines.append("-" * len(header))
        for index in range(depth, 0, -1):
            cells = []
            for pipe in self.pipes:
                if index <= pipe.num_stages:
                    marker = "WB" if index == pipe.num_stages and pipe.completion_bus else "EX"
                    if index == 1:
                        marker = "ISS"
                    if index in pipe.shunt_stages:
                        marker = "SHNT"
                    cells.append(f"[{marker:^4}]")
                else:
                    cells.append(" " * 6)
            lines.append(f"  {index:>3} | " + " | ".join(f"{c:^8}" for c in cells))
        if self.buses:
            bus_line = "completion buses: " + ", ".join(
                f"{bus.name}({' > '.join(bus.priority)})" for bus in self.buses
            )
            lines.append(bus_line)
        return "\n".join(lines)
