"""Signal naming conventions shared by the whole library.

The paper writes control signals as ``long.4.moe``, ``short.req``,
``scb[3]`` or ``c.regaddr``.  Every layer of this library (specification,
simulator, assertion generator, property checker, RTL synthesiser) refers
to signals by these dotted string names, so the conventions are centralised
here.

Enumerated signals (register addresses) are lowered to one-hot indicator
booleans named ``<signal>=<value>`` by :mod:`repro.expr.domains`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List

MOE_SUFFIX = "moe"
RTM_SUFFIX = "rtm"


def moe_name(pipe: str, stage: int) -> str:
    """Moving-or-empty flag of a pipeline stage, e.g. ``long.4.moe``."""
    return f"{pipe}.{stage}.{MOE_SUFFIX}"


def rtm_name(pipe: str, stage: int) -> str:
    """Require-to-move flag of a pipeline stage, e.g. ``long.3.rtm``."""
    return f"{pipe}.{stage}.{RTM_SUFFIX}"


def req_name(pipe: str) -> str:
    """Completion bus request of a pipe, e.g. ``long.req``."""
    return f"{pipe}.req"


def gnt_name(pipe: str) -> str:
    """Completion bus grant of a pipe, e.g. ``long.gnt``."""
    return f"{pipe}.gnt"


def valid_name(pipe: str, stage: int) -> str:
    """Stage-occupied flag (used by the simulator's trace, not the spec)."""
    return f"{pipe}.{stage}.valid"


def scoreboard_name(address: int, prefix: str = "scb") -> str:
    """Scoreboard bit for a register address, e.g. ``scb[5]``."""
    return f"{prefix}[{address}]"


def bus_target_indicator(bus: str, address: int) -> str:
    """One-hot indicator that completion bus ``bus`` targets register ``address``."""
    return f"{bus}.regaddr={address}"


def stage_regaddr_indicator(pipe: str, stage: int, which: str, address: int) -> str:
    """Indicator that a stage's src/dst register address equals ``address``.

    ``which`` is ``"src"`` or ``"dst"``, mirroring the paper's SDREG domain.
    """
    return f"{pipe}.{stage}.{which}.regaddr={address}"


def wait_name(pipe: str) -> str:
    """The instruction-specific WAIT flag visible at a pipe's issue stage."""
    return f"{pipe}.op_is_WAIT"


def interrupt_name(side: str = "") -> str:
    """External interrupt request signal (used by the FirePath-like model)."""
    return f"{side}.interrupt" if side else "interrupt"


_IDENTIFIER_RE = re.compile(r"[^A-Za-z0-9_]")


def to_hdl_identifier(name: str) -> str:
    """Sanitise a dotted signal name into a legal Verilog identifier.

    ``long.4.moe`` becomes ``long_4_moe``; ``c.regaddr=5`` becomes
    ``c_regaddr_eq_5``.
    """
    out = name.replace("=", "_eq_")
    out = _IDENTIFIER_RE.sub("_", out)
    if out and out[0].isdigit():
        out = "_" + out
    return out


@dataclass(frozen=True)
class SignalGroup:
    """A named group of related signal names (one pipeline stage, one bus...)."""

    label: str
    names: tuple

    def __iter__(self):
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)


def merge_valuations(*valuations: Dict[str, bool]) -> Dict[str, bool]:
    """Merge several signal valuations, erroring on conflicting values."""
    out: Dict[str, bool] = {}
    for valuation in valuations:
        for name, value in valuation.items():
            if name in out and out[name] != value:
                raise ValueError(f"conflicting values for signal {name!r}")
            out[name] = bool(value)
    return out


def filter_prefix(valuation: Dict[str, bool], prefix: str) -> Dict[str, bool]:
    """Subset of a valuation whose names start with ``prefix``."""
    return {name: value for name, value in valuation.items() if name.startswith(prefix)}


def sorted_names(names: Iterable[str]) -> List[str]:
    """Deterministic ordering used in reports and generated HDL port lists."""
    return sorted(names)
