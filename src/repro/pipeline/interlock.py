"""Interlock control logic implementations.

The interlock is the block that drives the per-stage moving-or-empty flags
from the control inputs (rtm flags, completion requests/grants, scoreboard,
WAIT, ...).  The simulator treats the interlock as a black box so that
different implementations — the derived maximum-performance one, a
conservative hand-written one, a synthesised netlist, or a fault-injected
mutant — can all be plugged into the same datapath and compared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from ..expr.ast import Expr, Not, Var
from ..expr.evaluate import eval_expr
from ..expr.transform import simplify
from ..spec.derivation import (
    DerivationResult,
    concrete_most_liberal,
    symbolic_most_liberal,
)
from ..spec.functional import FunctionalSpec


class Interlock(ABC):
    """Maps a control-input valuation to the moe flag valuation of one cycle."""

    name: str = "interlock"
    description: str = ""

    @abstractmethod
    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        """Compute every moe flag for the given control inputs."""

    @abstractmethod
    def moe_flags(self) -> list:
        """The moe flag names this interlock drives."""

    def reset(self) -> None:
        """Reset any sequential state (reset/initialisation faults override this)."""

    def on_cycle_start(self, cycle: int) -> None:
        """Hook invoked by the simulator at the start of every cycle."""


class SpecFixedPointInterlock(Interlock):
    """Reference interlock: per-cycle concrete fixed point of the functional spec.

    Every cycle it computes the unique most liberal moe assignment for the
    current inputs (Section 3.2's ``MOE``), so by construction it satisfies
    both the functional and the performance specification — zero hazards,
    zero unnecessary stalls.
    """

    def __init__(self, spec: FunctionalSpec, name: Optional[str] = None):
        self.spec = spec
        self.name = name or f"fixed-point({spec.name})"
        self.description = "per-cycle concrete fixed point of the functional specification"

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        return concrete_most_liberal(self.spec, inputs)

    def moe_flags(self) -> list:
        return self.spec.moe_flags()


class ClosedFormInterlock(Interlock):
    """Interlock defined by closed-form moe expressions over primary inputs.

    This is what the symbolic derivation, the RTL synthesiser and the fault
    injector produce.  Expressions may only refer to primary inputs (they
    are combinational in the inputs); cross-references between moe flags
    must already have been resolved by the derivation.
    """

    def __init__(
        self,
        moe_expressions: Mapping[str, Expr],
        name: str = "closed-form",
        description: str = "",
    ):
        self._expressions = dict(moe_expressions)
        self.name = name
        self.description = description or "closed-form combinational interlock"

    @classmethod
    def from_derivation(
        cls, derivation: DerivationResult, name: Optional[str] = None
    ) -> "ClosedFormInterlock":
        """Build from a symbolic derivation result."""
        return cls(
            derivation.moe_expressions,
            name=name or f"derived({derivation.spec.name})",
            description="closed forms from the symbolic fixed-point derivation",
        )

    @classmethod
    def from_spec(cls, spec: FunctionalSpec, name: Optional[str] = None) -> "ClosedFormInterlock":
        """Derive the closed forms from a functional spec and wrap them."""
        return cls.from_derivation(symbolic_most_liberal(spec), name=name)

    def expression_for(self, moe: str) -> Expr:
        """The closed-form expression driving one moe flag."""
        return self._expressions[moe]

    def expressions(self) -> Dict[str, Expr]:
        """All closed-form expressions (copy)."""
        return dict(self._expressions)

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        return {
            moe: eval_expr(expression, inputs)
            for moe, expression in self._expressions.items()
        }

    def moe_flags(self) -> list:
        return list(self._expressions)

    def with_replaced_flag(
        self, moe: str, expression: Expr, name: Optional[str] = None
    ) -> "ClosedFormInterlock":
        """A copy with one flag's expression replaced (fault injection hook)."""
        expressions = dict(self._expressions)
        if moe not in expressions:
            raise KeyError(f"interlock drives no flag named {moe!r}")
        expressions[moe] = simplify(expression)
        return ClosedFormInterlock(
            expressions,
            name=name or f"{self.name}+mutated({moe})",
            description=self.description,
        )


class ConservativeCompletionInterlock(Interlock):
    """A correct but pessimistic interlock modelling pre-redesign completion logic.

    The completion stages only accept a bus grant that answers a request
    already pending in the *previous* cycle — as if the arbitration were a
    registered (one-cycle-delayed) stage.  Every stall the maximum-
    performance interlock issues is still issued, so the functional
    specification holds and no hazards arise, but every writeback pays an
    extra dead cycle at the completion stage: exactly the class of
    inefficiency the paper reports finding and designing out of the FirePath
    completion logic.
    """

    def __init__(self, spec: FunctionalSpec, architecture, name: Optional[str] = None):
        self.spec = spec
        self.architecture = architecture
        self._reference = ClosedFormInterlock.from_spec(spec)
        self._pending_request: Dict[str, bool] = {}
        self.name = name or f"conservative-completion({spec.name})"
        self.description = (
            "completion stages only honour grants for requests registered in the "
            "previous cycle (pre-redesign completion logic)"
        )
        self.reset()

    def reset(self) -> None:
        self._pending_request = {
            pipe.name: False
            for pipe in self.architecture.pipes
            if pipe.completion_bus is not None
        }

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        from . import signals as sig

        # Mask the grant of any request that was not already pending in the
        # previous cycle; the masked grant propagates through the reference
        # closed forms, so the extra stall also reaches the upstream stages
        # (no hazards — only lost cycles).
        effective = dict(inputs)
        for pipe in self.architecture.pipes:
            if pipe.completion_bus is None:
                continue
            request = inputs.get(sig.req_name(pipe.name), False)
            if request and not self._pending_request[pipe.name]:
                effective[sig.gnt_name(pipe.name)] = False
            self._pending_request[pipe.name] = request
        return self._reference.compute_moe(effective)

    def moe_flags(self) -> list:
        return self._reference.moe_flags()


class StuckResetInterlock(Interlock):
    """Wraps another interlock but drives fixed values for the first cycles.

    Models the "incorrect initialisation values of control signals" class of
    defect the paper reports: after reset the moe flags should come up
    permissive (the pipeline is empty, everything may move), but a wrong
    reset value holds some flag low (spurious stalls) or high in a situation
    that requires a stall.
    """

    def __init__(
        self,
        inner: Interlock,
        forced_values: Mapping[str, bool],
        cycles: int,
        name: Optional[str] = None,
    ):
        if cycles < 1:
            raise ValueError("the forced-reset window must last at least one cycle")
        self.inner = inner
        self.forced_values = dict(forced_values)
        self.cycles = cycles
        self._current_cycle = 0
        self.name = name or f"{inner.name}+bad-reset"
        self.description = (
            f"drives {sorted(self.forced_values)} to fixed values for the first "
            f"{cycles} cycle(s) after reset"
        )

    def reset(self) -> None:
        self._current_cycle = 0
        self.inner.reset()

    def on_cycle_start(self, cycle: int) -> None:
        self._current_cycle = cycle
        self.inner.on_cycle_start(cycle)

    def compute_moe(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        values = self.inner.compute_moe(inputs)
        if self._current_cycle < self.cycles:
            for moe, forced in self.forced_values.items():
                if moe in values:
                    values[moe] = forced
        return values

    def moe_flags(self) -> list:
        return self.inner.moe_flags()


def reference_interlock(spec: FunctionalSpec, symbolic: bool = True) -> Interlock:
    """The maximum-performance reference interlock for a functional spec.

    ``symbolic=True`` derives closed forms once and evaluates them each
    cycle; ``symbolic=False`` recomputes the concrete fixed point every
    cycle.  Both produce identical moe values (a property the test-suite
    checks); the benchmark suite compares their speed.
    """
    if symbolic:
        return ClosedFormInterlock.from_spec(spec)
    return SpecFixedPointInterlock(spec)
