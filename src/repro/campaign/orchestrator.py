"""Warm process-pool campaign orchestrator.

Shards the pending (non-cached) jobs of a campaign across worker
processes.  Jobs cross the process boundary as plain dictionaries — the
declarative :class:`~repro.campaign.spec.JobSpec` round trip — so no
symbolic state (BDD managers, compiled evaluators) is ever pickled.

Workers are *persistent*: the pool is a module-level singleton that
survives across campaigns, and inside each worker
:func:`~repro.campaign.runner._arch_state` keeps live
``BddManager``/``SymbolicContext`` state per architecture.  A second
campaign over the same family therefore skips process startup, module
imports, architecture loading and the symbolic derivation — the warm-path
speedup the ``campaign_sweep_warm`` benchmark and the nightly CI gate
measure.  Workers also read/write the shared result store directly
(binary derivation artifacts and per-stage results, both content-hashed
and written atomically), reporting their store-traffic deltas back with
each result so the campaign report can tally cache effectiveness.

With ``workers=1`` (or a single pending job) everything runs in-process,
which is also the fallback when the platform cannot fork; the result is
identical either way, only the wall clock differs.
"""

from __future__ import annotations

import atexit
import multiprocessing
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from typing import Any, Callable, Dict, List, Optional

from ..obs import Tracer, get_registry, span, tracing_enabled
from .report import CampaignReport
from .runner import JobResult, run_traced_job
from .spec import CampaignSpec, JobSpec
from .store import ResultStore, StoreStats

ProgressFn = Callable[[str], None]
ResultFn = Callable[[JobResult], None]
StopFn = Callable[[], bool]

#: How often (seconds) the pool-streaming loop re-checks ``should_stop``
#: while no result is ready.  Bounds cancellation latency for callers
#: like the service daemon without busy-waiting.
_STOP_POLL_SECONDS = 0.2


class CampaignCancelled(RuntimeError):
    """Raised by :func:`run_campaign` when ``should_stop`` turned true.

    Cancellation is cooperative and job-granular: jobs already handed to
    a worker run to completion (killing a worker mid-job would poison
    the warm pool), jobs not yet started are never dispatched.  Results
    consumed before the stop — including everything ``on_result`` saw —
    remain in the store; only the aggregate report is lost.
    """

#: Worker-side cache of store handles by root path, so one worker process
#: reuses a single ResultStore (and its running stats) across all jobs.
_WORKER_STORES: Dict[str, ResultStore] = {}


def _execute_job_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out (must stay module-level picklable).

    The worker opens (and caches) its own handle on the shared store
    directory, executes the job with artifact/stage caching, and ships
    its store-traffic delta home inside the result, so the parent can
    aggregate campaign-wide cache statistics without double counting.
    """
    job = JobSpec.from_dict(payload["job"])
    store_root = payload.get("store")
    store: Optional[ResultStore] = None
    if store_root is not None:
        store = _WORKER_STORES.get(store_root)
        if store is None:
            store = ResultStore(store_root)
            _WORKER_STORES[store_root] = store
    before = store.stats.copy() if store is not None else None
    registry = get_registry()
    metrics_before = registry.snapshot()
    result = run_traced_job(
        job,
        store=store,
        incremental=bool(payload.get("incremental", False)),
        trace=payload.get("trace"),
    )
    if store is not None:
        result.store_stats = store.stats.diff(before).as_dict()
    # Ship what this job added to the worker's registry; the parent folds
    # it exactly like the store delta above (gauges stay worker-local).
    result.metrics = registry.delta_since(metrics_before)
    return result.as_dict()


def _pool_context():
    """Prefer fork on Linux: workers inherit sys.path, so an uninstalled
    source tree (PYTHONPATH=src) still imports.  Elsewhere keep the
    platform default — macOS lists fork as available but forking a
    process that touched the Objective-C runtime is unsafe there."""
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


# -- the persistent pool -----------------------------------------------------------

_WARM_POOL: Optional[ProcessPoolExecutor] = None
_WARM_POOL_WORKERS = 0


def _warm_pool(workers: int) -> ProcessPoolExecutor:
    """The shared persistent pool, (re)created only when the size changes."""
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None and _WARM_POOL_WORKERS != workers:
        shutdown_warm_pool()
    if _WARM_POOL is None:
        _WARM_POOL = ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        )
        _WARM_POOL_WORKERS = workers
    return _WARM_POOL


def shutdown_warm_pool() -> None:
    """Tear down the persistent worker pool (no-op when none is live).

    Campaigns recreate it on demand; call this to reclaim the worker
    processes and their warm BDD state, e.g. at the end of a long-lived
    service or between benchmark phases that must not share warmth.
    """
    global _WARM_POOL, _WARM_POOL_WORKERS
    if _WARM_POOL is not None:
        _WARM_POOL.shutdown()
        _WARM_POOL = None
        _WARM_POOL_WORKERS = 0


atexit.register(shutdown_warm_pool)


def _run_pool(
    pending: List[JobSpec],
    workers: int,
    progress: Optional[ProgressFn],
    store_root: Optional[str],
    incremental: bool,
    consume: Callable[[int, JobResult], None],
    should_stop: Optional[StopFn] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> None:
    """Stream jobs through the persistent pool, consuming results as they land."""
    pool = _warm_pool(workers)
    broken = False
    future_index = {
        pool.submit(
            _execute_job_payload,
            {
                "job": job.to_dict(),
                "store": store_root,
                "incremental": incremental,
                "trace": trace,
            },
        ): index
        for index, job in enumerate(pending)
    }
    outstanding = set(future_index)
    while outstanding:
        if should_stop is not None and should_stop():
            # Drain, don't kill: unstarted futures are revoked, but jobs
            # a worker already picked up run to completion so the warm
            # pool stays healthy (their results still land in the store).
            for future in outstanding:
                future.cancel()
            running = [f for f in outstanding if not f.cancelled()]
            if running:
                wait(running)
            raise CampaignCancelled(
                f"campaign cancelled with {len(outstanding)} jobs undone"
            )
        done, outstanding = wait(
            outstanding,
            return_when=FIRST_COMPLETED,
            timeout=None if should_stop is None else _STOP_POLL_SECONDS,
        )
        for future in done:
            index = future_index[future]
            try:
                result = JobResult.from_dict(future.result())
            except Exception as exc:
                # A killed or crashed worker (BrokenProcessPool, lost
                # result) fails its job, not the campaign: completed
                # results stay, remaining futures surface the same way.
                if isinstance(exc, BrokenProcessPool):
                    broken = True
                result = JobResult(
                    job=pending[index],
                    ok=False,
                    seconds=0.0,
                    error=traceback.format_exc(),
                )
            consume(index, result)
            if progress is not None:
                status = "ok" if result.ok else "FAIL"
                progress(f"[{result.job.arch}] {status} in {result.seconds:.3f}s")
    if broken:
        # A dead pool never recovers; dispose of it so the next campaign
        # starts a fresh one instead of failing every submit.
        shutdown_warm_pool()


def _fold_store_metrics(registry: Any, stats: StoreStats) -> None:
    """Mirror a campaign's StoreStats delta into the metrics registry."""
    reads = (
        ("job", "hits", "hit"),
        ("job", "misses", "miss"),
        ("artifact", "artifact_hits", "hit"),
        ("artifact", "artifact_misses", "miss"),
        ("stage", "stage_hits", "hit"),
        ("stage", "stage_misses", "miss"),
    )
    for kind, attr, outcome in reads:
        value = getattr(stats, attr)
        if value:
            registry.inc("repro_store_reads_total", value, kind=kind, outcome=outcome)
    if stats.corrupt:
        registry.inc("repro_store_corrupt_total", stats.corrupt)


def run_campaign(
    spec: CampaignSpec,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
    incremental: bool = False,
    on_result: Optional[ResultFn] = None,
    should_stop: Optional[StopFn] = None,
    trace: Optional[bool] = None,
) -> CampaignReport:
    """Run a whole campaign and aggregate the per-job outcomes.

    This is the batch engine's single public entry point: everything the
    CLI (``repro campaign``) and the service daemon (``repro serve``) do
    funnels through here.

    Args:
        spec: the declarative campaign to run.
        store: result store for content-hashed caching; None disables
            persistence entirely.
        use_cache: look up previously verified configurations in the
            store before scheduling work (writes happen regardless).
        progress: optional line-oriented progress callback.
        workers: override the campaign's worker count (e.g. from the CLI).
        incremental: replay stored per-stage results whose dependency
            hashes are unchanged instead of re-executing those stages
            (requires ``store``); see
            :data:`~repro.campaign.spec.STAGE_DEPENDENCIES`.
        on_result: streaming callback invoked once per job *as results
            arrive* (cached jobs first, then fresh ones in completion
            order) — unlike the returned report, which is in job order.
        should_stop: polled between jobs (and every few hundred
            milliseconds while waiting on the pool); when it returns
            True the campaign raises :class:`CampaignCancelled` after
            draining already-dispatched jobs.  This is the cooperative
            cancellation hook the async service layer drives from a
            ``threading.Event``.
        trace: force span tracing on (True) or off (False); the default
            None defers to the ``REPRO_TRACE`` environment variable.
            When tracing, one correlation id spans the campaign and all
            its workers, each fresh job's spans are exported to the
            store as ``trace-<job_key>.ndjson`` (when a store is
            configured), and the report embeds per-span-name rollups.

    Job failures — verification failures and crashed workers alike — are
    captured in the per-job results; this function only raises for
    orchestration-level errors (and :class:`CampaignCancelled`).

    Example — a two-architecture campaign with streaming results and a
    shared store::

        from repro.campaign import (
            CampaignSpec, JobSpec, ResultStore, run_campaign,
        )

        spec = CampaignSpec(
            name="demo",
            jobs=(
                JobSpec(arch="fam-r2w1d3s1-bypass"),
                JobSpec(arch="fam-r2w1d3s1-blocking"),
            ),
            workers=2,
        )
        store = ResultStore(".campaign-results")
        report = run_campaign(
            spec, store=store,
            on_result=lambda r: print(r.job.arch, "ok" if r.ok else "FAIL"),
        )
        assert report.all_ok()
        # A second identical run answers from the store in milliseconds:
        assert run_campaign(spec, store=store).cached()
    """
    if incremental and store is None:
        raise ValueError("incremental campaigns need a result store")
    worker_count = spec.workers if workers is None else max(1, workers)
    start = time.perf_counter()
    stats_before = store.stats.copy() if store is not None else None
    worker_stats = StoreStats()
    registry = get_registry()
    registry.inc("repro_campaign_runs_total")
    tracing = tracing_enabled() if trace is None else bool(trace)
    tracer = Tracer() if tracing else None
    results: Dict[int, JobResult] = {}
    pending: List[int] = []

    def finish(index: int, result: JobResult, fresh: bool) -> None:
        if fresh:
            # Fold the worker's store-traffic delta into the campaign
            # tally, then drop it so persisted results stay free of
            # run-specific counters.  The metrics delta and the job's
            # trace spans travel — and are stripped — the same way.
            if result.store_stats is not None:
                worker_stats.add(StoreStats.from_dict(result.store_stats))
                result.store_stats = None
            if result.metrics:
                registry.fold(result.metrics)
            result.metrics = None
            if result.trace_spans:
                if store is not None:
                    try:
                        store.put_trace(spec.jobs[index].job_key(), result.trace_spans)
                    except OSError:
                        pass
                if tracer is not None:
                    tracer.spans.extend(result.trace_spans)
            result.trace_spans = None
            # Only passing results are cached: a failure is something to
            # investigate and re-run, not to replay from disk.
            if store is not None and result.ok:
                store.put(spec.jobs[index], result)
        else:
            registry.inc("repro_campaign_jobs_total", outcome="cached")
        results[index] = result
        if on_result is not None:
            on_result(result)

    session = ExitStack()
    job_trace: Optional[Dict[str, Any]] = None
    if tracer is not None:
        session.enter_context(tracer.activate())
        campaign_span = session.enter_context(
            span("campaign", name=spec.name, jobs=len(spec.jobs), workers=worker_count)
        )
        job_trace = {"id": tracer.trace_id, "parent": campaign_span.span_id}
    try:
        for index, job in enumerate(spec.jobs):
            cached = store.get(job) if (store is not None and use_cache) else None
            if cached is not None:
                cached.cached = True
                finish(index, cached, fresh=False)
                if progress is not None:
                    progress(f"[{job.arch}] cached ({'ok' if cached.ok else 'FAIL'})")
            else:
                pending.append(index)

        if pending:
            pending_jobs = [spec.jobs[index] for index in pending]
            if worker_count > 1 and len(pending_jobs) > 1:
                _run_pool(
                    pending_jobs,
                    worker_count,
                    progress,
                    store_root=None if store is None else str(store.root),
                    incremental=incremental,
                    consume=lambda i, result: finish(pending[i], result, fresh=True),
                    should_stop=should_stop,
                    trace=job_trace,
                )
            else:
                for position, index in enumerate(pending):
                    if should_stop is not None and should_stop():
                        raise CampaignCancelled(
                            f"campaign cancelled with {len(pending) - position} jobs undone"
                        )
                    job = spec.jobs[index]
                    result = run_traced_job(
                        job, store=store, incremental=incremental, trace=job_trace
                    )
                    finish(index, result, fresh=True)
                    if progress is not None:
                        status = "ok" if result.ok else "FAIL"
                        progress(f"[{job.arch}] {status} in {result.seconds:.3f}s")
    finally:
        # Close the campaign span (and deactivate the tracer) even on
        # cancellation, before rolling spans up below.
        session.close()

    store_stats: Optional[StoreStats] = None
    if store is not None:
        store_stats = store.stats.diff(stats_before)
        store_stats.add(worker_stats)
        _fold_store_metrics(registry, store_stats)
    ordered = [results[index] for index in range(len(spec.jobs))]
    report = CampaignReport(
        name=spec.name,
        results=ordered,
        workers=worker_count,
        wall_seconds=time.perf_counter() - start,
        store_stats=store_stats,
    )
    if tracer is not None:
        report.trace = tracer.summary()
    return report
