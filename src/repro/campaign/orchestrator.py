"""Process-pool campaign orchestrator.

Shards the pending (non-cached) jobs of a campaign across worker
processes.  Jobs cross the process boundary as plain dictionaries — the
declarative :class:`~repro.campaign.spec.JobSpec` round trip — so no
symbolic state (BDD managers, compiled evaluators) is ever pickled; each
worker rebuilds everything from the architecture name, which is exactly
what makes the shards independent.

With ``workers=1`` (or a single pending job) everything runs in-process,
which is also the fallback when the platform cannot fork; the result is
identical either way, only the wall clock differs.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional

from .report import CampaignReport
from .runner import JobResult, run_verification_job
from .spec import CampaignSpec, JobSpec
from .store import ResultStore

ProgressFn = Callable[[str], None]


def _execute_job_dict(job_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out (must stay module-level picklable)."""
    return run_verification_job(JobSpec.from_dict(job_dict)).as_dict()


def _pool_context():
    """Prefer fork on Linux: workers inherit sys.path, so an uninstalled
    source tree (PYTHONPATH=src) still imports.  Elsewhere keep the
    platform default — macOS lists fork as available but forking a
    process that touched the Objective-C runtime is unsafe there."""
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_pool(
    pending: List[JobSpec],
    workers: int,
    progress: Optional[ProgressFn],
) -> List[JobResult]:
    """Run jobs across a process pool, preserving input order."""
    results: List[Optional[JobResult]] = [None] * len(pending)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(pending)), mp_context=_pool_context()
    ) as pool:
        future_index = {
            pool.submit(_execute_job_dict, job.to_dict()): index
            for index, job in enumerate(pending)
        }
        outstanding = set(future_index)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                index = future_index[future]
                try:
                    result = JobResult.from_dict(future.result())
                except Exception:
                    # A killed or crashed worker (BrokenProcessPool, lost
                    # result) fails its job, not the campaign: completed
                    # results stay, remaining futures surface the same way.
                    result = JobResult(
                        job=pending[index],
                        ok=False,
                        seconds=0.0,
                        error=traceback.format_exc(),
                    )
                results[index] = result
                if progress is not None:
                    status = "ok" if result.ok else "FAIL"
                    progress(
                        f"[{result.job.arch}] {status} in {result.seconds:.3f}s"
                    )
    return [result for result in results if result is not None]


def run_campaign(
    spec: CampaignSpec,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = None,
    workers: Optional[int] = None,
) -> CampaignReport:
    """Run a whole campaign and aggregate the per-job outcomes.

    Args:
        spec: the declarative campaign to run.
        store: result store for content-hashed caching; None disables
            persistence entirely.
        use_cache: look up previously verified configurations in the
            store before scheduling work (writes happen regardless).
        progress: optional line-oriented progress callback.
        workers: override the campaign's worker count (e.g. from the CLI).

    Job failures — verification failures and crashed workers alike — are
    captured in the per-job results; this function only raises for
    orchestration-level errors.
    """
    worker_count = spec.workers if workers is None else max(1, workers)
    start = time.perf_counter()
    results: Dict[int, JobResult] = {}
    pending: List[int] = []
    for index, job in enumerate(spec.jobs):
        cached = store.get(job) if (store is not None and use_cache) else None
        if cached is not None:
            cached.cached = True
            results[index] = cached
            if progress is not None:
                progress(f"[{job.arch}] cached ({'ok' if cached.ok else 'FAIL'})")
        else:
            pending.append(index)

    if pending:
        pending_jobs = [spec.jobs[index] for index in pending]
        if worker_count > 1 and len(pending_jobs) > 1:
            fresh = _run_pool(pending_jobs, worker_count, progress)
        else:
            fresh = []
            for job in pending_jobs:
                result = run_verification_job(job)
                fresh.append(result)
                if progress is not None:
                    status = "ok" if result.ok else "FAIL"
                    progress(f"[{job.arch}] {status} in {result.seconds:.3f}s")
        for index, result in zip(pending, fresh):
            results[index] = result
            # Only passing results are cached: a failure is something to
            # investigate and re-run, not to replay from disk.
            if store is not None and result.ok:
                store.put(spec.jobs[index], result)

    ordered = [results[index] for index in range(len(spec.jobs))]
    return CampaignReport(
        name=spec.name,
        results=ordered,
        workers=worker_count,
        wall_seconds=time.perf_counter() - start,
    )
