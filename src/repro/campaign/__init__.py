"""Parallel verification campaigns over many architectures.

The paper verifies one design; this package turns the whole flow —
Section 3.1 precondition checks, the symbolic fixed-point derivation,
the maximality theorem, per-stage proof obligations, fault-injection
campaigns and stall/coverage analysis — into a batch engine:

* :mod:`repro.campaign.spec` — declarative job/campaign specifications
  (dataclasses with a JSON round trip), including one-line family sweeps;
* :mod:`repro.campaign.runner` — the end-to-end verification job a single
  worker executes for one architecture;
* :mod:`repro.campaign.store` — a content-hashed store of per-job JSON
  results, binary BDD derivation artifacts and per-stage results keyed
  by dependency hashes, so re-running a campaign skips already-verified
  configurations and incremental runs skip unchanged *stages*;
* :mod:`repro.campaign.orchestrator` — shards pending jobs across a
  persistent warm process pool (live symbolic state per worker) and
  streams the results into an aggregate report;
* :mod:`repro.campaign.report` — pass/fail/timing aggregation rendered
  through :mod:`repro.analysis`.

Exposed on the command line as ``python -m repro campaign``, and as a
long-running HTTP service by :mod:`repro.service` (``python -m repro
serve``), which shares one :class:`ResultStore` and the warm worker pool
across all clients.

Quickstart::

    from repro.campaign import ResultStore, family_sweep, run_campaign

    spec = family_sweep(registers=(2,), widths=(1,), depths=(3,))
    report = run_campaign(spec, store=ResultStore(".campaign-results"))
    print(report.describe())      # per-stage pass rates, cache tally

The incremental-campaign contract lives in
:data:`~repro.campaign.spec.STAGE_DEPENDENCIES`: each stage's store key
hashes only the :class:`JobSpec` fields that stage reads, so editing a
workload knob re-runs only the stages that depend on it.  See
``docs/architecture.md`` for the layer map and ``help(run_campaign)``
for the orchestration knobs (streaming ``on_result``, cooperative
``should_stop`` cancellation, ``incremental`` stage replay).
"""

from .orchestrator import CampaignCancelled, run_campaign, shutdown_warm_pool
from .report import CampaignReport
from .runner import (
    CANONICAL_STAGES,
    JobResult,
    StageResult,
    clear_warm_state,
    run_verification_job,
)
from .spec import (
    STAGE_DEPENDENCIES,
    CampaignSpec,
    CampaignSpecError,
    JobSpec,
    family_sweep,
)
from .store import ResultStore, StoreStats

__all__ = [
    "CampaignCancelled",
    "CampaignReport",
    "CampaignSpec",
    "CampaignSpecError",
    "CANONICAL_STAGES",
    "JobResult",
    "JobSpec",
    "ResultStore",
    "STAGE_DEPENDENCIES",
    "StageResult",
    "StoreStats",
    "clear_warm_state",
    "family_sweep",
    "run_campaign",
    "run_verification_job",
    "shutdown_warm_pool",
]
