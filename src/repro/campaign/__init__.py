"""Parallel verification campaigns over many architectures.

The paper verifies one design; this package turns the whole flow —
Section 3.1 precondition checks, the symbolic fixed-point derivation,
the maximality theorem, per-stage proof obligations, fault-injection
campaigns and stall/coverage analysis — into a batch engine:

* :mod:`repro.campaign.spec` — declarative job/campaign specifications
  (dataclasses with a JSON round trip), including one-line family sweeps;
* :mod:`repro.campaign.runner` — the end-to-end verification job a single
  worker executes for one architecture;
* :mod:`repro.campaign.store` — a content-hashed per-job JSON result
  store, so re-running a campaign skips already-verified configurations;
* :mod:`repro.campaign.orchestrator` — shards pending jobs across a
  process pool and folds the results into an aggregate report;
* :mod:`repro.campaign.report` — pass/fail/timing aggregation rendered
  through :mod:`repro.analysis`.

Exposed on the command line as ``python -m repro campaign``.
"""

from .orchestrator import run_campaign
from .report import CampaignReport
from .runner import (
    CANONICAL_STAGES,
    JobResult,
    StageResult,
    run_verification_job,
)
from .spec import CampaignSpec, CampaignSpecError, JobSpec, family_sweep
from .store import ResultStore

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "CampaignSpecError",
    "CANONICAL_STAGES",
    "JobResult",
    "JobSpec",
    "ResultStore",
    "family_sweep",
    "run_campaign",
    "run_verification_job",
]
