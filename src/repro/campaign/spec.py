"""Declarative campaign specifications with a JSON round trip.

A campaign is a plain value: a named list of :class:`JobSpec` entries
plus a worker count.  Jobs reference architectures by library name (the
parametric family's canonical names make a whole grid addressable this
way), so a spec serializes to a small JSON document that can be saved,
diffed, shipped to CI and re-run bit-identically — the content hash of a
job's dictionary is also its result-store key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Sequence, Tuple

from ..archs.family import FamilyConfig, generate_family

#: Bump when the result schema or the job semantics change incompatibly;
#: part of the content hash, so stale cached results are never reused.
SPEC_SCHEMA = 1

#: Verification stages in execution order (see :mod:`repro.campaign.runner`).
CANONICAL_STAGES: Tuple[str, ...] = (
    "properties",
    "derive",
    "maximality",
    "obligations",
    "faults",
    "analysis",
)


#: Which :class:`JobSpec` fields each verification stage actually reads.
#:
#: This is the incremental-campaign contract: a stage's store key hashes
#: only these fields, so editing a workload knob (seed, length, fault
#: budget) leaves the structural stages' keys — and their cached results
#: and derivation artifacts — intact.  Structural stages depend only on
#: ``arch`` because canonical family names (``fam-r2w1d3s1-bypass``)
#: encode the full structural configuration; hashing the name is hashing
#: the structure.
#:
#: Example — reseeding shares every structural stage key::
#:
#:     a = JobSpec(arch="fam-r2w1d3s1-bypass", workload_seed=0)
#:     b = JobSpec(arch="fam-r2w1d3s1-bypass", workload_seed=1)
#:     assert a.stage_key("derive") == b.stage_key("derive")    # reused
#:     assert a.stage_key("analysis") != b.stage_key("analysis")  # re-run
#:
#: Adding a stage means adding its field tuple here *and* bumping
#: ``SPEC_SCHEMA`` if the semantics of existing stages changed.
STAGE_DEPENDENCIES: Dict[str, Tuple[str, ...]] = {
    "properties": ("arch",),
    "derive": ("arch",),
    "maximality": ("arch",),
    "obligations": ("arch",),
    "faults": (
        "arch",
        "workload_length",
        "workload_seed",
        "num_programs",
        "max_faults",
    ),
    "analysis": ("arch", "workload_length", "workload_seed"),
}


class CampaignSpecError(ValueError):
    """Raised for malformed campaign or job specifications."""


@dataclass(frozen=True)
class JobSpec:
    """One end-to-end verification job: an architecture plus its knobs.

    Attributes:
        arch: architecture library name (bundled or ``fam-...``).
        stages: which verification stages to run, any subset of
            :data:`CANONICAL_STAGES`; execution always follows canonical
            order regardless of the order given here.
        workload_length: instructions per pipe for the simulation-based
            stages (fault campaign, stall/coverage analysis).
        workload_seed: base seed of the workload generator.
        num_programs: random programs simulated per injected fault.
        max_faults: cap on the standard fault set (0 disables injection).
    """

    arch: str
    stages: Tuple[str, ...] = CANONICAL_STAGES
    workload_length: int = 48
    workload_seed: int = 0
    num_programs: int = 1
    max_faults: int = 4

    def __post_init__(self):
        if not self.arch:
            raise CampaignSpecError("job needs a non-empty architecture name")
        unknown = set(self.stages) - set(CANONICAL_STAGES)
        if unknown:
            raise CampaignSpecError(
                f"unknown stages {sorted(unknown)}; expected a subset of "
                f"{list(CANONICAL_STAGES)}"
            )
        if not self.stages:
            raise CampaignSpecError("job needs at least one stage")
        if self.workload_length < 1:
            raise CampaignSpecError("workload_length must be positive")
        if self.num_programs < 1:
            raise CampaignSpecError("num_programs must be positive")
        if self.max_faults < 0:
            raise CampaignSpecError("max_faults must be non-negative")
        # Normalize to canonical execution order so equivalent jobs hash
        # identically no matter how the stage list was written.
        object.__setattr__(
            self,
            "stages",
            tuple(s for s in CANONICAL_STAGES if s in set(self.stages)),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["stages"] = list(self.stages)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Rebuild a job from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise CampaignSpecError(f"unknown job fields: {sorted(unknown)}")
        data = dict(payload)
        if "stages" in data:
            data["stages"] = tuple(data["stages"])
        return cls(**data)

    def job_key(self) -> str:
        """Content hash identifying this job in the result store.

        The hash covers every job parameter plus the spec schema version:
        any change to what the job would compute yields a new key, so the
        cache can only ever return results for the exact configuration.
        """
        canonical = json.dumps(
            {"schema": SPEC_SCHEMA, "job": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def stage_key(self, stage: str) -> str:
        """Content hash of one stage's *inputs* (see STAGE_DEPENDENCIES).

        Unlike :meth:`job_key` this only covers the fields the stage
        reads, so two jobs differing only in (say) the workload seed
        share the structural stages' keys — the basis for incremental
        re-verification and artifact reuse across sweeps.
        """
        try:
            dependencies = STAGE_DEPENDENCIES[stage]
        except KeyError:
            raise CampaignSpecError(
                f"unknown stage {stage!r}; expected one of {list(CANONICAL_STAGES)}"
            ) from None
        canonical = json.dumps(
            {
                "schema": SPEC_SCHEMA,
                "stage": stage,
                "deps": {name: getattr(self, name) for name in dependencies},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignSpec:
    """A named batch of verification jobs and how to shard them."""

    name: str
    jobs: Tuple[JobSpec, ...]
    workers: int = 2

    def __post_init__(self):
        if not self.name:
            raise CampaignSpecError("campaign needs a non-empty name")
        if not self.jobs:
            raise CampaignSpecError("campaign needs at least one job")
        if self.workers < 1:
            raise CampaignSpecError("workers must be at least 1")
        object.__setattr__(self, "jobs", tuple(self.jobs))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "workers": self.workers,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output."""
        schema = payload.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise CampaignSpecError(
                f"campaign spec schema {schema} not supported (expected {SPEC_SCHEMA})"
            )
        try:
            jobs = tuple(JobSpec.from_dict(job) for job in payload["jobs"])
            return cls(
                name=payload["name"],
                jobs=jobs,
                workers=payload.get("workers", 2),
            )
        except KeyError as exc:
            raise CampaignSpecError(f"campaign spec missing field {exc}") from exc

    def campaign_key(self) -> str:
        """Content hash identifying this campaign's *work*, not its sharding.

        Covers the schema version and every job (in order) but not the
        worker count or campaign name, so two submissions asking for the
        same verification work coalesce to one key even if they disagree
        about parallelism or labelling.  The service daemon uses this to
        deduplicate concurrent identical submissions onto one running job.
        """
        canonical = json.dumps(
            {"schema": SPEC_SCHEMA, "jobs": [job.to_dict() for job in self.jobs]},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def dumps(self) -> str:
        """Serialize to pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "CampaignSpec":
        """Parse a campaign from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(f"campaign spec is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CampaignSpecError("campaign spec must be a JSON object")
        return cls.from_dict(payload)

    def save(self, path: str) -> None:
        """Write the campaign spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Read a campaign spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())


def family_sweep(
    name: str = "family-sweep",
    registers: Sequence[int] = (2, 4),
    widths: Sequence[int] = (1, 2),
    depths: Sequence[int] = (3, 4, 5),
    latency_steps: Sequence[int] = (1,),
    styles: Sequence[str] = ("bypass", "blocking"),
    loadstore: Sequence[bool] = (False,),
    waits: Sequence[bool] = (False,),
    extra_archs: Sequence[str] = (),
    workers: int = 2,
    stages: Sequence[str] = CANONICAL_STAGES,
    workload_length: int = 48,
    workload_seed: int = 0,
    num_programs: int = 1,
    max_faults: int = 4,
) -> CampaignSpec:
    """A campaign over the parametric family grid (plus named extras).

    The default grid spans 24 configurations — every combination of
    register count, issue width, depth and scoreboard style — which is the
    acceptance-size sweep; widening any axis scales the campaign without
    further code.
    """
    configs: List[FamilyConfig] = generate_family(
        registers=registers,
        widths=widths,
        depths=depths,
        latency_steps=latency_steps,
        styles=styles,
        loadstore=loadstore,
        waits=waits,
    )
    arch_names = [config.name for config in configs] + list(extra_archs)
    jobs = tuple(
        JobSpec(
            arch=arch,
            stages=tuple(stages),
            workload_length=workload_length,
            workload_seed=workload_seed,
            num_programs=num_programs,
            max_faults=max_faults,
        )
        for arch in arch_names
    )
    return CampaignSpec(name=name, jobs=jobs, workers=workers)
