"""The end-to-end verification job one campaign worker executes.

For a single architecture this chains the whole reproduction flow:

``properties``
    the Section 3.1 preconditions (including property 3, the
    most-liberal/maximality pair) checked exhaustively with BDDs;
``derive``
    the symbolic fixed-point derivation of the maximum-performance
    interlock;
``maximality``
    the machine-checked Section 3.2 subsumption theorem;
``obligations``
    the derived contract — ``F_i∘MOE ↔ ¬MOE_i`` per stage — discharged
    through :meth:`~repro.checking.PropertyChecker.check_obligations`
    under the architecture's environment assumptions;
``faults``
    a fault-injection campaign: every injected bug must be caught by the
    generated assertions or the property checker;
``analysis``
    a simulated workload with assertions armed, stall classification (no
    unnecessary stalls allowed) and specification coverage.

Every stage is timed individually and reduced to JSON-ready details, so
results can land in the content-hashed store and cross processes without
pickling any symbolic state.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..analysis import classify_stalls, coverage_of
from ..archs import load_architecture
from ..assertions import monitor_trace, testbench_assertions
from ..bdd.serialize import ArtifactError
from ..checking import PropertyChecker
from ..faults import FaultCampaign, FaultInjector
from ..obs import Tracer, annotate, get_registry, record_kernel_stats, span
from ..obs.metrics import KERNEL_COUNTERS
from ..pipeline import ClosedFormInterlock, simulate
from ..spec import (
    build_functional_spec,
    check_all_properties,
    most_liberal_is_maximal,
    symbolic_most_liberal,
)
from ..spec.derivation import DerivationResult
from ..workloads import WorkloadGenerator, WorkloadProfile
from .spec import CANONICAL_STAGES, JobSpec

#: Schema of the serialized job result (part of the store's content key
#: indirectly via spec.SPEC_SCHEMA; bump both on incompatible changes).
RESULT_SCHEMA = 1


@dataclass
class StageResult:
    """Outcome of one verification stage of one job."""

    name: str
    ok: bool
    seconds: float
    details: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "ok": self.ok,
            "seconds": round(self.seconds, 6),
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StageResult":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            name=payload["name"],
            ok=bool(payload["ok"]),
            seconds=float(payload["seconds"]),
            details=dict(payload.get("details", {})),
        )


@dataclass
class JobResult:
    """Outcome of one whole verification job.

    ``store_stats`` carries a worker-side :class:`StoreStats` delta as a
    plain counter dict when the job executed in another process against
    its own store handle; the orchestrator folds it into the campaign
    tally.  It stays None for in-process execution, where the parent's
    store instance counted the traffic directly.  ``trace_spans`` (the
    job's finished spans, when tracing) and ``metrics`` (the worker's
    registry delta) travel home the same way and are likewise folded —
    and nulled — by the orchestrator before the result is stored.
    """

    job: JobSpec
    ok: bool
    seconds: float
    stages: List[StageResult] = field(default_factory=list)
    error: Optional[str] = None
    cached: bool = False
    store_stats: Optional[Dict[str, int]] = None
    trace_spans: Optional[List[Dict[str, Any]]] = None
    metrics: Optional[Dict[str, Any]] = None

    def stage(self, name: str) -> StageResult:
        """Look up a stage result by name (KeyError when absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"job has no stage {name!r}")

    def failed_stages(self) -> List[str]:
        """Names of the stages that did not pass."""
        return [stage.name for stage in self.stages if not stage.ok]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        payload = {
            "schema": RESULT_SCHEMA,
            "job": self.job.to_dict(),
            "ok": self.ok,
            "seconds": round(self.seconds, 6),
            "stages": [stage.as_dict() for stage in self.stages],
            "error": self.error,
        }
        if self.store_stats is not None:
            payload["store"] = dict(self.store_stats)
        if self.trace_spans is not None:
            payload["trace_spans"] = list(self.trace_spans)
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobResult":
        """Rebuild from :meth:`as_dict` output (ValueError on bad schema)."""
        schema = payload.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(f"job result schema {schema} not supported")
        return cls(
            job=JobSpec.from_dict(payload["job"]),
            ok=bool(payload["ok"]),
            seconds=float(payload["seconds"]),
            stages=[StageResult.from_dict(s) for s in payload.get("stages", [])],
            error=payload.get("error"),
            store_stats=payload.get("store"),
            trace_spans=payload.get("trace_spans"),
            metrics=payload.get("metrics"),
        )


# -- warm per-process architecture state -------------------------------------------

#: How many architectures' symbolic state one worker keeps live.  A warm
#: entry holds the loaded architecture, its functional spec and (after
#: the first job touches it) the derivation with its BDD manager, so a
#: campaign sweeping many jobs over few architectures pays the symbolic
#: setup once per worker instead of once per job.
_WARM_CAPACITY = 8

_WARM_STATE: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()


def _arch_state(arch: str) -> Dict[str, Any]:
    """The warm state for one architecture (LRU-cached per process).

    Everything cached here — architecture, spec, derivation — is a
    deterministic function of the architecture name, so reuse across
    jobs with different workload knobs is sound.
    """
    state = _WARM_STATE.get(arch)
    if state is None:
        architecture = load_architecture(arch)
        state = {
            "architecture": architecture,
            "spec": build_functional_spec(architecture),
        }
        _WARM_STATE[arch] = state
        while len(_WARM_STATE) > _WARM_CAPACITY:
            _WARM_STATE.popitem(last=False)
    else:
        _WARM_STATE.move_to_end(arch)
    return state


def clear_warm_state() -> None:
    """Drop all warm architecture state (frees the cached BDD managers)."""
    _WARM_STATE.clear()


def _ensure_derivation(state: Dict[str, Any], job: JobSpec, store: Optional[Any]):
    """The derivation later stages depend on, cheapest source first.

    Order of preference: the warm state (free), a stored binary artifact
    (milliseconds), a fresh fixed-point derivation (which is then dumped
    to the store, keyed by the ``derive`` stage's dependency hash, for
    every future job sharing this architecture).  Returns the derivation
    and where it came from (``"warm"``/``"artifact"``/``"computed"``).
    """
    if "derivation" in state:
        derivation = state["derivation"]
        if store is not None:
            # A warm worker pointed at a fresh store must still populate
            # it, or cold restarts would re-derive; the existence check
            # is not a lookup, so it does not skew the hit/miss tally.
            key = job.stage_key("derive")
            if not store.artifact_path(key).exists():
                try:
                    store.put_artifact(
                        key, derivation.to_artifact_bytes(include_covers=True)
                    )
                except (ValueError, OSError):
                    pass
        return derivation, "warm"
    spec = state["spec"]
    if store is not None:
        key = job.stage_key("derive")
        data = store.get_artifact(key)
        if data is not None:
            try:
                derivation = DerivationResult.from_artifact_bytes(spec, data)
            except ArtifactError:
                store.note_corrupt_artifact(key)
            else:
                state["derivation"] = derivation
                return derivation, "artifact"
    derivation = symbolic_most_liberal(spec)
    state["derivation"] = derivation
    if store is not None:
        try:
            store.put_artifact(
                job.stage_key("derive"),
                derivation.to_artifact_bytes(include_covers=True),
            )
        except (ValueError, OSError):
            pass
    return derivation, "computed"


# -- stage implementations ---------------------------------------------------------


def _stage_properties(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    report = check_all_properties(state["spec"])
    details = {check.name: check.holds for check in report.checks}
    return StageResult(
        name="properties", ok=report.all_hold(), seconds=0.0, details=details
    )


def _stage_derive(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    derivation, source = _ensure_derivation(state, job, store)
    details = {
        "iterations": derivation.iterations,
        "feed_forward": derivation.feed_forward,
        "moe_flags": len(state["spec"].moe_flags()),
        "inputs": len(state["spec"].input_signals()),
        "bdd_nodes": sum(derivation.bdd_sizes.values()),
        "source": source,
    }
    context = getattr(derivation, "context", None)
    if context is not None:
        # Kernel health of the derivation's manager (JSON-ready), so scale
        # problems show up in campaign reports instead of only in profiles.
        stats = context.manager.stats().as_dict()
        details["kernel"] = stats
        # Checkpoint delta against the warm state's previous reading: a
        # fresh derivation reports its absolute counters, a warm rerun
        # only what this job added to the long-lived manager.
        previous = state.get("kernel_checkpoint") or {}
        delta = {
            counter: stats[counter] - previous.get(counter, 0)
            for counter in KERNEL_COUNTERS
        }
        delta["live_nodes"] = stats["live_nodes"]
        delta["load_factor"] = stats["load_factor"]
        state["kernel_checkpoint"] = stats
        record_kernel_stats(delta)
        annotate(kernel=delta, source=source)
    return StageResult(name="derive", ok=True, seconds=0.0, details=details)


def _stage_maximality(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    derivation, _ = _ensure_derivation(state, job, store)
    ok = most_liberal_is_maximal(state["spec"], derivation)
    return StageResult(name="maximality", ok=ok, seconds=0.0, details={})


def _stage_obligations(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    spec = state["spec"]
    derivation, _ = _ensure_derivation(state, job, store)
    context = derivation.context
    moe_nodes = {moe: fn.node for moe, fn in derivation.moe_functions.items()}
    obligations = {}
    for clause in spec.clauses:
        condition = context.function(
            context.manager.compose_many(context.lift(clause.condition).node, moe_nodes)
        )
        obligations[clause.moe] = condition.iff(~derivation.moe_function(clause.moe))
    checker = PropertyChecker(spec, architecture=state["architecture"], backend="bdd")
    report = checker.check_obligations(obligations, name="derived-contract")
    details = {"obligations": len(report.results), "failing": report.failing_stages()}
    return StageResult(
        name="obligations", ok=report.all_hold(), seconds=0.0, details=details
    )


def _stage_faults(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    spec = state["spec"]
    architecture = state["architecture"]
    profile = WorkloadProfile(length=job.workload_length)
    injector = FaultInjector(spec, seed=job.workload_seed)
    faults = injector.standard_fault_set()[: job.max_faults]
    if not faults:
        return StageResult(
            name="faults", ok=True, seconds=0.0, details={"injected": 0}
        )
    campaign = FaultCampaign(
        architecture,
        spec,
        profile=profile,
        num_programs=job.num_programs,
        seed=job.workload_seed,
        max_cycles=job.workload_length * 8 + 100,
    )
    summary = campaign.run(faults)
    missed = summary.effective_total() - sum(
        1 for record in summary.records if not record.vacuous and record.detected_by_any
    )
    details = {
        "injected": summary.total(),
        "vacuous": summary.vacuous(),
        "detected_any": summary.detected_by_any(),
        "detected_simulation": summary.detected_by_simulation(),
        "detected_property": summary.detected_by_property_check(),
        "missed": missed,
    }
    return StageResult(name="faults", ok=missed == 0, seconds=0.0, details=details)


def _stage_analysis(
    state: Dict[str, Any], job: JobSpec, store: Optional[Any]
) -> StageResult:
    spec = state["spec"]
    architecture = state["architecture"]
    derivation, _ = _ensure_derivation(state, job, store)
    interlock = ClosedFormInterlock.from_derivation(derivation)
    program = WorkloadGenerator(architecture, seed=job.workload_seed).generate(
        WorkloadProfile(length=job.workload_length)
    )
    trace = simulate(architecture, interlock, program)
    monitor = monitor_trace(trace, testbench_assertions(spec))
    breakdown = classify_stalls(trace, spec, derivation=derivation)
    coverage = coverage_of(spec, [trace])
    details = {
        "cycles": trace.num_cycles(),
        "assertion_violations": len(monitor.violations),
        "hazards": trace.hazard_count(),
        "stall_cycles": breakdown.total_stalls(),
        "unnecessary_stalls": breakdown.total_unnecessary(),
        "disjunct_coverage": round(coverage.overall_disjunct_coverage, 4),
    }
    ok = (
        monitor.clean()
        and trace.hazard_count() == 0
        and breakdown.total_unnecessary() == 0
    )
    return StageResult(name="analysis", ok=ok, seconds=0.0, details=details)


_STAGE_IMPLS: Dict[
    str, Callable[[Dict[str, Any], JobSpec, Optional[Any]], StageResult]
] = {
    "properties": _stage_properties,
    "derive": _stage_derive,
    "maximality": _stage_maximality,
    "obligations": _stage_obligations,
    "faults": _stage_faults,
    "analysis": _stage_analysis,
}


def run_verification_job(
    job: JobSpec,
    store: Optional[Any] = None,
    incremental: bool = False,
) -> JobResult:
    """Run one job's stages in canonical order and collect the outcome.

    A stage that raises is recorded as failed with the traceback in the
    job error and aborts the remaining stages; the orchestrator keeps the
    campaign going with the other jobs.

    With a ``store`` (any object with the :class:`ResultStore` artifact
    and stage methods), derivations are loaded from / dumped to binary
    artifacts keyed by dependency hash, and every passing stage's result
    is recorded under its own :meth:`JobSpec.stage_key`.  With
    ``incremental`` additionally set, stages whose dependency hash
    already has a passing stored result are *not* re-executed — their
    stored result is replayed with ``details["from_store"] = True`` —
    which is what makes editing one workload knob re-run only the stages
    that read it.
    """
    start = time.perf_counter()
    stages: List[StageResult] = []
    try:
        state = _arch_state(job.arch)
    except Exception:
        return JobResult(
            job=job,
            ok=False,
            seconds=time.perf_counter() - start,
            stages=stages,
            error=traceback.format_exc(),
        )
    error: Optional[str] = None
    registry = get_registry()
    for name in CANONICAL_STAGES:
        if name not in job.stages:
            continue
        stage_start = time.perf_counter()
        with span(name, kind="stage", arch=job.arch) as stage_span:
            if incremental and store is not None:
                cached = store.get_stage(name, job.stage_key(name))
                if cached is not None and cached.ok:
                    details = dict(cached.details)
                    details["from_store"] = True
                    seconds = time.perf_counter() - stage_start
                    stages.append(
                        StageResult(
                            name=name, ok=True, seconds=seconds, details=details
                        )
                    )
                    stage_span.annotate(from_store=True)
                    registry.observe("repro_stage_seconds", seconds, stage=name)
                    continue
            try:
                result = _STAGE_IMPLS[name](state, job, store)
                result.seconds = time.perf_counter() - stage_start
            except Exception:
                result = StageResult(
                    name=name, ok=False, seconds=time.perf_counter() - stage_start
                )
                error = traceback.format_exc()
            stage_span.annotate(ok=result.ok)
            registry.observe("repro_stage_seconds", result.seconds, stage=name)
        stages.append(result)
        if error is None and result.ok and store is not None:
            try:
                store.put_stage(job.stage_key(name), result)
            except OSError:
                pass
        if error is not None:
            break
    ok = error is None and all(stage.ok for stage in stages)
    seconds = time.perf_counter() - start
    registry.observe("repro_job_seconds", seconds)
    registry.inc("repro_campaign_jobs_total", outcome="ok" if ok else "failed")
    return JobResult(
        job=job,
        ok=ok,
        seconds=seconds,
        stages=stages,
        error=error,
    )


def run_traced_job(
    job: JobSpec,
    store: Optional[Any] = None,
    incremental: bool = False,
    trace: Optional[Dict[str, Any]] = None,
) -> JobResult:
    """Run one job, optionally under a trace session.

    ``trace`` is None (plain :func:`run_verification_job`) or a dict with
    the campaign's correlation ``id`` and optionally the ``parent`` span
    id — exactly what the orchestrator puts in the worker payload.  When
    traced, the job runs inside a fresh :class:`~repro.obs.Tracer` whose
    finished spans land on ``JobResult.trace_spans`` for the parent to
    export and merge.
    """
    if not trace:
        return run_verification_job(job, store=store, incremental=incremental)
    tracer = Tracer(trace_id=trace.get("id"), root_parent=trace.get("parent"))
    with tracer.activate():
        with span("job", arch=job.arch, stages=list(job.stages)) as job_span:
            result = run_verification_job(job, store=store, incremental=incremental)
            job_span.annotate(ok=result.ok)
    get_registry().inc("repro_trace_spans_total", len(tracer.spans))
    result.trace_spans = tracer.spans
    return result
