"""Aggregate pass/fail/timing report of a verification campaign."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis import rate, render_table, summarize_timings
from .runner import JobResult
from .store import StoreStats

REPORT_SCHEMA = 1


@dataclass
class CampaignReport:
    """Everything a campaign run produced, in job order.

    ``store_stats`` is the campaign's aggregate store traffic — the
    parent store's delta plus every worker's — or None when the campaign
    ran without a store.  ``trace`` is present only for traced runs: the
    correlation id plus per-span-name rollups (count, total and max
    seconds) over every span the campaign and its workers recorded.
    """

    name: str
    results: List[JobResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    store_stats: Optional[StoreStats] = None
    trace: Optional[Dict[str, Any]] = None

    # -- aggregation -------------------------------------------------------------

    def total(self) -> int:
        """Number of jobs in the campaign."""
        return len(self.results)

    def passed(self) -> List[JobResult]:
        """Jobs whose every stage held."""
        return [result for result in self.results if result.ok]

    def failed(self) -> List[JobResult]:
        """Jobs with a failing stage or an error."""
        return [result for result in self.results if not result.ok]

    def errored(self) -> List[JobResult]:
        """The subset of failures that crashed rather than refuted."""
        return [result for result in self.results if result.error is not None]

    def cached(self) -> List[JobResult]:
        """Jobs answered by the result store instead of fresh work."""
        return [result for result in self.results if result.cached]

    def all_ok(self) -> bool:
        """True when every job passed."""
        return all(result.ok for result in self.results)

    def stage_pass_rates(self) -> Dict[str, str]:
        """Per-stage pass rate over the jobs that ran the stage."""
        totals: Dict[str, int] = {}
        passes: Dict[str, int] = {}
        for result in self.results:
            for stage in result.stages:
                totals[stage.name] = totals.get(stage.name, 0) + 1
                if stage.ok:
                    passes[stage.name] = passes.get(stage.name, 0) + 1
        return {
            name: rate(passes.get(name, 0), totals[name]) for name in totals
        }

    def timing_summary(self) -> Dict[str, float]:
        """Job-seconds statistics over the fresh (non-cached) jobs."""
        return summarize_timings(
            [result.seconds for result in self.results if not result.cached]
        )

    def cache_hits(self) -> int:
        """Store lookups of any kind answered from disk."""
        if self.store_stats is None:
            return 0
        s = self.store_stats
        return s.hits + s.artifact_hits + s.stage_hits

    def cache_misses(self) -> int:
        """Store lookups of any kind that required fresh work."""
        if self.store_stats is None:
            return 0
        s = self.store_stats
        return s.misses + s.artifact_misses + s.stage_misses

    def cache_corrupt(self) -> int:
        """Store entries that existed but failed validation."""
        return 0 if self.store_stats is None else self.store_stats.corrupt

    # -- rendering ---------------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """Per-job table rows."""
        rows = []
        for result in self.results:
            failing = ",".join(result.failed_stages())
            if result.error is not None and not failing:
                failing = "(crashed)"
            rows.append(
                {
                    "architecture": result.job.arch,
                    "ok": "yes" if result.ok else "NO",
                    "cached": "yes" if result.cached else "-",
                    "seconds": f"{result.seconds:.3f}",
                    "failing stages": failing or "-",
                }
            )
        return rows

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready aggregate (written by ``repro campaign --report``)."""
        payload = {
            "schema": REPORT_SCHEMA,
            "name": self.name,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "total": self.total(),
            "passed": len(self.passed()),
            "failed": len(self.failed()),
            "errored": len(self.errored()),
            "cached": len(self.cached()),
            "cache_hits": self.cache_hits(),
            "cache_misses": self.cache_misses(),
            "cache_corrupt": self.cache_corrupt(),
            "stage_pass_rates": self.stage_pass_rates(),
            "timing": self.timing_summary(),
            "jobs": [result.as_dict() for result in self.results],
        }
        if self.store_stats is not None:
            payload["cache"] = self.store_stats.as_dict()
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    def describe(self) -> str:
        """Multi-line human-readable campaign summary."""
        fresh = self.total() - len(self.cached())
        timing = self.timing_summary()
        lines = [
            f"Campaign {self.name!r}: {rate(len(self.passed()), self.total())} passed, "
            f"{len(self.cached())} cached, {fresh} fresh, "
            f"{self.workers} workers, wall {self.wall_seconds:.3f}s",
        ]
        if fresh:
            lines.append(
                f"  fresh job seconds: total {timing['total']:.3f}, "
                f"mean {timing['mean']:.3f}, max {timing['max']:.3f}"
            )
        if self.store_stats is not None:
            s = self.store_stats
            lines.append(
                f"  store: jobs {s.hits}/{s.hits + s.misses} hit, "
                f"artifacts {s.artifact_hits}/{s.artifact_hits + s.artifact_misses} hit, "
                f"stages {s.stage_hits}/{s.stage_hits + s.stage_misses} hit, "
                f"{s.corrupt} corrupt"
            )
        for stage, stage_rate in sorted(self.stage_pass_rates().items()):
            lines.append(f"  stage {stage}: {stage_rate}")
        if self.trace is not None:
            rollups = self.trace.get("rollups", {})
            top = sorted(
                rollups.items(),
                key=lambda item: item[1].get("seconds_total", 0.0),
                reverse=True,
            )[:5]
            hot = ", ".join(
                f"{name} {entry['seconds_total']:.3f}s/{entry['count']}"
                for name, entry in top
            )
            lines.append(
                f"  trace {self.trace.get('trace_id')}: "
                f"{sum(e.get('count', 0) for e in rollups.values())} spans"
                + (f"; hottest: {hot}" if hot else "")
            )
        lines.append(render_table(self.rows()))
        return "\n".join(lines)
