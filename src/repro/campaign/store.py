"""Content-hashed result and artifact store for verification campaigns.

Each verified configuration lands in one file named by the SHA-256 of
its canonical job specification (:meth:`JobSpec.job_key`), so a re-run
of the same campaign finds every unchanged job by pure content address —
no database, no index to corrupt, safe to merge across machines by
copying files.  Only passing results are cached by default: a failure
should be re-examined, not remembered.

Beyond whole-job JSON verdicts the store also holds *derived artifacts*:

``artifact-<stage_key>.bdd``
    binary BDD artifacts (:mod:`repro.bdd.serialize`) — today the
    closed-form derivation per architecture, keyed by the ``derive``
    stage's dependency hash so every job sharing the architecture shares
    the artifact;
``stage-<stage_key>.json``
    individual stage results keyed by the hash of only the job fields
    that stage reads (:data:`~repro.campaign.spec.STAGE_DEPENDENCIES`),
    which is what makes campaigns *incremental*: edit one workload knob
    and only the stages that depend on it lose their cache entries;
``trace-<job_key>.ndjson``
    one span per line for jobs executed under tracing
    (``REPRO_TRACE=1`` / ``--trace``; see :mod:`repro.obs`) — telemetry
    sitting next to the result it explains, rendered by ``repro trace``.

Every read and write is tallied in :class:`StoreStats` so campaign
reports can surface exactly how much work the cache absorbed, including
corrupt entries (checksum or schema mismatches), which are counted and
then treated as plain misses.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..obs import dump_ndjson, load_ndjson
from .runner import JobResult, StageResult
from .spec import JobSpec

_ARTIFACT_PREFIX = "artifact-"
_STAGE_PREFIX = "stage-"
_TRACE_PREFIX = "trace-"


@dataclass
class StoreStats:
    """Running tally of store traffic, one counter pair per entry kind.

    ``corrupt`` counts entries of any kind that existed but failed
    validation (bad JSON, checksum mismatch, schema drift, key
    collision); every corrupt read is *also* a miss for its kind, so
    hits + misses always equals the number of lookups.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    stage_hits: int = 0
    stage_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter snapshot."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, before: "StoreStats") -> "StoreStats":
        """Counter deltas since an earlier snapshot."""
        return StoreStats(
            **{
                f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in fields(self)
            }
        )

    def add(self, other: "StoreStats") -> None:
        """Accumulate another tally (e.g. a worker's delta) in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "StoreStats":
        return StoreStats(**self.as_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StoreStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in known})


class ResultStore:
    """Directory of content-addressed results, stages and BDD artifacts.

    Concurrency: writes are atomic (``mkstemp`` + ``os.replace``) and
    entries are immutable once written, so any number of processes and
    threads may read while others write — a reader sees either the
    complete entry or a miss, never a torn file.  The in-memory
    :class:`StoreStats` tally is guarded by a lock so one handle can be
    shared across threads (the service daemon's probe/runner threads do
    exactly that); separate *handles* on the same directory keep separate
    tallies, which is why workers ship their deltas home explicitly.

    Example — the cache as seen by a campaign::

        from repro.campaign import JobSpec, ResultStore, run_verification_job

        store = ResultStore(".campaign-results")
        job = JobSpec(arch="fam-r2w1d3s1-bypass")
        if store.get(job) is None:            # miss: verify and persist
            store.put(job, run_verification_job(job, store=store))
        assert store.get(job).ok              # hit: served from disk
        print(store.summary())                # entry counts + hit/miss tally
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        #: Guards ``stats`` mutations; file operations need no lock (see
        #: the class docstring's concurrency contract).
        self._stats_lock = threading.Lock()

    # -- whole-job results -------------------------------------------------------

    def path_for(self, job: JobSpec) -> Path:
        """Where this job's result lives (whether or not it exists yet)."""
        return self.root / f"{job.job_key()}.json"

    def get(self, job: JobSpec) -> Optional[JobResult]:
        """The stored result for a job, or None when absent or unreadable.

        A corrupt or schema-incompatible file is counted and treated as
        a miss — the job simply re-runs and overwrites it.
        """
        path = self.path_for(job)
        if not path.exists():
            with self._stats_lock:
                self.stats.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = JobResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            with self._stats_lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            return None
        # Hash collisions aside, the stored job must equal the requested
        # one; a mismatch means the file was tampered with or the hashing
        # scheme changed, and either way the cache must not answer.
        if result.job.to_dict() != job.to_dict():
            with self._stats_lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return result

    def put(self, job: JobSpec, result: JobResult) -> Path:
        """Persist a job result atomically; returns the file path."""
        path = self.path_for(job)
        self._write_json(path, result.as_dict())
        return path

    # -- binary BDD artifacts ----------------------------------------------------

    def artifact_path(self, key: str) -> Path:
        """Where the artifact for a stage key lives."""
        return self.root / f"{_ARTIFACT_PREFIX}{key}.bdd"

    def get_artifact(self, key: str) -> Optional[bytes]:
        """Raw artifact bytes for a stage key, or None when absent.

        Integrity is the *artifact format's* job (its trailing SHA-256);
        callers that hit :class:`~repro.bdd.serialize.ArtifactError`
        while parsing should report it via :meth:`note_corrupt_artifact`
        so the tally stays honest.
        """
        path = self.artifact_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            with self._stats_lock:
                self.stats.artifact_misses += 1
            return None
        with self._stats_lock:
            self.stats.artifact_hits += 1
        return data

    def put_artifact(self, key: str, data: bytes) -> Path:
        """Persist artifact bytes atomically; returns the file path."""
        path = self.artifact_path(key)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def note_corrupt_artifact(self, key: str) -> None:
        """Record that a previously-hit artifact failed to parse.

        Converts the optimistic hit into a corrupt miss and deletes the
        bad file so the next run rebuilds it cleanly.
        """
        with self._stats_lock:
            self.stats.artifact_hits = max(0, self.stats.artifact_hits - 1)
            self.stats.artifact_misses += 1
            self.stats.corrupt += 1
        try:
            self.artifact_path(key).unlink()
        except OSError:
            pass

    def artifact_keys(self) -> List[str]:
        """Stage keys of every stored binary artifact."""
        return sorted(
            path.stem[len(_ARTIFACT_PREFIX):]
            for path in self.root.glob(f"{_ARTIFACT_PREFIX}*.bdd")
        )

    # -- per-stage results -------------------------------------------------------

    def stage_path(self, key: str) -> Path:
        """Where the stage result for a dependency hash lives."""
        return self.root / f"{_STAGE_PREFIX}{key}.json"

    def get_stage(self, stage: str, key: str) -> Optional[StageResult]:
        """A cached stage result, or None when absent/corrupt/mismatched."""
        path = self.stage_path(key)
        if not path.exists():
            with self._stats_lock:
                self.stats.stage_misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = StageResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            with self._stats_lock:
                self.stats.corrupt += 1
                self.stats.stage_misses += 1
            return None
        if result.name != stage:
            with self._stats_lock:
                self.stats.corrupt += 1
                self.stats.stage_misses += 1
            return None
        with self._stats_lock:
            self.stats.stage_hits += 1
        return result

    def put_stage(self, key: str, result: StageResult) -> Path:
        """Persist one stage's result atomically; returns the file path."""
        path = self.stage_path(key)
        self._write_json(path, result.as_dict())
        return path

    def stage_keys(self) -> List[str]:
        """Dependency hashes of every stored per-stage result."""
        return sorted(
            path.stem[len(_STAGE_PREFIX):]
            for path in self.root.glob(f"{_STAGE_PREFIX}*.json")
        )

    # -- NDJSON job traces -------------------------------------------------------

    def trace_path(self, key: str) -> Path:
        """Where the span trace for a job key lives."""
        return self.root / f"{_TRACE_PREFIX}{key}.ndjson"

    def put_trace(self, key: str, spans: List[Dict[str, Any]]) -> Path:
        """Persist a job's finished spans atomically as NDJSON.

        Traces are telemetry, not cache entries: they are not consulted
        when answering jobs and do not participate in the hit/miss tally.
        """
        path = self.trace_path(key)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(dump_ndjson(spans))
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def get_trace(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """A job's stored spans, or None when absent or unparseable."""
        path = self.trace_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return load_ndjson(text)
        except ValueError:
            return None

    def trace_keys(self) -> List[str]:
        """Job keys of every stored span trace."""
        return sorted(
            path.stem[len(_TRACE_PREFIX):]
            for path in self.root.glob(f"{_TRACE_PREFIX}*.ndjson")
        )

    # -- store-wide --------------------------------------------------------------

    def keys(self) -> List[str]:
        """Content hashes of whole-job results currently present."""
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(_STAGE_PREFIX)
        )

    def __len__(self) -> int:
        return len(self.keys())

    def stats_snapshot(self) -> StoreStats:
        """A consistent copy of the traffic tally (safe across threads)."""
        with self._stats_lock:
            return self.stats.copy()

    def disk_usage(self) -> Dict[str, int]:
        """On-disk byte totals per entry kind (plus the grand ``total``).

        One ``scandir`` pass over the store directory; files that vanish
        mid-scan (another process replacing a temp file) are skipped.
        ``total`` counts every regular file in the directory — including
        leaked ``.part`` temp files — so it matches what ``du`` reports
        and what an operator has to budget for.
        """
        usage = {"jobs": 0, "artifacts": 0, "stages": 0, "traces": 0, "total": 0}
        with os.scandir(self.root) as entries:
            for entry in entries:
                try:
                    if not entry.is_file(follow_symlinks=False):
                        continue
                    size = entry.stat(follow_symlinks=False).st_size
                except OSError:
                    continue
                usage["total"] += size
                name = entry.name
                if name.startswith(_ARTIFACT_PREFIX) and name.endswith(".bdd"):
                    usage["artifacts"] += size
                elif name.startswith(_STAGE_PREFIX) and name.endswith(".json"):
                    usage["stages"] += size
                elif name.startswith(_TRACE_PREFIX) and name.endswith(".ndjson"):
                    usage["traces"] += size
                elif name.endswith(".json"):
                    usage["jobs"] += size
        return usage

    def summary(self) -> Dict[str, Any]:
        """JSON-ready telemetry: entry counts, byte totals, traffic tally.

        This is what the service daemon's ``GET /v1/store`` endpoint
        returns; entry counts and byte totals are re-scanned on every
        call so they reflect writes made by worker processes too, while
        the ``stats`` tally covers only this handle's own traffic.
        """
        return {
            "root": str(self.root),
            "entries": {
                "jobs": len(self.keys()),
                "artifacts": len(self.artifact_keys()),
                "stages": len(self.stage_keys()),
                "traces": len(self.trace_keys()),
            },
            "bytes": self.disk_usage(),
            "stats": self.stats_snapshot().as_dict(),
        }

    def clear(self) -> int:
        """Delete every stored entry of any kind; returns how many."""
        removed = 0
        patterns = (
            "*.json",
            f"{_ARTIFACT_PREFIX}*.bdd",
            f"{_TRACE_PREFIX}*.ndjson",
        )
        for pattern in patterns:
            for path in self.root.glob(pattern):
                path.unlink()
                removed += 1
        return removed

    def _write_json(self, path: Path, payload: Dict[str, Any]) -> None:
        # The ".part" suffix keeps a leaked temp file (worker SIGKILLed
        # between mkstemp and replace) out of keys()/len()'s "*.json" glob.
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, indent=2, sort_keys=True)
                stream.write("\n")
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
