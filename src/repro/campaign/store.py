"""Content-hashed per-job JSON result store.

Each verified configuration lands in one file named by the SHA-256 of
its canonical job specification (:meth:`JobSpec.job_key`), so a re-run
of the same campaign finds every unchanged job by pure content address —
no database, no index to corrupt, safe to merge across machines by
copying files.  Only passing results are cached by default: a failure
should be re-examined, not remembered.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional

from .runner import JobResult
from .spec import JobSpec


class ResultStore:
    """Directory of per-job result files keyed by job content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job: JobSpec) -> Path:
        """Where this job's result lives (whether or not it exists yet)."""
        return self.root / f"{job.job_key()}.json"

    def get(self, job: JobSpec) -> Optional[JobResult]:
        """The stored result for a job, or None when absent or unreadable.

        A corrupt or schema-incompatible file is treated as a miss — the
        job simply re-runs and overwrites it.
        """
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = JobResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        # Hash collisions aside, the stored job must equal the requested
        # one; a mismatch means the file was tampered with or the hashing
        # scheme changed, and either way the cache must not answer.
        if result.job.to_dict() != job.to_dict():
            return None
        return result

    def put(self, job: JobSpec, result: JobResult) -> Path:
        """Persist a job result atomically; returns the file path."""
        path = self.path_for(job)
        # The ".part" suffix keeps a leaked temp file (worker SIGKILLed
        # between mkstemp and replace) out of keys()/len()'s "*.json" glob.
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(result.as_dict(), stream, indent=2, sort_keys=True)
                stream.write("\n")
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> List[str]:
        """Content hashes currently present in the store."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
