"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Metrics are *always on* — an increment is a couple of dict operations
under a lock — so the service's ``GET /v1/metrics`` endpoint has data
even when span tracing is disabled.  Campaign workers run in forked
processes with their own registry; :meth:`MetricsRegistry.delta_since`
captures what a job added and the parent folds the delta back with
:meth:`MetricsRegistry.fold`, mirroring how ``StoreStats`` diffs travel
home in ``JobResult``.

Rendering targets both machine shapes the service exposes:
:meth:`MetricsRegistry.samples` (JSON) and
:meth:`MetricsRegistry.render_prometheus` (text exposition format,
version 0.0.4 — histograms emit cumulative ``_bucket``/``_sum``/
``_count`` series).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

#: Default histogram buckets (seconds).  Spanning 1 ms to 2 min covers
#: everything from a cached store read to a full-size family campaign.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.25,
    1.0,
    5.0,
    30.0,
    120.0,
)

#: HELP text served with the Prometheus exposition, keyed by metric name.
HELP: Dict[str, str] = {
    "repro_kernel_cache_hits_total": "BDD apply/compose/ISOP cache hits",
    "repro_kernel_cache_misses_total": "BDD apply/compose/ISOP cache misses",
    "repro_kernel_gc_runs_total": "BDD garbage-collection sweeps",
    "repro_kernel_gc_reclaimed_total": "BDD nodes reclaimed by garbage collection",
    "repro_kernel_reorder_runs_total": "BDD variable-reordering (sifting) passes",
    "repro_kernel_reorder_swaps_total": "adjacent-level swaps performed while sifting",
    "repro_kernel_live_nodes": "live BDD nodes at the last kernel checkpoint",
    "repro_kernel_load_factor": "unique-table load factor at the last kernel checkpoint",
    "repro_store_reads_total": "result-store reads by entry kind and hit/miss outcome",
    "repro_store_corrupt_total": "result-store entries dropped as corrupt",
    "repro_campaign_runs_total": "campaigns executed by this process",
    "repro_campaign_jobs_total": "campaign jobs by outcome (ok/failed/cached)",
    "repro_job_seconds": "wall-clock seconds per verification job",
    "repro_stage_seconds": "wall-clock seconds per pipeline stage",
    "repro_service_submissions_total": "service submissions accepted",
    "repro_service_coalesced_total": "submissions coalesced onto an in-flight duplicate",
    "repro_service_cache_answers_total": "submissions answered terminally from the store",
    "repro_service_jobs_total": "service jobs reaching a terminal state",
    "repro_service_queue_wait_seconds": "queued-to-running latency per service job",
    "repro_service_queue_depth": "jobs currently queued",
    "repro_service_jobs_running": "jobs currently executing",
    "repro_trace_spans_total": "spans recorded by the tracing layer",
}


def _labels_key(labels: Dict[str, Any]) -> str:
    return ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))


class MetricsRegistry:
    """Thread-safe counters, gauges and histograms.

    Samples are keyed by metric name plus a sorted label rendering, so
    ``inc("repro_stage_seconds", stage="derive")`` and the Prometheus
    output agree on identity.  Counter and histogram deltas fold across
    processes; gauges are point-in-time and never fold.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> [name, labels, value] for counters/gauges;
        # key -> [name, labels, {"buckets": [...], "counts": [...], "sum": s, "count": n}]
        self._counters: Dict[str, List[Any]] = {}
        self._gauges: Dict[str, List[Any]] = {}
        self._histograms: Dict[str, List[Any]] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> str:
        if not labels:
            return name
        return f"{name}{{{_labels_key(labels)}}}"

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` to a counter (created at zero on first use)."""
        key = self._key(name, labels)
        with self._lock:
            entry = self._counters.get(key)
            if entry is None:
                self._counters[key] = [name, labels, amount]
            else:
                entry[2] += amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        key = self._key(name, labels)
        with self._lock:
            self._gauges[key] = [name, labels, value]

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Record ``value`` into a fixed-bucket histogram."""
        key = self._key(name, labels)
        with self._lock:
            entry = self._histograms.get(key)
            if entry is None:
                state = {
                    "buckets": list(buckets),
                    "counts": [0] * (len(buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                entry = [name, labels, state]
                self._histograms[key] = entry
            state = entry[2]
            state["counts"][bisect_left(state["buckets"], value)] += 1
            state["sum"] += value
            state["count"] += 1

    # -- snapshots, deltas, folding ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A deep copy of the registry, suitable for later ``delta_since``."""
        with self._lock:
            return {
                "counters": {k: [e[0], dict(e[1]), e[2]] for k, e in self._counters.items()},
                "gauges": {k: [e[0], dict(e[1]), e[2]] for k, e in self._gauges.items()},
                "histograms": {
                    k: [
                        e[0],
                        dict(e[1]),
                        {
                            "buckets": list(e[2]["buckets"]),
                            "counts": list(e[2]["counts"]),
                            "sum": e[2]["sum"],
                            "count": e[2]["count"],
                        },
                    ]
                    for k, e in self._histograms.items()
                },
            }

    def delta_since(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """What counters/histograms gained since ``before`` (a snapshot).

        Gauges are excluded — they are point-in-time readings of the
        process that set them and do not transfer.  Zero entries are
        dropped so worker payloads stay small.
        """
        now = self.snapshot()
        counters: Dict[str, List[Any]] = {}
        for key, (name, labels, value) in now["counters"].items():
            prior = before.get("counters", {}).get(key)
            gained = value - (prior[2] if prior else 0)
            if gained:
                counters[key] = [name, labels, gained]
        histograms: Dict[str, List[Any]] = {}
        for key, (name, labels, state) in now["histograms"].items():
            prior = before.get("histograms", {}).get(key)
            prior_counts = prior[2]["counts"] if prior else [0] * len(state["counts"])
            counts = [a - b for a, b in zip(state["counts"], prior_counts)]
            count = state["count"] - (prior[2]["count"] if prior else 0)
            if count:
                histograms[key] = [
                    name,
                    labels,
                    {
                        "buckets": state["buckets"],
                        "counts": counts,
                        "sum": state["sum"] - (prior[2]["sum"] if prior else 0.0),
                        "count": count,
                    },
                ]
        return {"counters": counters, "histograms": histograms}

    def fold(self, delta: Dict[str, Any]) -> None:
        """Fold a worker's ``delta_since`` payload into this registry."""
        for key, (name, labels, gained) in delta.get("counters", {}).items():
            with self._lock:
                entry = self._counters.get(key)
                if entry is None:
                    self._counters[key] = [name, dict(labels), gained]
                else:
                    entry[2] += gained
        for key, (name, labels, state) in delta.get("histograms", {}).items():
            with self._lock:
                entry = self._histograms.get(key)
                if entry is None:
                    self._histograms[key] = [
                        name,
                        dict(labels),
                        {
                            "buckets": list(state["buckets"]),
                            "counts": list(state["counts"]),
                            "sum": state["sum"],
                            "count": state["count"],
                        },
                    ]
                else:
                    mine = entry[2]
                    if mine["buckets"] != list(state["buckets"]):
                        # Bucket layouts disagree (version skew across
                        # processes): keep sum/count, drop per-bucket detail.
                        mine["sum"] += state["sum"]
                        mine["count"] += state["count"]
                        continue
                    mine["counts"] = [a + b for a, b in zip(mine["counts"], state["counts"])]
                    mine["sum"] += state["sum"]
                    mine["count"] += state["count"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- rendering ------------------------------------------------------

    def samples(self) -> List[Dict[str, Any]]:
        """Flat JSON rendering: one dict per sample, sorted by key."""
        out: List[Dict[str, Any]] = []
        snap = self.snapshot()
        for kind in ("counters", "gauges"):
            for _, (name, labels, value) in sorted(snap[kind].items()):
                out.append(
                    {
                        "name": name,
                        "type": "counter" if kind == "counters" else "gauge",
                        "labels": labels,
                        "value": value,
                    }
                )
        for _, (name, labels, state) in sorted(snap["histograms"].items()):
            out.append(
                {
                    "name": name,
                    "type": "histogram",
                    "labels": labels,
                    "buckets": state["buckets"],
                    "counts": state["counts"],
                    "sum": round(state["sum"], 6),
                    "count": state["count"],
                }
            )
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        snap = self.snapshot()
        lines: List[str] = []
        emitted_header = set()

        def header(name: str, mtype: str) -> None:
            if name in emitted_header:
                return
            emitted_header.add(name)
            help_text = HELP.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")

        def fmt(value: float) -> str:
            if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return repr(value)

        for _, (name, labels, value) in sorted(snap["counters"].items()):
            header(name, "counter")
            suffix = f"{{{_labels_key(labels)}}}" if labels else ""
            lines.append(f"{name}{suffix} {fmt(value)}")
        for _, (name, labels, value) in sorted(snap["gauges"].items()):
            header(name, "gauge")
            suffix = f"{{{_labels_key(labels)}}}" if labels else ""
            lines.append(f"{name}{suffix} {fmt(value)}")
        for _, (name, labels, state) in sorted(snap["histograms"].items()):
            header(name, "histogram")
            cumulative = 0
            for bound, count in zip(state["buckets"], state["counts"]):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = fmt(float(bound))
                lines.append(f"{name}_bucket{{{_labels_key(bucket_labels)}}} {cumulative}")
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(f"{name}_bucket{{{_labels_key(bucket_labels)}}} {state['count']}")
            suffix = f"{{{_labels_key(labels)}}}" if labels else ""
            lines.append(f"{name}_sum{suffix} {round(state['sum'], 6)}")
            lines.append(f"{name}_count{suffix} {state['count']}")
        return "\n".join(lines) + "\n" if lines else ""


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (workers fold into the parent's)."""
    return _REGISTRY


# -- kernel checkpoints -----------------------------------------------

KERNEL_COUNTERS = (
    "cache_hits",
    "cache_misses",
    "gc_runs",
    "gc_reclaimed",
    "reorder_runs",
    "reorder_swaps",
)


class KernelWatch:
    """Stats-delta hook over a ``BddManager``.

    Snapshots ``manager.stats()`` at construction; :meth:`delta` reports
    what the monotone counters (cache traffic, GC sweeps, reorder
    passes) gained since, plus the current live-node count and
    unique-table load factor.  Used at pipeline checkpoints to annotate
    the open span and feed the kernel metrics without the manager
    knowing about either.
    """

    def __init__(self, manager: Any):
        self.manager = manager
        self._before = manager.stats().as_dict()

    def rebase(self, stats: Optional[Dict[str, Any]] = None) -> None:
        """Reset the baseline (e.g. per job against a warm manager)."""
        self._before = stats if stats is not None else self.manager.stats().as_dict()

    def delta(self) -> Dict[str, Any]:
        after = self.manager.stats().as_dict()
        out = {k: after[k] - self._before.get(k, 0) for k in KERNEL_COUNTERS}
        out["live_nodes"] = after["live_nodes"]
        out["load_factor"] = after["load_factor"]
        return out


def record_kernel_stats(delta: Dict[str, Any], registry: Optional[MetricsRegistry] = None) -> None:
    """Fold a :class:`KernelWatch` delta into the kernel metrics."""
    reg = registry if registry is not None else _REGISTRY
    for counter in KERNEL_COUNTERS:
        gained = delta.get(counter, 0)
        if gained:
            reg.inc(f"repro_kernel_{counter}_total", gained)
    if "live_nodes" in delta:
        reg.set_gauge("repro_kernel_live_nodes", delta["live_nodes"])
    if "load_factor" in delta:
        reg.set_gauge("repro_kernel_load_factor", delta["load_factor"])
