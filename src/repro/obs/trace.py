"""Structured span tracing with cross-process correlation ids.

A *span* is a named, timed region of work.  Finished spans are plain
dicts (JSON- and NDJSON-ready)::

    {"trace": "t-1f3a9c2b77d04e55", "id": "a1b2-1", "parent": None,
     "name": "derive", "at": 1754500000.123456, "seconds": 0.412345,
     "pid": 4242, "ok": True, "attrs": {"arch": "fam-r2w1d3s1-bypass"}}

``trace`` is the correlation id shared by every span of one campaign,
across the parent orchestrator and every forked worker.  ``at`` is a
wall-clock timestamp (``time.time()``) so spans from different
processes align on one waterfall; ``seconds`` is measured with
``time.perf_counter()`` pairs, which on Linux read the system-wide
CLOCK_MONOTONIC.

Spans are recorded only while a :class:`Tracer` is *active* on the
current thread.  :func:`span` with no active tracer returns a shared
no-op context manager — the instrumentation left in stage and kernel
code costs one thread-local attribute lookup when tracing is off.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

TRACE_SCHEMA = 1

_TLS = threading.local()

#: Process-wide span id source, shared by every tracer: a job tracer and
#: the campaign tracer in the same process must never mint the same id
#: (the pid prefix keeps forked workers distinct).  ``itertools.count``
#: is atomic under the GIL.
_SPAN_IDS = itertools.count(1)


def tracing_enabled() -> bool:
    """Whether span collection is requested via the environment.

    Late-binding, like ``REPRO_SANITIZE``: the variable is consulted at
    each call, so tests and the CLI can flip it without reimporting.
    """
    return bool(os.environ.get("REPRO_TRACE"))


def new_trace_id() -> str:
    """A fresh correlation id, unique across processes and hosts."""
    return f"t-{uuid.uuid4().hex[:16]}"


def _active_tracer() -> Optional["Tracer"]:
    return getattr(_TLS, "tracer", None)


class Tracer:
    """Collects finished spans for one trace session.

    A tracer does nothing until activated; activation installs it on
    the *current thread* only, so worker threads and processes open
    their own sessions (sharing the ``trace_id`` carried in the job
    payload).  ``root_parent`` links this session's root spans under a
    span from another process — campaign workers pass the parent's
    campaign span id so the merged waterfall forms one tree.
    """

    def __init__(self, trace_id: Optional[str] = None, root_parent: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.root_parent = root_parent
        self.spans: List[Dict[str, Any]] = []
        self._stack: List[_LiveSpan] = []

    def next_span_id(self) -> str:
        return f"{os.getpid():x}-{next(_SPAN_IDS)}"

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer on the current thread for the block."""
        previous = _active_tracer()
        _TLS.tracer = self
        try:
            yield self
        finally:
            _TLS.tracer = previous

    def summary(self) -> Dict[str, Any]:
        """Trace id plus per-name rollups, for report embedding."""
        return {"trace_id": self.trace_id, "rollups": rollup_spans(self.spans)}


class _NullSpan:
    """Shared do-nothing span returned when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("tracer", "name", "attrs", "span_id", "parent", "at", "_start")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        tracer = self.tracer
        stack = tracer._stack
        self.parent = stack[-1].span_id if stack else tracer.root_parent
        self.span_id = tracer.next_span_id()
        stack.append(self)
        self.at = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        seconds = time.perf_counter() - self._start
        tracer = self.tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        tracer.spans.append(
            {
                "trace": tracer.trace_id,
                "id": self.span_id,
                "parent": self.parent,
                "name": self.name,
                "at": round(self.at, 6),
                "seconds": round(seconds, 6),
                "pid": os.getpid(),
                "ok": exc_type is None,
                "attrs": self.attrs,
            }
        )
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)


def span(name: str, /, **attrs: Any):
    """Open a span named ``name`` on the active tracer, if any.

    Usable both bare and with ``as``::

        with span("derive", arch=job.arch) as sp:
            ...
            sp.annotate(iterations=n)

    With no active tracer this returns a shared no-op object — safe and
    cheap to leave in hot paths.
    """
    tracer = _active_tracer()
    if tracer is None:
        return _NULL_SPAN
    return _LiveSpan(tracer, name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if any."""
    tracer = _active_tracer()
    if tracer is not None and tracer._stack:
        tracer._stack[-1].attrs.update(attrs)


def current_trace_id() -> Optional[str]:
    """The active trace id, or None when no tracer is installed."""
    tracer = _active_tracer()
    return tracer.trace_id if tracer is not None else None


def dump_ndjson(spans: Iterable[Dict[str, Any]]) -> str:
    """Serialize spans one-JSON-object-per-line (trailing newline)."""
    lines = [json.dumps(record, sort_keys=True) for record in spans]
    return "\n".join(lines) + "\n" if lines else ""


def load_ndjson(text: str) -> List[Dict[str, Any]]:
    """Parse NDJSON produced by :func:`dump_ndjson`.

    Raises ``ValueError`` on malformed lines, naming the line number.
    """
    spans: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed NDJSON trace at line {lineno}: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"malformed NDJSON trace at line {lineno}: not an object")
        spans.append(record)
    return spans


def rollup_spans(spans: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Aggregate spans by name: count, total and max seconds.

    The rollup is what ``CampaignReport`` embeds — a compact answer to
    "where did the campaign spend its time" without shipping every span.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        name = record.get("name", "?")
        seconds = float(record.get("seconds", 0.0))
        entry = totals.setdefault(name, {"count": 0, "seconds_total": 0.0, "seconds_max": 0.0})
        entry["count"] += 1
        entry["seconds_total"] += seconds
        if seconds > entry["seconds_max"]:
            entry["seconds_max"] = seconds
    for entry in totals.values():
        entry["seconds_total"] = round(entry["seconds_total"], 6)
        entry["seconds_max"] = round(entry["seconds_max"], 6)
    return totals
