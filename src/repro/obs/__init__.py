"""Observability: structured span tracing and a process-local metrics registry.

The package unifies the stack's previously scattered telemetry —
``BddManager.stats()`` kernel counters, ``StoreStats`` cache tallies,
per-stage wall-clock dicts — behind two zero-dependency primitives:

* :func:`span` — a context manager producing nested, monotonic-timed
  spans correlated by a per-campaign trace id that crosses the fork
  boundary into campaign workers (`repro.campaign.runner`) and back.
  Spans are recorded only while a :class:`Tracer` session is active;
  with no session the call returns a shared no-op object, so leaving
  instrumentation in hot paths costs a single thread-local lookup.
  Enable with ``REPRO_TRACE=1``, ``repro campaign --trace``, or
  ``repro serve --trace`` (same late-binding environment pattern as
  ``REPRO_SANITIZE``).

* :func:`get_registry` — the process-global :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms).  Metrics are always on:
  increments are dict operations, and worker-process deltas are folded
  into the parent registry the same way ``StoreStats`` already is.
  The service daemon serves the registry at ``GET /v1/metrics`` as
  Prometheus text or JSON.

Example
-------
>>> from repro.obs import Tracer, span
>>> tracer = Tracer()
>>> with tracer.activate():
...     with span("derive", arch="fam-r2w1d3s1-bypass"):
...         pass
>>> [s["name"] for s in tracer.spans]
['derive']

See ``docs/observability.md`` for the span model, the metric catalog,
and the endpoint reference.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    KernelWatch,
    MetricsRegistry,
    get_registry,
    record_kernel_stats,
)
from .render import render_rollup, render_waterfall
from .trace import (
    TRACE_SCHEMA,
    Tracer,
    annotate,
    current_trace_id,
    dump_ndjson,
    load_ndjson,
    new_trace_id,
    rollup_spans,
    span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "KernelWatch",
    "MetricsRegistry",
    "TRACE_SCHEMA",
    "Tracer",
    "annotate",
    "current_trace_id",
    "dump_ndjson",
    "get_registry",
    "load_ndjson",
    "new_trace_id",
    "record_kernel_stats",
    "render_rollup",
    "render_waterfall",
    "rollup_spans",
    "span",
    "tracing_enabled",
]
