"""Terminal rendering of span traces: waterfall tree and rollup table.

Consumed by the ``repro trace`` CLI verb.  Input is the span-dict list
produced by :mod:`repro.obs.trace` (usually loaded from a store's
``trace-<job_key>.ndjson`` file); output is plain text::

    trace t-4eab6ff1…  8 spans  2 processes  wall 0.812s
    job fam-r2w1d3s1-bypass (pid 6021) 0.401s |##########.................|
      properties                       0.050s |##..........................|
      derive                           0.310s |...########.................|

Spans whose parent is not part of the rendered set (e.g. a job trace
whose parent campaign span lives only in the orchestrator process) are
treated as roots.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from .trace import rollup_spans

_BAR_WIDTH = 28


def _label(record: Dict[str, Any]) -> str:
    name = record.get("name", "?")
    attrs = record.get("attrs", {})
    parts = [name]
    arch = attrs.get("arch")
    if arch and name in ("job", "campaign"):
        parts.append(str(arch))
    if attrs.get("from_store"):
        parts.append("(from store)")
    if record.get("ok") is False or attrs.get("ok") is False:
        parts.append("[FAIL]")
    return " ".join(parts)


def _bar(start: float, seconds: float, window_start: float, window: float) -> str:
    if window <= 0:
        return "|" + "#" * _BAR_WIDTH + "|"
    begin = int(round((start - window_start) / window * _BAR_WIDTH))
    length = max(1, int(round(seconds / window * _BAR_WIDTH)))
    begin = min(begin, _BAR_WIDTH - 1)
    length = min(length, _BAR_WIDTH - begin)
    return "|" + "." * begin + "#" * length + "." * (_BAR_WIDTH - begin - length) + "|"


def render_waterfall(spans: Iterable[Dict[str, Any]]) -> str:
    """The span tree with per-span duration and a wall-clock waterfall."""
    records = list(spans)
    if not records:
        return "(empty trace)"
    by_id = {record.get("id"): record for record in records}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        parent = record.get("parent")
        if parent in by_id and parent != record.get("id"):
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def start_of(record: Dict[str, Any]) -> float:
        return float(record.get("at", 0.0))

    for siblings in children.values():
        siblings.sort(key=start_of)
    roots.sort(key=start_of)

    window_start = min(start_of(r) for r in records)
    window_end = max(start_of(r) + float(r.get("seconds", 0.0)) for r in records)
    window = window_end - window_start

    trace_ids = sorted({str(r.get("trace")) for r in records})
    pids = {r.get("pid") for r in records}
    label_width = 0
    flat: List[Any] = []

    def collect(record: Dict[str, Any], depth: int) -> None:
        nonlocal label_width
        text = "  " * depth + _label(record)
        label_width = max(label_width, len(text))
        flat.append((text, record))
        for child in children.get(record.get("id"), ()):
            collect(child, depth + 1)

    for root in roots:
        collect(root, 0)

    lines = [
        f"trace {', '.join(trace_ids)}  {len(records)} spans  "
        f"{len(pids)} process{'es' if len(pids) != 1 else ''}  wall {window:.3f}s"
    ]
    for text, record in flat:
        seconds = float(record.get("seconds", 0.0))
        lines.append(
            f"{text.ljust(label_width)}  {seconds:8.3f}s  "
            f"{_bar(start_of(record), seconds, window_start, window)}"
        )
    return "\n".join(lines)


def render_rollup(spans: Iterable[Dict[str, Any]]) -> str:
    """Per-span-name summary table, hottest first."""
    rollups = rollup_spans(spans)
    if not rollups:
        return "(empty trace)"
    rows = sorted(
        rollups.items(), key=lambda item: item[1]["seconds_total"], reverse=True
    )
    name_width = max(len("span"), max(len(name) for name, _ in rows))
    lines = [
        f"{'span'.ljust(name_width)}  {'count':>5}  {'total s':>9}  {'max s':>9}"
    ]
    for name, entry in rows:
        lines.append(
            f"{name.ljust(name_width)}  {entry['count']:>5}  "
            f"{entry['seconds_total']:>9.3f}  {entry['seconds_max']:>9.3f}"
        )
    return "\n".join(lines)
