"""Specification coverage of simulation runs.

The paper is explicit that "even the best simulation is by no means
exhaustive, hence the fact that the assertions are not triggered during
simulation does not imply that the design satisfies the specification".
This module quantifies that gap for a concrete set of runs: for every
pipeline stage it measures which of the stall-condition disjuncts were ever
exercised, whether the stage was ever observed stalled and ever observed
moving, and how much of the (reachable) assertion antecedent space the
workload visited.

The numbers drive two things:

* the property-checking-versus-simulation benchmark, which shows injected
  bugs hiding exactly behind uncovered disjuncts, and
* workload tuning — a profile that leaves a disjunct uncovered cannot find
  bugs in the logic guarding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..expr.ast import Expr, Or
from ..expr.compile import WORD_BITS, compile_bitparallel
from ..expr.evaluate import UnboundVariableError
from ..expr.printer import to_text
from ..pipeline.trace import SimulationTrace
from ..spec.functional import FunctionalSpec

__all__ = [
    "DisjunctCoverage",
    "StageCoverage",
    "CoverageReport",
    "coverage_of",
    "merge_coverage",
]


@dataclass
class DisjunctCoverage:
    """Exercise counts for one disjunct of one stage's stall condition."""

    stage: str
    index: int
    condition: Expr
    hit_cycles: int = 0
    sole_justification_cycles: int = 0

    @property
    def covered(self) -> bool:
        """Was the disjunct ever true while the stage was observed?"""
        return self.hit_cycles > 0

    def describe(self) -> str:
        """Single-line rendering."""
        status = "covered" if self.covered else "NOT COVERED"
        return (
            f"{self.stage} disjunct {self.index} [{status}] "
            f"hits={self.hit_cycles} sole={self.sole_justification_cycles}: "
            f"{to_text(self.condition)}"
        )


@dataclass
class StageCoverage:
    """Coverage of one pipeline stage's stall clause."""

    moe: str
    disjuncts: List[DisjunctCoverage] = field(default_factory=list)
    cycles_observed: int = 0
    cycles_stalled: int = 0
    cycles_moving: int = 0
    cycles_condition_true: int = 0

    @property
    def disjunct_coverage(self) -> float:
        """Fraction of stall-condition disjuncts exercised at least once."""
        if not self.disjuncts:
            return 1.0
        return sum(1 for disjunct in self.disjuncts if disjunct.covered) / len(self.disjuncts)

    @property
    def stall_observed(self) -> bool:
        """Was the stage ever observed stalled?"""
        return self.cycles_stalled > 0

    @property
    def move_observed(self) -> bool:
        """Was the stage ever observed moving-or-empty?"""
        return self.cycles_moving > 0

    @property
    def uncovered_disjuncts(self) -> List[DisjunctCoverage]:
        """Disjuncts never exercised by the runs."""
        return [disjunct for disjunct in self.disjuncts if not disjunct.covered]

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "moe flag": self.moe,
            "cycles": self.cycles_observed,
            "stalled": self.cycles_stalled,
            "moving": self.cycles_moving,
            "condition true": self.cycles_condition_true,
            "disjuncts": len(self.disjuncts),
            "disjuncts covered": sum(1 for d in self.disjuncts if d.covered),
            "disjunct coverage": f"{100.0 * self.disjunct_coverage:.1f}%",
        }


@dataclass
class CoverageReport:
    """Specification coverage accumulated over one or more traces."""

    spec_name: str
    stages: Dict[str, StageCoverage] = field(default_factory=dict)
    traces_merged: int = 0

    @property
    def overall_disjunct_coverage(self) -> float:
        """Fraction of all stall-condition disjuncts exercised."""
        disjuncts = [d for stage in self.stages.values() for d in stage.disjuncts]
        if not disjuncts:
            return 1.0
        return sum(1 for disjunct in disjuncts if disjunct.covered) / len(disjuncts)

    @property
    def fully_covered(self) -> bool:
        """True when every disjunct of every stage was exercised."""
        return all(not stage.uncovered_disjuncts for stage in self.stages.values())

    def uncovered(self) -> List[DisjunctCoverage]:
        """Every disjunct no run ever exercised."""
        return [
            disjunct
            for stage in self.stages.values()
            for disjunct in stage.uncovered_disjuncts
        ]

    def rows(self) -> List[Dict[str, object]]:
        """Per-stage rows for report tables."""
        return [stage.as_row() for stage in self.stages.values()]

    def describe(self) -> str:
        """Multi-line summary including the coverage holes."""
        lines = [
            f"Specification coverage for {self.spec_name} over {self.traces_merged} trace(s):",
            f"  overall disjunct coverage: {100.0 * self.overall_disjunct_coverage:.1f}%",
        ]
        for stage in self.stages.values():
            lines.append(
                f"  {stage.moe}: {100.0 * stage.disjunct_coverage:.1f}% "
                f"({sum(1 for d in stage.disjuncts if d.covered)}/{len(stage.disjuncts)} disjuncts), "
                f"stalled {stage.cycles_stalled}/{stage.cycles_observed} cycles"
            )
        holes = self.uncovered()
        if holes:
            lines.append("  uncovered disjuncts (bugs behind these cannot be seen by these runs):")
            for disjunct in holes:
                lines.append(f"    - {disjunct.stage}[{disjunct.index}]: {to_text(disjunct.condition)}")
        else:
            lines.append("  every stall-condition disjunct was exercised at least once")
        return "\n".join(lines)


def _disjuncts_of(condition: Expr) -> List[Expr]:
    if isinstance(condition, Or):
        return list(condition.operands)
    return [condition]


def _new_report(spec: FunctionalSpec) -> CoverageReport:
    report = CoverageReport(spec_name=spec.name)
    for clause in spec.clauses:
        stage = StageCoverage(moe=clause.moe)
        for index, disjunct in enumerate(_disjuncts_of(clause.condition)):
            stage.disjuncts.append(
                DisjunctCoverage(stage=clause.moe, index=index, condition=disjunct)
            )
        report.stages[clause.moe] = stage
    return report


def coverage_of(
    spec: FunctionalSpec,
    traces: Iterable[SimulationTrace],
    report: Optional[CoverageReport] = None,
) -> CoverageReport:
    """Accumulate specification coverage of the given traces.

    Each disjunct is compiled once to bit-parallel word operations and
    scored 64 cycles at a time; the per-cycle hit counts, sole-justification
    counts and stall/move observations are recovered from the packed result
    columns with population counts.

    Args:
        spec: the functional specification whose clauses define the coverage
            model.
        traces: simulation traces to score (signals are read from each cycle
            record exactly as the assertion monitor samples them).
        report: an existing report to accumulate into, for incremental
            campaigns; a fresh one is created when omitted.
    """
    report = report or _new_report(spec)
    compiled = {
        (clause.moe, index): compile_bitparallel(disjunct)
        for clause in spec.clauses
        for index, disjunct in enumerate(_disjuncts_of(clause.condition))
    }
    strict_names: Dict[str, None] = {}
    for compiled_disjunct in compiled.values():
        for name in compiled_disjunct.names:
            strict_names.setdefault(name, None)
    moe_flags = [clause.moe for clause in spec.clauses]

    for trace in traces:
        report.traces_merged += 1
        num_cycles = len(trace.cycles)
        if not num_cycles:
            continue
        columns, moe_columns = _pack_trace(trace, list(strict_names), moe_flags)
        num_words = (num_cycles + WORD_BITS - 1) // WORD_BITS
        full = (1 << WORD_BITS) - 1
        masks = [
            full
            if (num_cycles - w * WORD_BITS) >= WORD_BITS
            else (1 << (num_cycles - w * WORD_BITS)) - 1
            for w in range(num_words)
        ]
        for clause in spec.clauses:
            stage = report.stages[clause.moe]
            stage.cycles_observed += num_cycles
            moving = sum(
                (word & mask).bit_count()
                for word, mask in zip(moe_columns[clause.moe], masks)
            )
            stage.cycles_moving += moving
            stage.cycles_stalled += num_cycles - moving
            hit_columns = [
                compiled[(clause.moe, disjunct.index)].evaluate_packed(
                    columns, num_cycles
                )
                for disjunct in stage.disjuncts
            ]
            for disjunct, hits in zip(stage.disjuncts, hit_columns):
                disjunct.hit_cycles += sum(word.bit_count() for word in hits)
            for word_index in range(num_words):
                union = 0
                for hits in hit_columns:
                    union |= hits[word_index]
                if not union:
                    continue
                stage.cycles_condition_true += union.bit_count()
                for disjunct, hits in zip(stage.disjuncts, hit_columns):
                    others = 0
                    for other in hit_columns:
                        if other is not hits:
                            others |= other[word_index]
                    sole = hits[word_index] & ~others & masks[word_index]
                    disjunct.sole_justification_cycles += sole.bit_count()
    return report


def _pack_trace(
    trace: SimulationTrace, strict_names: Sequence[str], moe_flags: Sequence[str]
):
    """Pack the signal columns a coverage pass needs into 64-cycle words.

    Variables appearing in a stall-condition disjunct must be sampled by
    the trace (matching :func:`~repro.expr.evaluate.eval_expr`, which raises
    on unbound variables); the per-stage moe observation defaults to True
    when the trace does not drive the flag, as before.
    """
    try:
        columns = trace.pack_signal_columns(list(strict_names))
    except KeyError as exc:
        raise UnboundVariableError(exc.args[0]) from exc
    moe_columns = trace.pack_signal_columns(
        list(moe_flags), defaults={moe: True for moe in moe_flags}
    )
    return columns, moe_columns


def merge_coverage(reports: Sequence[CoverageReport]) -> CoverageReport:
    """Merge several coverage reports over the same specification."""
    if not reports:
        raise ValueError("cannot merge an empty list of coverage reports")
    names = {report.spec_name for report in reports}
    if len(names) != 1:
        raise ValueError(f"cannot merge coverage of different specifications: {sorted(names)}")
    merged = CoverageReport(spec_name=reports[0].spec_name)
    for report in reports:
        merged.traces_merged += report.traces_merged
        for moe, stage in report.stages.items():
            target = merged.stages.get(moe)
            if target is None:
                target = StageCoverage(moe=moe)
                for disjunct in stage.disjuncts:
                    target.disjuncts.append(
                        DisjunctCoverage(
                            stage=disjunct.stage,
                            index=disjunct.index,
                            condition=disjunct.condition,
                        )
                    )
                merged.stages[moe] = target
            target.cycles_observed += stage.cycles_observed
            target.cycles_stalled += stage.cycles_stalled
            target.cycles_moving += stage.cycles_moving
            target.cycles_condition_true += stage.cycles_condition_true
            for mine, theirs in zip(target.disjuncts, stage.disjuncts):
                mine.hit_cycles += theirs.hit_cycles
                mine.sole_justification_cycles += theirs.sole_justification_cycles
    return merged
