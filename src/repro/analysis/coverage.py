"""Specification coverage of simulation runs.

The paper is explicit that "even the best simulation is by no means
exhaustive, hence the fact that the assertions are not triggered during
simulation does not imply that the design satisfies the specification".
This module quantifies that gap for a concrete set of runs: for every
pipeline stage it measures which of the stall-condition disjuncts were ever
exercised, whether the stage was ever observed stalled and ever observed
moving, and how much of the (reachable) assertion antecedent space the
workload visited.

The numbers drive two things:

* the property-checking-versus-simulation benchmark, which shows injected
  bugs hiding exactly behind uncovered disjuncts, and
* workload tuning — a profile that leaves a disjunct uncovered cannot find
  bugs in the logic guarding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..expr.ast import Expr, Or
from ..expr.evaluate import eval_expr
from ..expr.printer import to_text
from ..pipeline.trace import SimulationTrace
from ..spec.functional import FunctionalSpec

__all__ = [
    "DisjunctCoverage",
    "StageCoverage",
    "CoverageReport",
    "coverage_of",
    "merge_coverage",
]


@dataclass
class DisjunctCoverage:
    """Exercise counts for one disjunct of one stage's stall condition."""

    stage: str
    index: int
    condition: Expr
    hit_cycles: int = 0
    sole_justification_cycles: int = 0

    @property
    def covered(self) -> bool:
        """Was the disjunct ever true while the stage was observed?"""
        return self.hit_cycles > 0

    def describe(self) -> str:
        """Single-line rendering."""
        status = "covered" if self.covered else "NOT COVERED"
        return (
            f"{self.stage} disjunct {self.index} [{status}] "
            f"hits={self.hit_cycles} sole={self.sole_justification_cycles}: "
            f"{to_text(self.condition)}"
        )


@dataclass
class StageCoverage:
    """Coverage of one pipeline stage's stall clause."""

    moe: str
    disjuncts: List[DisjunctCoverage] = field(default_factory=list)
    cycles_observed: int = 0
    cycles_stalled: int = 0
    cycles_moving: int = 0
    cycles_condition_true: int = 0

    @property
    def disjunct_coverage(self) -> float:
        """Fraction of stall-condition disjuncts exercised at least once."""
        if not self.disjuncts:
            return 1.0
        return sum(1 for disjunct in self.disjuncts if disjunct.covered) / len(self.disjuncts)

    @property
    def stall_observed(self) -> bool:
        """Was the stage ever observed stalled?"""
        return self.cycles_stalled > 0

    @property
    def move_observed(self) -> bool:
        """Was the stage ever observed moving-or-empty?"""
        return self.cycles_moving > 0

    @property
    def uncovered_disjuncts(self) -> List[DisjunctCoverage]:
        """Disjuncts never exercised by the runs."""
        return [disjunct for disjunct in self.disjuncts if not disjunct.covered]

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "moe flag": self.moe,
            "cycles": self.cycles_observed,
            "stalled": self.cycles_stalled,
            "moving": self.cycles_moving,
            "condition true": self.cycles_condition_true,
            "disjuncts": len(self.disjuncts),
            "disjuncts covered": sum(1 for d in self.disjuncts if d.covered),
            "disjunct coverage": f"{100.0 * self.disjunct_coverage:.1f}%",
        }


@dataclass
class CoverageReport:
    """Specification coverage accumulated over one or more traces."""

    spec_name: str
    stages: Dict[str, StageCoverage] = field(default_factory=dict)
    traces_merged: int = 0

    @property
    def overall_disjunct_coverage(self) -> float:
        """Fraction of all stall-condition disjuncts exercised."""
        disjuncts = [d for stage in self.stages.values() for d in stage.disjuncts]
        if not disjuncts:
            return 1.0
        return sum(1 for disjunct in disjuncts if disjunct.covered) / len(disjuncts)

    @property
    def fully_covered(self) -> bool:
        """True when every disjunct of every stage was exercised."""
        return all(not stage.uncovered_disjuncts for stage in self.stages.values())

    def uncovered(self) -> List[DisjunctCoverage]:
        """Every disjunct no run ever exercised."""
        return [
            disjunct
            for stage in self.stages.values()
            for disjunct in stage.uncovered_disjuncts
        ]

    def rows(self) -> List[Dict[str, object]]:
        """Per-stage rows for report tables."""
        return [stage.as_row() for stage in self.stages.values()]

    def describe(self) -> str:
        """Multi-line summary including the coverage holes."""
        lines = [
            f"Specification coverage for {self.spec_name} over {self.traces_merged} trace(s):",
            f"  overall disjunct coverage: {100.0 * self.overall_disjunct_coverage:.1f}%",
        ]
        for stage in self.stages.values():
            lines.append(
                f"  {stage.moe}: {100.0 * stage.disjunct_coverage:.1f}% "
                f"({sum(1 for d in stage.disjuncts if d.covered)}/{len(stage.disjuncts)} disjuncts), "
                f"stalled {stage.cycles_stalled}/{stage.cycles_observed} cycles"
            )
        holes = self.uncovered()
        if holes:
            lines.append("  uncovered disjuncts (bugs behind these cannot be seen by these runs):")
            for disjunct in holes:
                lines.append(f"    - {disjunct.stage}[{disjunct.index}]: {to_text(disjunct.condition)}")
        else:
            lines.append("  every stall-condition disjunct was exercised at least once")
        return "\n".join(lines)


def _disjuncts_of(condition: Expr) -> List[Expr]:
    if isinstance(condition, Or):
        return list(condition.operands)
    return [condition]


def _new_report(spec: FunctionalSpec) -> CoverageReport:
    report = CoverageReport(spec_name=spec.name)
    for clause in spec.clauses:
        stage = StageCoverage(moe=clause.moe)
        for index, disjunct in enumerate(_disjuncts_of(clause.condition)):
            stage.disjuncts.append(
                DisjunctCoverage(stage=clause.moe, index=index, condition=disjunct)
            )
        report.stages[clause.moe] = stage
    return report


def coverage_of(
    spec: FunctionalSpec,
    traces: Iterable[SimulationTrace],
    report: Optional[CoverageReport] = None,
) -> CoverageReport:
    """Accumulate specification coverage of the given traces.

    Args:
        spec: the functional specification whose clauses define the coverage
            model.
        traces: simulation traces to score (signals are read from each cycle
            record exactly as the assertion monitor samples them).
        report: an existing report to accumulate into, for incremental
            campaigns; a fresh one is created when omitted.
    """
    report = report or _new_report(spec)
    for trace in traces:
        report.traces_merged += 1
        for record in trace.cycles:
            signals = record.signals()
            for clause in spec.clauses:
                stage = report.stages[clause.moe]
                stage.cycles_observed += 1
                moe_value = signals.get(clause.moe, True)
                if moe_value:
                    stage.cycles_moving += 1
                else:
                    stage.cycles_stalled += 1
                hits = []
                for disjunct in stage.disjuncts:
                    value = eval_expr(disjunct.condition, signals)
                    if value:
                        disjunct.hit_cycles += 1
                        hits.append(disjunct)
                if hits:
                    stage.cycles_condition_true += 1
                    if len(hits) == 1:
                        hits[0].sole_justification_cycles += 1
    return report


def merge_coverage(reports: Sequence[CoverageReport]) -> CoverageReport:
    """Merge several coverage reports over the same specification."""
    if not reports:
        raise ValueError("cannot merge an empty list of coverage reports")
    names = {report.spec_name for report in reports}
    if len(names) != 1:
        raise ValueError(f"cannot merge coverage of different specifications: {sorted(names)}")
    merged = CoverageReport(spec_name=reports[0].spec_name)
    for report in reports:
        merged.traces_merged += report.traces_merged
        for moe, stage in report.stages.items():
            target = merged.stages.get(moe)
            if target is None:
                target = StageCoverage(moe=moe)
                for disjunct in stage.disjuncts:
                    target.disjuncts.append(
                        DisjunctCoverage(
                            stage=disjunct.stage,
                            index=disjunct.index,
                            condition=disjunct.condition,
                        )
                    )
                merged.stages[moe] = target
            target.cycles_observed += stage.cycles_observed
            target.cycles_stalled += stage.cycles_stalled
            target.cycles_moving += stage.cycles_moving
            target.cycles_condition_true += stage.cycles_condition_true
            for mine, theirs in zip(target.disjuncts, stage.disjuncts):
                mine.hit_cycles += theirs.hit_cycles
                mine.sole_justification_cycles += theirs.sole_justification_cycles
    return merged
