"""Trace analysis: stall classification, coverage, throughput and batch aggregation."""

from .aggregate import rate, render_table, summarize_timings
from .coverage import (
    CoverageReport,
    DisjunctCoverage,
    StageCoverage,
    coverage_of,
    merge_coverage,
)
from .stalls import StageStallStats, StallBreakdown, classify_stalls
from .stats import (
    Comparison,
    ThroughputStats,
    compare_traces,
    stats_table,
    utilisation_by_stage,
)

__all__ = [
    "rate",
    "render_table",
    "summarize_timings",
    "CoverageReport",
    "DisjunctCoverage",
    "StageCoverage",
    "coverage_of",
    "merge_coverage",
    "StageStallStats",
    "StallBreakdown",
    "classify_stalls",
    "Comparison",
    "ThroughputStats",
    "compare_traces",
    "stats_table",
    "utilisation_by_stage",
]
