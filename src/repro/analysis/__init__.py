"""Trace analysis: stall classification, specification coverage and throughput statistics."""

from .coverage import (
    CoverageReport,
    DisjunctCoverage,
    StageCoverage,
    coverage_of,
    merge_coverage,
)
from .stalls import StageStallStats, StallBreakdown, classify_stalls
from .stats import (
    Comparison,
    ThroughputStats,
    compare_traces,
    stats_table,
    utilisation_by_stage,
)

__all__ = [
    "CoverageReport",
    "DisjunctCoverage",
    "StageCoverage",
    "coverage_of",
    "merge_coverage",
    "StageStallStats",
    "StallBreakdown",
    "classify_stalls",
    "Comparison",
    "ThroughputStats",
    "compare_traces",
    "stats_table",
    "utilisation_by_stage",
]
