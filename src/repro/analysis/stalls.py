"""Stall classification: necessary versus unnecessary.

The paper's central definition: "a performance bug is a pipeline stall for
which there is no functional justification".  Given a simulation trace and
the functional specification, this module classifies every observed stall
cycle of every stage as *necessary* (some functional stall condition held)
or *unnecessary* (none held — the interlock could have let the stage move).

The classifier evaluates the specification's stall conditions on the same
per-cycle signal samples the assertion monitor uses, so an unnecessary
stall here corresponds one-to-one with a performance-assertion violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..expr.compile import WORD_BITS, compile_bitparallel, iter_set_bits, tail_mask
from ..pipeline.trace import SimulationTrace
from ..spec.functional import FunctionalSpec


@dataclass
class StageStallStats:
    """Stall accounting for one pipeline stage."""

    moe: str
    total_cycles: int = 0
    stall_cycles: int = 0
    necessary_stalls: int = 0
    unnecessary_stalls: int = 0
    unnecessary_cycles: List[int] = field(default_factory=list)

    @property
    def stall_rate(self) -> float:
        """Fraction of cycles the stage reported a stall."""
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles

    @property
    def unnecessary_rate(self) -> float:
        """Fraction of stall cycles with no functional justification."""
        if self.stall_cycles == 0:
            return 0.0
        return self.unnecessary_stalls / self.stall_cycles

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "stage": self.moe.rsplit(".", 1)[0],
            "stalls": self.stall_cycles,
            "necessary": self.necessary_stalls,
            "unnecessary": self.unnecessary_stalls,
            "stall rate": f"{self.stall_rate:.2%}",
            "unnecessary rate": f"{self.unnecessary_rate:.2%}",
        }


@dataclass
class StallBreakdown:
    """Whole-pipeline stall classification for one trace."""

    trace_name: str
    per_stage: Dict[str, StageStallStats] = field(default_factory=dict)

    def total_stalls(self) -> int:
        """Sum of stall cycles over all stages."""
        return sum(stats.stall_cycles for stats in self.per_stage.values())

    def total_unnecessary(self) -> int:
        """Sum of unnecessary stall cycles over all stages."""
        return sum(stats.unnecessary_stalls for stats in self.per_stage.values())

    def total_necessary(self) -> int:
        """Sum of necessary stall cycles over all stages."""
        return sum(stats.necessary_stalls for stats in self.per_stage.values())

    def has_performance_bug(self) -> bool:
        """True when at least one unnecessary stall was observed."""
        return self.total_unnecessary() > 0

    def worst_stage(self) -> Optional[str]:
        """The stage with the most unnecessary stalls, or None."""
        worst = None
        worst_count = 0
        for moe, stats in self.per_stage.items():
            if stats.unnecessary_stalls > worst_count:
                worst = moe
                worst_count = stats.unnecessary_stalls
        return worst

    def rows(self) -> List[Dict[str, object]]:
        """Per-stage rows for report tables."""
        return [stats.as_row() for stats in self.per_stage.values()]

    def describe(self) -> str:
        """Multi-line summary."""
        lines = [
            f"Stall breakdown for {self.trace_name}:",
            f"  total stall cycles:      {self.total_stalls()}",
            f"  necessary stalls:        {self.total_necessary()}",
            f"  unnecessary stalls:      {self.total_unnecessary()}",
        ]
        worst = self.worst_stage()
        if worst is not None:
            lines.append(f"  worst stage:             {worst}")
        return "\n".join(lines)


def classify_stalls(
    trace: SimulationTrace,
    spec: FunctionalSpec,
    derivation=None,
) -> StallBreakdown:
    """Classify every stall cycle in a trace against the functional spec.

    The justification formulas are compiled once to bit-parallel word code
    (:mod:`repro.expr.compile`) and evaluated 64 cycles per operation over
    the trace's packed signal columns — the same bulk path the assertion
    monitor and the coverage scorer use — instead of one expression-tree
    walk per stage per cycle.

    Args:
        trace: the simulation trace to classify.
        spec: the functional specification providing the stall conditions.
        derivation: optional :class:`~repro.spec.derivation.DerivationResult`;
            when given, necessity is judged on its materialized closed-form
            stall conditions ``¬MOE_i`` over primary inputs only — a stall
            is then *unnecessary* exactly when the most liberal interlock
            would have let the stage move, independent of the moe values
            the (possibly buggy) implementation drove for the other stages.
            Without it, the per-stage conditions are evaluated on the
            observed signal sample, as the monitors do.
    """
    breakdown = StallBreakdown(
        trace_name=f"{trace.architecture_name}/{trace.interlock_name}"
    )
    for clause in spec.clauses:
        breakdown.per_stage[clause.moe] = StageStallStats(moe=clause.moe)
    num_cycles = len(trace.cycles)
    if num_cycles == 0:
        return breakdown

    if derivation is not None:
        stall_formulas = derivation.stall_expressions()
    else:
        stall_formulas = {clause.moe: clause.condition for clause in spec.clauses}
    compiled = {
        moe: compile_bitparallel(formula) for moe, formula in stall_formulas.items()
    }
    needed: Dict[str, None] = {moe: None for moe in stall_formulas}
    for code in compiled.values():
        for name in code.names:
            needed.setdefault(name, None)
    # A moe flag the trace never sampled counts as "moving or empty".
    columns = trace.pack_signal_columns(
        list(needed), defaults={moe: True for moe in stall_formulas}
    )

    for moe, code in compiled.items():
        stats = breakdown.per_stage[moe]
        stats.total_cycles = num_cycles
        justified = code.evaluate_packed(columns, num_cycles)
        moe_column = columns[moe]
        for word_index, justified_word in enumerate(justified):
            mask = tail_mask(num_cycles, word_index)
            stalled = ~moe_column[word_index] & mask
            if not stalled:
                continue
            stats.stall_cycles += stalled.bit_count()
            stats.necessary_stalls += (stalled & justified_word).bit_count()
            unnecessary = stalled & ~justified_word
            stats.unnecessary_stalls += unnecessary.bit_count()
            for bit in iter_set_bits(unnecessary):
                stats.unnecessary_cycles.append(
                    trace.cycles[word_index * WORD_BITS + bit].cycle
                )
    return breakdown
