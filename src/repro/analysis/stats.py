"""Throughput statistics and comparisons between interlock implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..pipeline.trace import SimulationTrace


@dataclass
class ThroughputStats:
    """Headline throughput numbers for one simulation run."""

    interlock_name: str
    cycles: int
    retired: int
    ipc: float
    cpi: float
    total_stall_cycles: int
    hazards: int

    @classmethod
    def from_trace(cls, trace: SimulationTrace) -> "ThroughputStats":
        """Extract the statistics from a finished trace."""
        return cls(
            interlock_name=trace.interlock_name,
            cycles=trace.num_cycles(),
            retired=trace.retired_instructions,
            ipc=trace.instructions_per_cycle(),
            cpi=trace.cycles_per_instruction(),
            total_stall_cycles=trace.total_stall_cycles(),
            hazards=trace.hazard_count(),
        )

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "interlock": self.interlock_name,
            "cycles": self.cycles,
            "retired": self.retired,
            "IPC": f"{self.ipc:.3f}",
            "CPI": f"{self.cpi:.3f}" if self.retired else "inf",
            "stall cycles": self.total_stall_cycles,
            "hazards": self.hazards,
        }


@dataclass
class Comparison:
    """Relative performance of an implementation against a baseline."""

    baseline: ThroughputStats
    candidate: ThroughputStats

    @property
    def speedup(self) -> float:
        """Baseline cycles divided by candidate cycles (>1 means candidate is faster)."""
        if self.candidate.cycles == 0:
            return float("inf")
        return self.baseline.cycles / self.candidate.cycles

    @property
    def extra_stall_cycles(self) -> int:
        """Stall cycles the baseline spends beyond the candidate."""
        return self.baseline.total_stall_cycles - self.candidate.total_stall_cycles

    def as_row(self) -> Dict[str, object]:
        """Row for report tables."""
        return {
            "baseline": self.baseline.interlock_name,
            "candidate": self.candidate.interlock_name,
            "baseline cycles": self.baseline.cycles,
            "candidate cycles": self.candidate.cycles,
            "speedup": f"{self.speedup:.3f}x",
            "extra stalls removed": self.extra_stall_cycles,
        }


def compare_traces(baseline: SimulationTrace, candidate: SimulationTrace) -> Comparison:
    """Compare two runs of the same program under different interlocks."""
    return Comparison(
        baseline=ThroughputStats.from_trace(baseline),
        candidate=ThroughputStats.from_trace(candidate),
    )


def stats_table(traces: Sequence[SimulationTrace]) -> List[Dict[str, object]]:
    """Throughput rows for several runs (used by the benchmark harnesses)."""
    return [ThroughputStats.from_trace(trace).as_row() for trace in traces]


def utilisation_by_stage(trace: SimulationTrace) -> Dict[str, float]:
    """Fraction of cycles each stage held an instruction."""
    if not trace.cycles:
        return {}
    counts: Dict[str, int] = {}
    for record in trace.cycles:
        for stage_key, uid in record.occupancy.items():
            if uid is not None:
                counts[stage_key] = counts.get(stage_key, 0) + 1
    return {stage: count / len(trace.cycles) for stage, count in sorted(counts.items())}
