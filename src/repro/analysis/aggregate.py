"""Aggregation helpers shared by the batch reports.

The campaign orchestrator (and any future sweep) reduces many per-job
outcomes to tables and timing summaries; the rendering lives here, next
to the other analysis reducers, so every report in the code base formats
rows the same way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    indent: str = "  ",
) -> str:
    """Fixed-width ASCII table from a list of row dictionaries.

    Columns default to the keys of the first row, in insertion order;
    missing cells render empty.
    """
    if not rows:
        return f"{indent}(no rows)"
    names = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[str(row.get(name, "")) for name in names] for row in rows]
    widths = [
        max(len(name), *(len(row[i]) for row in cells)) for i, name in enumerate(names)
    ]
    lines = [
        indent + "  ".join(name.ljust(widths[i]) for i, name in enumerate(names)),
        indent + "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        indent + "  ".join(row[i].ljust(widths[i]) for i in range(len(names)))
        for row in cells
    )
    return "\n".join(lines)


def rate(numerator: int, denominator: int) -> str:
    """``"x/y (z%)"`` pass-rate formatting; denominator 0 renders as n/a."""
    if denominator == 0:
        return "n/a"
    return f"{numerator}/{denominator} ({numerator / denominator:.0%})"


def summarize_timings(seconds: Sequence[float]) -> Dict[str, float]:
    """Total/mean/min/max of a list of durations (empty list → zeros)."""
    values = list(seconds)
    if not values:
        return {"total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
    total = sum(values)
    return {
        "total": round(total, 6),
        "mean": round(total / len(values), 6),
        "min": round(min(values), 6),
        "max": round(max(values), 6),
    }
