"""Compact binary serialization of BDD node sets (the artifact format).

A symbolic artifact is a set of named root functions dumped from one
:class:`~repro.bdd.manager.BddManager` into a self-contained byte string
that round-trips in milliseconds.  The campaign layer stores these next
to its JSON verdicts so a derived interlock closed form is a durable
object handed between processes, instead of something every worker must
re-derive from the architecture — the artifact-handoff framing the
repository roadmap borrows from agentic-EDA work.

Wire format (``RBDD`` version 1)
--------------------------------

======  ========  =======================================================
offset  size      field
======  ========  =======================================================
0       4         magic ``b"RBDD"``
4       4         format version, u32 little-endian (currently 1)
8       4         manifest length ``M``, u32 little-endian
12      M         manifest, UTF-8 JSON (see below)
12+M    4·n       ``var`` array — per node, the index of its variable in
                  the manifest's ``variables`` list (int32 LE)
...     4·n       ``lo`` array — low-child references (int32 LE)
...     4·n       ``hi`` array — high-child references (int32 LE)
end-32  32        SHA-256 over every preceding byte
======  ========  =======================================================

A node *reference* is ``0`` for the FALSE terminal, ``1`` for TRUE, and
``i + 2`` for the ``i``-th serialized node.  Nodes are written
level-ordered bottom-up — deepest variable level first — so every
reference points strictly backwards and loading is a single forward pass.

The manifest is a JSON object::

    {"schema": 1,
     "variables": [...],        # full source variable order, top first
     "num_nodes": n,
     "roots": {name: ref},      # named entry points into the node table
     "scopes": {name: [...]},   # optional declared scopes per root
     "covers": {name: {"complemented": bool,
                       "cubes": [[[var_index, polarity], ...], ...]}},
     "payload": {...}}          # arbitrary caller JSON (e.g. derivation
                                # iterations, spec name)

``variables`` records the *entire* source variable order, not only the
levels in use: splicing a function into a manager whose relative order of
these variables differs would silently build a malformed BDD, so the
loader declares missing variables and rejects incompatible orders.

Loading splices nodes into the target manager through its unique table
(:meth:`~repro.bdd.manager.BddManager._make_node`), so a function loaded
into the manager it was dumped from — or into any manager that already
holds an equal function — deduplicates onto the existing node: pointer
equality keeps deciding equivalence across a dump/load round trip.

Both the dump and the load path have a numpy fast lane (bulk int32
encode/decode) and a pure-``array`` fallback, selected the same way as
the manager's GC mark phase (``REPRO_PURE_ARRAY=1`` forces the
fallback).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .manager import BddManager, FALSE_NODE, TRUE_NODE

try:  # pragma: no cover - exercised via the REPRO_PURE_ARRAY CI leg
    if os.environ.get("REPRO_PURE_ARRAY"):
        raise ImportError("pure-array mode forced by REPRO_PURE_ARRAY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

MAGIC = b"RBDD"
FORMAT_VERSION = 1
ARTIFACT_SCHEMA = 1

_HEADER = struct.Struct("<4sII")
_DIGEST_SIZE = hashlib.sha256().digest_size

#: ``array`` typecode with a 4-byte item on this platform ('i' everywhere
#: that matters; 'l' only on exotic ABIs where int is 2 bytes).
_I4 = "i" if array("i").itemsize == 4 else "l"


class ArtifactError(ValueError):
    """Raised for truncated, corrupt or incompatible serialized artifacts."""


def _encode_i32(values: Sequence[int], use_numpy: Optional[bool]) -> bytes:
    np = _np if (use_numpy or use_numpy is None) else None
    if np is not None:
        return np.asarray(values, dtype="<i4").tobytes()
    data = array(_I4, values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian only
        data.byteswap()
    return data.tobytes()


def _decode_i32(data: bytes, use_numpy: Optional[bool]) -> Sequence[int]:
    np = _np if (use_numpy or use_numpy is None) else None
    if np is not None:
        return np.frombuffer(data, dtype="<i4").tolist()
    out = array(_I4)
    out.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian only
        out.byteswap()
    return out


@dataclass
class ParsedArtifact:
    """A checksum-verified artifact, decoded but not yet spliced anywhere."""

    manifest: Dict[str, Any]
    var_indexes: Sequence[int]
    lo_refs: Sequence[int]
    hi_refs: Sequence[int]
    total_bytes: int

    @property
    def variables(self) -> List[str]:
        """The full source variable order, top level first."""
        return list(self.manifest["variables"])

    @property
    def num_nodes(self) -> int:
        """Number of serialized (non-terminal) nodes."""
        return int(self.manifest["num_nodes"])


def dump_nodes(
    manager: BddManager,
    roots: Mapping[str, int],
    scopes: Optional[Mapping[str, Optional[Sequence[str]]]] = None,
    covers: Optional[Mapping[str, Any]] = None,
    payload: Optional[Dict[str, Any]] = None,
    use_numpy: Optional[bool] = None,
) -> bytes:
    """Serialize the named root nodes (and everything they reach) to bytes.

    Args:
        manager: the owning manager; every root must be one of its nodes.
        roots: name → node id entry points.
        scopes: optional per-root declared variable scopes (stored
            verbatim in the manifest for the symbolic layer).
        covers: optional per-root ISOP covers, each a dict with keys
            ``complemented`` (bool) and ``cubes`` — cubes use *variable
            indexes into the manifest order*, which at dump time equal
            the source manager's levels.
        payload: arbitrary JSON-serializable metadata for the caller.
        use_numpy: force (True) or forbid (False) the numpy fast lane;
            None picks automatically.  Both lanes emit identical bytes.
    """
    var_of = manager._var
    lo_of = manager._lo
    hi_of = manager._hi
    # Deterministic reachability: DFS from the roots in name order, then a
    # stable sort deepest-level-first so references always point backwards.
    # The whole raw-id region sits inside postpone_reorder(): the ids in
    # `discovery`/`order` are unprotected, and a reorder would relabel the
    # levels the sort is about to read (contract lint RPL003).
    discovery: Dict[int, int] = {}
    order: List[int] = []
    with manager.postpone_reorder():
        for name in sorted(roots):
            stack = [roots[name]]
            while stack:
                node = stack.pop()
                if node <= TRUE_NODE or node in discovery:
                    continue
                discovery[node] = len(order)
                order.append(node)
                stack.append(hi_of[node])
                stack.append(lo_of[node])
        order.sort(key=lambda node: (-var_of[node], discovery[node]))
    ref = {FALSE_NODE: 0, TRUE_NODE: 1}
    for position, node in enumerate(order):
        ref[node] = position + 2

    manifest: Dict[str, Any] = {
        "schema": ARTIFACT_SCHEMA,
        "variables": manager.variable_order(),
        "num_nodes": len(order),
        "roots": {name: ref[node] for name, node in roots.items()},
    }
    if scopes:
        manifest["scopes"] = {
            name: (list(scope) if scope is not None else None)
            for name, scope in scopes.items()
        }
    if covers:
        manifest["covers"] = {
            name: {
                "complemented": bool(cover["complemented"]),
                "cubes": [
                    [[int(index), bool(polarity)] for index, polarity in cube]
                    for cube in cover["cubes"]
                ],
            }
            for name, cover in covers.items()
        }
    if payload is not None:
        manifest["payload"] = payload
    manifest_bytes = json.dumps(
        manifest, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    parts = [
        _HEADER.pack(MAGIC, FORMAT_VERSION, len(manifest_bytes)),
        manifest_bytes,
        _encode_i32([var_of[node] for node in order], use_numpy),
        _encode_i32([ref[lo_of[node]] for node in order], use_numpy),
        _encode_i32([ref[hi_of[node]] for node in order], use_numpy),
    ]
    body = b"".join(parts)
    return body + hashlib.sha256(body).digest()


def parse_artifact(data: bytes, use_numpy: Optional[bool] = None) -> ParsedArtifact:
    """Verify and decode an artifact without splicing it into a manager.

    Raises :class:`ArtifactError` for anything that is not a byte-exact,
    checksum-verified version-1 artifact (truncation, bit corruption, a
    foreign file, an unsupported version).
    """
    if len(data) < _HEADER.size + _DIGEST_SIZE:
        raise ArtifactError("artifact truncated: shorter than header + checksum")
    body, digest = data[:-_DIGEST_SIZE], data[-_DIGEST_SIZE:]
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactError("artifact corrupt: SHA-256 checksum mismatch")
    magic, version, manifest_len = _HEADER.unpack_from(body)
    if magic != MAGIC:
        raise ArtifactError(f"not a BDD artifact (bad magic {magic!r})")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    offset = _HEADER.size
    if len(body) < offset + manifest_len:
        raise ArtifactError("artifact truncated inside the manifest")
    try:
        manifest = json.loads(body[offset : offset + manifest_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"artifact manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("schema") != ARTIFACT_SCHEMA:
        raise ArtifactError("artifact manifest schema not supported")
    offset += manifest_len
    try:
        num_nodes = int(manifest["num_nodes"])
        variables = list(manifest["variables"])
        roots = dict(manifest["roots"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"artifact manifest missing field: {exc}") from exc
    array_bytes = 4 * num_nodes
    if len(body) != offset + 3 * array_bytes:
        raise ArtifactError(
            "artifact truncated or padded: node arrays do not match num_nodes"
        )
    var_indexes = _decode_i32(body[offset : offset + array_bytes], use_numpy)
    offset += array_bytes
    lo_refs = _decode_i32(body[offset : offset + array_bytes], use_numpy)
    offset += array_bytes
    hi_refs = _decode_i32(body[offset : offset + array_bytes], use_numpy)
    limit = num_nodes + 2
    for name, root in roots.items():
        if not isinstance(root, int) or not (0 <= root < limit):
            raise ArtifactError(f"artifact root {name!r} reference out of range")
    num_vars = len(variables)
    for index in range(num_nodes):
        if not (0 <= var_indexes[index] < num_vars):
            raise ArtifactError("artifact node has an out-of-range variable index")
        if lo_refs[index] >= index + 2 or hi_refs[index] >= index + 2:
            raise ArtifactError(
                "artifact node references a later node (not level-ordered)"
            )
        if lo_refs[index] < 0 or hi_refs[index] < 0:
            raise ArtifactError("artifact node has a negative child reference")
    return ParsedArtifact(
        manifest=manifest,
        var_indexes=var_indexes,
        lo_refs=lo_refs,
        hi_refs=hi_refs,
        total_bytes=len(data),
    )


def splice_nodes(manager: BddManager, parsed: ParsedArtifact) -> Dict[str, int]:
    """Splice a parsed artifact into a manager, deduplicating per node.

    Missing variables are declared in the artifact's order; an existing
    manager whose relative order of the artifact's variables differs is
    rejected (splicing across orders would build malformed BDDs — callers
    should fall back to a fresh manager).  Returns name → node id for the
    roots.  The returned nodes are **not** protected; wrap or protect
    them before any garbage collection.
    """
    levels = [manager.declare(name) for name in parsed.variables]
    for shallow, deep in zip(levels, levels[1:]):
        if shallow >= deep:
            raise ArtifactError(
                "artifact variable order is incompatible with this manager; "
                "load into a fresh manager instead"
            )
    var_indexes = parsed.var_indexes
    lo_refs = parsed.lo_refs
    hi_refs = parsed.hi_refs
    make_node = manager._make_node
    node_of: List[int] = [FALSE_NODE, TRUE_NODE] + [0] * parsed.num_nodes
    var_arr = manager._var
    # `node_of` holds raw unprotected ids across every _make_node call; an
    # auto-reorder triggered by one of those allocations would reclaim the
    # nodes only this list references (contract lint RPL003), so the whole
    # replay loop inhibits reordering.
    with manager.postpone_reorder():
        for index in range(parsed.num_nodes):
            level = levels[var_indexes[index]]
            low = node_of[lo_refs[index]]
            high = node_of[hi_refs[index]]
            # Children must sit strictly deeper (terminals carry a sentinel
            # level far below everything); a violation means the var array
            # was corrupted in a way that preserved the checksum-verified
            # ranges.
            if var_arr[low] <= level or var_arr[high] <= level:
                raise ArtifactError("artifact violates the BDD level ordering")
            node_of[index + 2] = make_node(level, low, high)
    return {name: node_of[root] for name, root in parsed.manifest["roots"].items()}


def load_nodes(
    manager: BddManager, data: bytes, use_numpy: Optional[bool] = None
) -> Dict[str, int]:
    """Parse an artifact and splice it into ``manager`` in one call."""
    return splice_nodes(manager, parse_artifact(data, use_numpy=use_numpy))


def inspect_artifact(data: bytes) -> Dict[str, Any]:
    """A JSON-ready summary of an artifact (for ``repro artifact``).

    Verifies the checksum and structure like :func:`parse_artifact` but
    splices nothing; the summary carries sizes, the root names and the
    caller payload.
    """
    parsed = parse_artifact(data)
    manifest = parsed.manifest
    return {
        "format_version": FORMAT_VERSION,
        "bytes": parsed.total_bytes,
        "num_nodes": parsed.num_nodes,
        "num_variables": len(parsed.variables),
        "roots": sorted(manifest.get("roots", {})),
        "has_covers": bool(manifest.get("covers")),
        "payload": manifest.get("payload", {}),
    }
