"""Compilation of :class:`~repro.expr.ast.Expr` trees into BDDs."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..expr.ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var
from .manager import BddManager


def compile_expr(
    manager: BddManager, expr: Expr, cache: Optional[Dict[Expr, int]] = None
) -> int:
    """Compile an expression into a BDD node in ``manager``.

    Variables are declared on first use in the manager's current order; for
    reproducible node counts declare an explicit order first (see
    :func:`repro.bdd.ordering.interleaved_order`).

    A ``cache`` dictionary may be supplied to share compiled sub-expressions
    across calls against the same manager (the property checker does this so
    the environment formula and the derived moe equations are compiled once
    per session rather than once per claim).
    """
    if cache is None:
        cache = {}

    # The local cache holds raw node ids across many public operations, so
    # an automatic reorder in the middle could reclaim nodes only these
    # locals reference; postpone it until the compile finishes.
    postpone = manager.postpone_reorder

    def rec(node: Expr) -> int:
        if node in cache:
            return cache[node]
        if isinstance(node, Const):
            result = manager.true() if node.value else manager.false()
        elif isinstance(node, Var):
            result = manager.var(node.name)
        elif isinstance(node, Not):
            result = manager.not_(rec(node.operand))
        elif isinstance(node, And):
            result = manager.and_all(rec(op) for op in node.operands)
        elif isinstance(node, Or):
            result = manager.or_all(rec(op) for op in node.operands)
        elif isinstance(node, Implies):
            result = manager.implies(rec(node.antecedent), rec(node.consequent))
        elif isinstance(node, Iff):
            result = manager.iff(rec(node.left), rec(node.right))
        elif isinstance(node, Ite):
            result = manager.ite(rec(node.cond), rec(node.then), rec(node.orelse))
        else:
            raise TypeError(f"cannot compile node {type(node).__name__}")
        cache[node] = result
        return result

    with postpone():
        return rec(expr)


class ExprBddContext:
    """Convenience wrapper pairing a manager with an expression compiler.

    Provides the high-level decision procedures the specification layer
    needs: validity, satisfiability, equivalence and counterexamples.
    """

    def __init__(self, variable_order: Optional[Sequence[str]] = None):
        self.manager = BddManager(variable_order)
        self._cache: Dict[Expr, int] = {}
        # Compiled nodes persist in this cache; after a sweep, reclaimed
        # ids are reused and must not keep denoting old expressions.
        self.manager.add_sweep_hook(self._on_sweep)

    def _on_sweep(self, alive) -> None:
        self._cache = {expr: node for expr, node in self._cache.items() if alive(node)}

    def compile(self, expr: Expr) -> int:
        """Compile an expression to a BDD node (cached across calls)."""
        return compile_expr(self.manager, expr, self._cache)

    def is_valid(self, expr: Expr) -> bool:
        """Is the expression a tautology?"""
        return self.manager.is_true(self.compile(expr))

    def is_satisfiable(self, expr: Expr) -> bool:
        """Does the expression have a satisfying assignment?"""
        return not self.manager.is_false(self.compile(expr))

    def are_equivalent(self, left: Expr, right: Expr) -> bool:
        """Do two expressions denote the same boolean function?"""
        return self.compile(left) == self.compile(right)

    def counterexample(self, expr: Expr) -> Optional[Dict[str, bool]]:
        """An assignment falsifying ``expr``, or None if it is valid."""
        negation = self.manager.not_(self.compile(expr))
        return self.manager.pick_one(negation)

    def witness(self, expr: Expr) -> Optional[Dict[str, bool]]:
        """An assignment satisfying ``expr``, or None if unsatisfiable."""
        return self.manager.pick_one(self.compile(expr))
