"""A reduced ordered binary decision diagram (ROBDD) package.

The manager keeps a unique table of nodes so that structurally equal
functions share one node, which makes equivalence checking a pointer
comparison — exactly what the property checker in :mod:`repro.checking`
relies on to compare a pipeline interlock implementation with the derived
maximum-performance specification.

Nodes are integers indexing into the manager's node arrays.  The two
terminals are ``0`` (FALSE) and ``1`` (TRUE).  Complement edges are not
used; instead negation is a dedicated involution with its own cache, which
keeps the node representation simple while still making ``¬¬f`` and
``f ∧ ¬f`` constant time.

The operation kernel is iterative (explicit work stack, no Python recursion
limit) and memoises through a single operation-tagged cache: conjunction
and disjunction are normalised to a standardized form — commuted operands
are swapped into a canonical order and if-then-else triples that denote
them are rewritten to the tagged binary form — so calls that commute or
only differ syntactically hit the same memo entry.  Exclusive-or and
equivalence are expressed as if-then-else products (without complement
edges a dedicated xor form would materialise negated cones).
Quantification is a single multi-variable pass, and the fused
``and_exists`` relational product conjoins and quantifies in one sweep
without building the intermediate conjunction.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

FALSE_NODE = 0
TRUE_NODE = 1

_TERMINAL_LEVEL = 2**31


class CoverBudgetExceeded(RuntimeError):
    """Raised by :meth:`BddManager.isop` when a cover outgrows ``max_cubes``.

    Lets callers race the direct and the complemented cover of a function
    against each other without ever paying for the exponential side.
    """


class BddManager:
    """Owns the unique table, the variable order and all BDD operations."""

    def __init__(self, variable_order: Optional[Sequence[str]] = None):
        # Node storage: parallel lists indexed by node id.
        # Terminals occupy ids 0 and 1 with a sentinel level.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [FALSE_NODE, TRUE_NODE]
        self._high: List[int] = [FALSE_NODE, TRUE_NODE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation-tagged memo table shared by every operator: keys are
        # ('and'|'or', a, b) with a < b, ('ite', f, g, h) for triples that
        # do not reduce to a conjunction or disjunction, and
        # ('E'|'A'|'EA', ...) for the quantification sweeps.
        self._op_cache: Dict[tuple, int] = {}
        # Negation cache (an involution: both directions are stored).
        self._not_cache: Dict[int, int] = {}
        # Interned quantification variable sets: frozenset of levels -> key.
        self._quant_sets: Dict[frozenset, int] = {}
        self._quant_levels: List[Tuple[frozenset, int]] = []
        # ISOP (irredundant sum-of-products) memo: (lower, upper) -> (node, cubes).
        self._isop_cache: Dict[Tuple[int, int], Tuple[int, tuple]] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_vars: List[str] = []
        if variable_order is not None:
            for name in variable_order:
                self.declare(name)

    # -- variable management --------------------------------------------------

    def declare(self, name: str) -> int:
        """Declare a variable (idempotent) and return its level."""
        if name in self._var_levels:
            return self._var_levels[name]
        level = len(self._level_vars)
        self._var_levels[name] = level
        self._level_vars.append(name)
        return level

    def variable_order(self) -> List[str]:
        """The current variable order, outermost (top) first."""
        return list(self._level_vars)

    def level_of(self, name: str) -> int:
        """The level of a declared variable."""
        return self._var_levels[name]

    def var_at_level(self, level: int) -> str:
        """The variable name at a given level."""
        return self._level_vars[level]

    def num_nodes(self) -> int:
        """Total number of allocated nodes including terminals."""
        return len(self._level)

    # -- node construction -----------------------------------------------------

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """BDD for a single variable."""
        level = self.declare(name)
        return self._make_node(level, FALSE_NODE, TRUE_NODE)

    def nvar(self, name: str) -> int:
        """BDD for the negation of a single variable."""
        level = self.declare(name)
        return self._make_node(level, TRUE_NODE, FALSE_NODE)

    def true(self) -> int:
        """The TRUE terminal."""
        return TRUE_NODE

    def false(self) -> int:
        """The FALSE terminal."""
        return FALSE_NODE

    # -- normalisation ----------------------------------------------------------

    def _norm2(self, op: str, a: int, b: int):
        """Standardize a binary operation; an ``int`` result is already decided."""
        if op == "and":
            if a == FALSE_NODE or b == FALSE_NODE:
                return FALSE_NODE
            if a == TRUE_NODE:
                return b
            if b == TRUE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return FALSE_NODE
        else:  # or
            if a == TRUE_NODE or b == TRUE_NODE:
                return TRUE_NODE
            if a == FALSE_NODE:
                return b
            if b == FALSE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return TRUE_NODE
        if a > b:
            a, b = b, a
        return (op, a, b)

    def _norm_ite(self, f: int, g: int, h: int):
        """Standardize an if-then-else triple.

        Triples denoting a conjunction or disjunction are rewritten to the
        tagged commutative form so that, for example, ``ite(f, g, 0)`` and
        ``ite(g, f, 0)`` land on the same ``('and', ...)`` memo entry.
        Rewrites that would require a negation only fire when the negation
        is already in the cache (a free dictionary lookup); materialising
        new negated cones here would blow the unique table up instead of
        speeding anything up.
        """
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE:
            if h == FALSE_NODE:
                return f
            return self._norm2("or", f, h)
        if g == FALSE_NODE and h == TRUE_NODE:
            return self.not_(f)
        if h == FALSE_NODE:
            return self._norm2("and", f, g)
        if g == f:
            return self._norm2("or", f, h)
        if h == f:
            return self._norm2("and", f, g)
        nf = self._not_cache.get(f)
        if nf is not None:
            if h == TRUE_NODE or h == nf:
                return self._norm2("or", nf, g)
            if g == FALSE_NODE or g == nf:
                return self._norm2("and", nf, h)
        return ("ite", f, g, h)

    def _norm_quant(self, tag: str, node: int, quant_key: int):
        if node <= TRUE_NODE:
            return node
        if self._level[node] > self._quant_levels[quant_key][1]:
            return node
        return (tag, node, quant_key)

    def _norm_and_exists(self, f: int, g: int, quant_key: int):
        if f == FALSE_NODE or g == FALSE_NODE:
            return FALSE_NODE
        if f == g or g == TRUE_NODE:
            return self._norm_quant("E", f, quant_key)
        if f == TRUE_NODE:
            return self._norm_quant("E", g, quant_key)
        if self._not_cache.get(f) == g:
            return FALSE_NODE
        max_level = self._quant_levels[quant_key][1]
        if self._level[f] > max_level and self._level[g] > max_level:
            return self._norm2("and", f, g)
        if f > g:
            f, g = g, f
        return ("EA", f, g, quant_key)

    # -- the iterative operation kernel ------------------------------------------

    def _expand(self, key: tuple):
        """One-time expansion of a task frame: ``(level, low_key, high_key, combine)``.

        ``combine`` names how the two child results are joined: ``None`` for
        a plain node at ``level``, ``'or'``/``'and'`` for a quantified level
        (where ``low == 1``/``0`` respectively also short-circuits).
        """
        levels = self._level
        lows = self._low
        highs = self._high
        op = key[0]
        if op == "E" or op == "A":
            _, node, quant_key = key
            level = levels[node]
            low_key = self._norm_quant(op, lows[node], quant_key)
            high_key = self._norm_quant(op, highs[node], quant_key)
            if level in self._quant_levels[quant_key][0]:
                combine = "or" if op == "E" else "and"
            else:
                combine = None
            return level, low_key, high_key, combine
        if op == "EA":
            _, f, g, quant_key = key
            lf, lg = levels[f], levels[g]
            level = lf if lf < lg else lg
            if lf == level:
                f0, f1 = lows[f], highs[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = lows[g], highs[g]
            else:
                g0 = g1 = g
            low_key = self._norm_and_exists(f0, g0, quant_key)
            high_key = self._norm_and_exists(f1, g1, quant_key)
            combine = "or" if level in self._quant_levels[quant_key][0] else None
            return level, low_key, high_key, combine
        # 'and' | 'or' (only reached via quantification combine steps)
        _, a, b = key
        la, lb = levels[a], levels[b]
        level = la if la < lb else lb
        if la == level:
            a0, a1 = lows[a], highs[a]
        else:
            a0 = a1 = a
        if lb == level:
            b0, b1 = lows[b], highs[b]
        else:
            b0 = b1 = b
        return level, self._norm2(op, a0, b0), self._norm2(op, a1, b1), None

    def _run_binary(self, op: str, root_a: int, root_b: int) -> int:
        """Tight inlined work-stack loop for AND / OR (the hot operations).

        Conjunction and disjunction dominate every compile and check
        workload, so their cofactor expansion, child normalisation, memo
        lookup and unique-table insertion are all inlined into one loop —
        no helper calls, no per-frame allocations beyond small tuples.
        Children of an AND/OR task are always same-op tasks, so the loop
        never leaves its operation.
        """
        cache = self._op_cache
        unique = self._unique
        levels = self._level
        lows = self._low
        highs = self._high
        nots = self._not_cache
        is_and = op == "and"
        stack = [(root_a, root_b)]
        push = stack.append
        while stack:
            a, b = stack[-1]
            key = (op, a, b)
            if key in cache:
                stack.pop()
                continue
            la = levels[a]
            lb = levels[b]
            level = la if la < lb else lb
            if la == level:
                a0, a1 = lows[a], highs[a]
            else:
                a0 = a1 = a
            if lb == level:
                b0, b1 = lows[b], highs[b]
            else:
                b0 = b1 = b
            # Low child, normalisation inlined.
            if is_and:
                if a0 == 0 or b0 == 0:
                    low = 0
                elif a0 == 1:
                    low = b0
                elif b0 == 1:
                    low = a0
                elif a0 == b0:
                    low = a0
                elif nots.get(a0) == b0:
                    low = 0
                else:
                    child = (op, a0, b0) if a0 < b0 else (op, b0, a0)
                    low = cache.get(child)
                    if low is None:
                        push((child[1], child[2]))
                        continue
            else:
                if a0 == 1 or b0 == 1:
                    low = 1
                elif a0 == 0:
                    low = b0
                elif b0 == 0:
                    low = a0
                elif a0 == b0:
                    low = a0
                elif nots.get(a0) == b0:
                    low = 1
                else:
                    child = (op, a0, b0) if a0 < b0 else (op, b0, a0)
                    low = cache.get(child)
                    if low is None:
                        push((child[1], child[2]))
                        continue
            # High child.
            if is_and:
                if a1 == 0 or b1 == 0:
                    high = 0
                elif a1 == 1:
                    high = b1
                elif b1 == 1:
                    high = a1
                elif a1 == b1:
                    high = a1
                elif nots.get(a1) == b1:
                    high = 0
                else:
                    child = (op, a1, b1) if a1 < b1 else (op, b1, a1)
                    high = cache.get(child)
                    if high is None:
                        push((child[1], child[2]))
                        continue
            else:
                if a1 == 1 or b1 == 1:
                    high = 1
                elif a1 == 0:
                    high = b1
                elif b1 == 0:
                    high = a1
                elif a1 == b1:
                    high = a1
                elif nots.get(a1) == b1:
                    high = 1
                else:
                    child = (op, a1, b1) if a1 < b1 else (op, b1, a1)
                    high = cache.get(child)
                    if high is None:
                        push((child[1], child[2]))
                        continue
            # Unique-table insertion, inlined.
            if low == high:
                result = low
            else:
                nkey = (level, low, high)
                result = unique.get(nkey)
                if result is None:
                    result = len(levels)
                    levels.append(level)
                    lows.append(low)
                    highs.append(high)
                    unique[nkey] = result
            cache[key] = result
            stack.pop()
        return cache[(op, root_a, root_b)]

    def _run_ite(self, root_f: int, root_g: int, root_h: int) -> int:
        """Inlined work-stack loop for general if-then-else triples.

        Mirrors :meth:`_run_binary`: cofactor expansion, memo lookup and
        unique-table insertion are inlined; child triples that normalise to
        a conjunction or disjunction are delegated to the binary loop.
        """
        cache = self._op_cache
        unique = self._unique
        levels = self._level
        lows = self._low
        highs = self._high
        norm_ite = self._norm_ite
        stack = [(root_f, root_g, root_h)]
        push = stack.append
        while stack:
            f, g, h = stack[-1]
            key = ("ite", f, g, h)
            if key in cache:
                stack.pop()
                continue
            lf = levels[f]
            lg = levels[g]
            lh = levels[h]
            level = lf if lf < lg else lg
            if lh < level:
                level = lh
            if lf == level:
                f0, f1 = lows[f], highs[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = lows[g], highs[g]
            else:
                g0 = g1 = g
            if lh == level:
                h0, h1 = lows[h], highs[h]
            else:
                h0 = h1 = h
            low_key = norm_ite(f0, g0, h0)
            if type(low_key) is tuple:
                low = cache.get(low_key)
                if low is None:
                    if low_key[0] == "ite":
                        push((low_key[1], low_key[2], low_key[3]))
                        continue
                    low = self._run_binary(low_key[0], low_key[1], low_key[2])
            else:
                low = low_key
            high_key = norm_ite(f1, g1, h1)
            if type(high_key) is tuple:
                high = cache.get(high_key)
                if high is None:
                    if high_key[0] == "ite":
                        push((high_key[1], high_key[2], high_key[3]))
                        continue
                    high = self._run_binary(high_key[0], high_key[1], high_key[2])
            else:
                high = high_key
            if low == high:
                result = low
            else:
                nkey = (level, low, high)
                result = unique.get(nkey)
                if result is None:
                    result = len(levels)
                    levels.append(level)
                    lows.append(low)
                    highs.append(high)
                    unique[nkey] = result
            cache[key] = result
            stack.pop()
        return cache[("ite", root_f, root_g, root_h)]

    def _run(self, root: tuple) -> int:
        """Evaluate one normalised quantification task (and what it spawns).

        The generic engine for the quantification sweeps; AND/OR and
        if-then-else subtrees spawned by normalisation are delegated to the
        specialised inlined loops.  An explicit work stack replaces
        recursion, so operand depth is bounded by available memory rather
        than the Python recursion limit; a frame is re-examined after each
        missing child completes.
        """
        cache = self._op_cache
        stack = [root]
        push = stack.append
        while stack:
            key = stack[-1]
            if key in cache:
                stack.pop()
                continue
            level, low_key, high_key, combine = self._expand(key)
            if type(low_key) is tuple:
                low = cache.get(low_key)
                if low is None:
                    lop = low_key[0]
                    if lop == "and" or lop == "or":
                        low = self._run_binary(lop, low_key[1], low_key[2])
                    elif lop == "ite":
                        low = self._run_ite(low_key[1], low_key[2], low_key[3])
                    else:
                        push(low_key)
                        continue
            else:
                low = low_key
            if combine is not None and low == (TRUE_NODE if combine == "or" else FALSE_NODE):
                cache[key] = low
                stack.pop()
                continue
            if type(high_key) is tuple:
                high = cache.get(high_key)
                if high is None:
                    hop = high_key[0]
                    if hop == "and" or hop == "or":
                        high = self._run_binary(hop, high_key[1], high_key[2])
                    elif hop == "ite":
                        high = self._run_ite(high_key[1], high_key[2], high_key[3])
                    else:
                        push(high_key)
                        continue
            else:
                high = high_key
            if combine is None:
                cache[key] = self._make_node(level, low, high)
            else:
                cache[key] = self._binary(combine, low, high)
            stack.pop()
        return cache[root]

    def _binary(self, op: str, a: int, b: int) -> int:
        key = self._norm2(op, a, b)
        if type(key) is not tuple:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        return self._run_binary(key[0], key[1], key[2])

    # -- core operations --------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``f ? g : h``; all boolean ops reduce to it."""
        key = self._norm_ite(f, g, h)
        if type(key) is not tuple:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        if key[0] == "ite":
            return self._run_ite(key[1], key[2], key[3])
        return self._run_binary(key[0], key[1], key[2])

    def not_(self, f: int) -> int:
        """Negation (a cached involution: ``not_(not_(f))`` is free)."""
        if f <= TRUE_NODE:
            return TRUE_NODE - f
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        stack = [f]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            low, high = lows[node], highs[node]
            if low <= TRUE_NODE:
                nlow = TRUE_NODE - low
            else:
                nlow = cache.get(low)
                if nlow is None:
                    stack.append(low)
                    continue
            if high <= TRUE_NODE:
                nhigh = TRUE_NODE - high
            else:
                nhigh = cache.get(high)
                if nhigh is None:
                    stack.append(high)
                    continue
            result = self._make_node(levels[node], nlow, nhigh)
            cache[node] = result
            cache[result] = node
            stack.pop()
        return cache[f]

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self._binary("and", f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self._binary("or", f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE_NODE)

    def iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.ite(f, g, self.not_(g))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions."""
        out = TRUE_NODE
        for node in nodes:
            out = self._binary("and", out, node)
            if out == FALSE_NODE:
                return FALSE_NODE
        return out

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions."""
        out = FALSE_NODE
        for node in nodes:
            out = self._binary("or", out, node)
            if out == TRUE_NODE:
                return TRUE_NODE
        return out

    # -- restriction, composition, quantification -------------------------------

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with variable ``name`` fixed to ``value``."""
        level = self.declare(name)
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE) or self._level[node] > level:
                return node
            if node in cache:
                return cache[node]
            if self._level[node] == level:
                result = self._high[node] if value else self._low[node]
            else:
                low = rec(self._low[node])
                high = rec(self._high[node])
                result = self._make_node(self._level[node], low, high)
            cache[node] = result
            return result

        return rec(f)

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        level = self.declare(name)
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE) or self._level[node] > level:
                return node
            if node in cache:
                return cache[node]
            node_level = self._level[node]
            low = rec(self._low[node])
            high = rec(self._high[node])
            if node_level == level:
                result = self.ite(g, high, low)
            elif self._level[low] > node_level and self._level[high] > node_level:
                result = self._make_node(node_level, low, high)
            else:
                # Substitution below pulled in variables at or above this
                # level; rebuild through ite to restore the variable order.
                result = self.ite(
                    self._make_node(node_level, FALSE_NODE, TRUE_NODE), high, low
                )
            cache[node] = result
            return result

        return rec(f)

    def compose_many(self, f: int, mapping: Dict[str, int]) -> int:
        """Simultaneous substitution of several variables by functions.

        Implemented by recursion on levels using ``ite`` so the substitution
        really is simultaneous (inner compositions do not see each other's
        replacements).
        """
        if not mapping:
            return f
        levels = {self.declare(name): g for name, g in mapping.items()}
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE):
                return node
            if node in cache:
                return cache[node]
            level = self._level[node]
            low = rec(self._low[node])
            high = rec(self._high[node])
            if level in levels:
                result = self.ite(levels[level], high, low)
            elif self._level[low] > level and self._level[high] > level:
                result = self._make_node(level, low, high)
            else:
                # Substitution below pulled in variables at or above this
                # level; rebuild through ite to restore the variable order.
                result = self.ite(
                    self._make_node(level, FALSE_NODE, TRUE_NODE), high, low
                )
            cache[node] = result
            return result

        return rec(f)

    # -- generalized cofactors and covers ----------------------------------------

    @contextmanager
    def _level_bounded_recursion(self):
        """Lift the interpreter recursion limit to the depth the order needs.

        The operation kernel is iterative (PR 1) and never touches this,
        but the cover/cofactor algorithms below are clearest recursive and
        descend at most one frame per variable level — a *bounded* depth,
        unlike the operand-shaped recursion the kernel eliminated.  Wide
        orders (hundreds of registers expand to thousands of one-hot
        levels) would still trip CPython's default 1000-frame limit, so the
        limit is raised to cover the declared order and restored on exit.
        """
        depth = 0
        frame = sys._getframe()
        while frame is not None:
            depth += 1
            frame = frame.f_back
        needed = depth + 2 * len(self._level_vars) + 512
        previous = sys.getrecursionlimit()
        if previous >= needed:
            yield
            return
        sys.setrecursionlimit(needed)
        try:
            yield
        finally:
            sys.setrecursionlimit(previous)

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """The (low, high) cofactors of ``node`` with respect to ``level``."""
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def constrain(self, f: int, care: int) -> int:
        """The Coudert–Madre generalized cofactor ``f ↓ care`` (*constrain*).

        The result agrees with ``f`` everywhere ``care`` holds; outside the
        care set its value is chosen so the result is canonical in ``(f,
        care)``.  Useful as a caching-friendly image operator; for pure
        size reduction prefer :meth:`restrict_with`, which never pulls
        variables of ``care`` into the result that ``f`` does not mention.
        """
        if care == FALSE_NODE:
            raise ValueError("constrain against an empty care set is undefined")
        cache = self._op_cache

        def rec(f: int, c: int) -> int:
            if c == TRUE_NODE or f <= TRUE_NODE:
                return f
            if f == c:
                return TRUE_NODE
            if self._not_cache.get(f) == c:
                return FALSE_NODE
            key = ("constrain", f, c)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level = min(self._level[f], self._level[c])
            c0, c1 = self._cofactors(c, level)
            f0, f1 = self._cofactors(f, level)
            if c1 == FALSE_NODE:
                result = rec(f0, c0)
            elif c0 == FALSE_NODE:
                result = rec(f1, c1)
            else:
                result = self._make_node(level, rec(f0, c0), rec(f1, c1))
            cache[key] = result
            return result

        with self._level_bounded_recursion():
            return rec(f, care)

    def restrict_with(self, f: int, care: int) -> int:
        """The Coudert–Madre *restrict* operator: simplify ``f`` on the care set.

        Like :meth:`constrain` the result agrees with ``f`` wherever
        ``care`` holds, but care-set variables that ``f`` does not depend on
        are quantified away instead of copied into the result, so the
        output never grows support beyond ``f``'s.  The printers use it to
        shrink a function against environment assumptions before
        materializing a cover.
        """
        if care == FALSE_NODE:
            raise ValueError("restrict against an empty care set is undefined")
        cache = self._op_cache

        def rec(f: int, c: int) -> int:
            if c == TRUE_NODE or f <= TRUE_NODE:
                return f
            if f == c:
                return TRUE_NODE
            if self._not_cache.get(f) == c:
                return FALSE_NODE
            key = ("restrict", f, c)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level_f = self._level[f]
            level_c = self._level[c]
            if level_c < level_f:
                # f does not test this care variable: drop it existentially.
                result = rec(f, self._binary("or", self._low[c], self._high[c]))
            else:
                c0, c1 = self._cofactors(c, level_f)
                if c1 == FALSE_NODE:
                    result = rec(self._low[f], c0)
                elif c0 == FALSE_NODE:
                    result = rec(self._high[f], c1)
                else:
                    result = self._make_node(
                        level_f, rec(self._low[f], c0), rec(self._high[f], c1)
                    )
            cache[key] = result
            return result

        with self._level_bounded_recursion():
            return rec(f, care)

    def isop(
        self, lower: int, upper: int, max_cubes: Optional[int] = None
    ) -> Tuple[int, tuple]:
        """An irredundant sum-of-products between ``lower`` and ``upper``.

        Minato's ISOP algorithm: returns ``(node, cubes)`` where ``cubes``
        is a tuple of product terms — each a tuple of ``(level, polarity)``
        literals — whose disjunction denotes ``node``, with ``lower ≤ node ≤
        upper`` (callers must ensure ``lower`` implies ``upper``; pass the
        same node twice for an exact cover).  The cover is irredundant: no
        cube or literal can be dropped without uncovering part of ``lower``.
        Both the node and the cube list are memoised, so materializing the
        same function twice is free.

        ``max_cubes`` bounds the size of any intermediate cover; when
        exceeded :class:`CoverBudgetExceeded` is raised.  A mostly-true
        function has an exponential direct cover but a compact complement
        cover (or vice versa); the budget lets a caller try both sides
        without risking the exponential one.  Sub-results completed before
        an abort stay cached, so a retry (or the other polarity) reuses
        them.
        """
        cache = self._isop_cache

        def rec(lo: int, up: int) -> Tuple[int, tuple]:
            if lo == FALSE_NODE:
                return FALSE_NODE, ()
            if up == TRUE_NODE:
                return TRUE_NODE, ((),)
            key = (lo, up)
            cached = cache.get(key)
            if cached is not None:
                if max_cubes is not None and len(cached[1]) > max_cubes:
                    raise CoverBudgetExceeded(
                        f"cover exceeds {max_cubes} cubes"
                    )
                return cached
            level = min(self._level[lo], self._level[up])
            lo0, lo1 = self._cofactors(lo, level)
            up0, up1 = self._cofactors(up, level)
            # Cubes that must contain the negative literal of this variable
            # cover the part of the low on-set excluded from the high bound,
            # and dually for the positive literal.
            node0, cubes0 = rec(self._binary("and", lo0, self.not_(up1)), up0)
            node1, cubes1 = rec(self._binary("and", lo1, self.not_(up0)), up1)
            # Whatever the literal cubes left uncovered may be covered by
            # cubes that do not mention the variable at all.
            rest_lower = self._binary(
                "or",
                self._binary("and", lo0, self.not_(node0)),
                self._binary("and", lo1, self.not_(node1)),
            )
            node_d, cubes_d = rec(rest_lower, self._binary("and", up0, up1))
            node = self._binary(
                "or",
                self._binary(
                    "or",
                    self._binary("and", self._make_node(level, TRUE_NODE, FALSE_NODE), node0),
                    self._binary("and", self._make_node(level, FALSE_NODE, TRUE_NODE), node1),
                ),
                node_d,
            )
            cubes = (
                tuple(((level, False),) + cube for cube in cubes0)
                + tuple(((level, True),) + cube for cube in cubes1)
                + cubes_d
            )
            if max_cubes is not None and len(cubes) > max_cubes:
                raise CoverBudgetExceeded(f"cover exceeds {max_cubes} cubes")
            result = (node, cubes)
            cache[key] = result
            return result

        with self._level_bounded_recursion():
            return rec(lower, upper)

    def isop_cover(self, f: int, care: Optional[int] = None) -> List[Dict[str, bool]]:
        """An irredundant SOP cover of ``f`` as name-keyed cubes.

        With a ``care`` set the cover only needs to match ``f`` on the care
        set (assignments outside it are don't-cares), which typically gives
        a smaller cover; the bounds are then ``f ∧ care ≤ cover ≤ f ∨
        ¬care``.
        """
        if care is None:
            lower = upper = f
        else:
            lower = self._binary("and", f, care)
            upper = self._binary("or", f, self.not_(care))
        _, cubes = self.isop(lower, upper)
        return [
            {self._level_vars[level]: polarity for level, polarity in cube}
            for cube in cubes
        ]

    def _quant_key(self, names: Iterable[str]) -> Optional[int]:
        levels = frozenset(self.declare(name) for name in names)
        if not levels:
            return None
        key = self._quant_sets.get(levels)
        if key is None:
            key = len(self._quant_levels)
            self._quant_sets[levels] = key
            self._quant_levels.append((levels, max(levels)))
        return key

    def _quantify(self, tag: str, f: int, names: Iterable[str]) -> int:
        quant_key = self._quant_key(names)
        if quant_key is None:
            return f
        key = self._norm_quant(tag, f, quant_key)
        if type(key) is not tuple:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        return self._run(key)

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables.

        A single memoised pass over the BDD quantifies every variable at
        once (rather than two cofactor rebuilds per variable), and the memo
        survives across calls with the same variable set.
        """
        return self._quantify("E", f, names)

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables (one fused pass)."""
        return self._quantify("A", f, names)

    def and_exists(self, f: int, g: int, names: Iterable[str]) -> int:
        """The relational product ``∃ names . f ∧ g`` in one fused sweep.

        Equivalent to ``exists(and_(f, g), names)`` but never materialises
        the conjunction: quantified levels turn into disjunctions on the
        way back up, and a TRUE low branch short-circuits the high branch.
        """
        quant_key = self._quant_key(names)
        if quant_key is None:
            return self._binary("and", f, g)
        key = self._norm_and_exists(f, g, quant_key)
        if type(key) is not tuple:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        return self._run(key)

    # -- queries -----------------------------------------------------------------

    def is_true(self, f: int) -> bool:
        """Is ``f`` the constant TRUE function?"""
        return f == TRUE_NODE

    def is_false(self, f: int) -> bool:
        """Is ``f`` the constant FALSE function?"""
        return f == FALSE_NODE

    def equivalent(self, f: int, g: int) -> bool:
        """Are ``f`` and ``g`` the same function?  Constant time."""
        return f == g

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support variables."""
        node = f
        while node not in (FALSE_NODE, TRUE_NODE):
            name = self._level_vars[self._level[node]]
            try:
                value = assignment[name]
            except KeyError as exc:
                raise KeyError(f"assignment is missing variable {name!r}") from exc
            node = self._high[node] if value else self._low[node]
        return node == TRUE_NODE

    def support(self, f: int) -> frozenset:
        """The set of variables the function actually depends on."""
        seen = set()
        names = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE_NODE, TRUE_NODE) or node in seen:
                continue
            seen.add(node)
            names.add(self._level_vars[self._level[node]])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(names)

    def sat_count(self, f: int, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``over`` (default: support)."""
        names = list(over) if over is not None else sorted(self.support(f))
        for name in names:
            self.declare(name)
        levels = sorted(self._var_levels[name] for name in names)
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"counting variables {sorted(missing)} are not in 'over'")
        index_of_level = {level: idx for idx, level in enumerate(levels)}
        total_levels = len(levels)
        cache: Dict[int, int] = {}

        def count_below(node: int, from_index: int) -> int:
            # Number of solutions of the sub-function over variables at
            # positions >= from_index.
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1 << (total_levels - from_index)
            key = node
            node_index = index_of_level[self._level[node]]
            gap = node_index - from_index
            if key in cache:
                return cache[key] << gap
            low = count_below(self._low[node], node_index + 1)
            high = count_below(self._high[node], node_index + 1)
            cache[key] = low + high
            return (low + high) << gap

        return count_below(f, 0)

    def find_difference(self, f: int, g: int) -> Optional[Dict[str, bool]]:
        """One assignment on which ``f`` and ``g`` disagree, or None.

        Walks the two DAGs in lock step without materialising ``f ⊕ g``;
        pairs proven difference-free are memoised, so the search is linear
        in the number of reachable node pairs.
        """
        if f == g:
            return None
        no_difference: set = set()
        assignment: Dict[str, bool] = {}

        def rec(a: int, b: int) -> bool:
            if a == b:
                return False
            la, lb = self._level[a], self._level[b]
            level = la if la < lb else lb
            if level == _TERMINAL_LEVEL:
                return True  # two distinct terminals
            pair = (a, b)
            if pair in no_difference:
                return False
            a0, a1 = (self._low[a], self._high[a]) if la == level else (a, a)
            b0, b1 = (self._low[b], self._high[b]) if lb == level else (b, b)
            name = self._level_vars[level]
            assignment[name] = False
            if rec(a0, b0):
                return True
            assignment[name] = True
            if rec(a1, b1):
                return True
            del assignment[name]
            no_difference.add(pair)
            return False

        if not rec(f, g):  # pragma: no cover - f != g guarantees a witness
            return None
        for name in self.support(f) | self.support(g):
            assignment.setdefault(name, False)
        return assignment

    def pick_one(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support of ``f``, or None."""
        if f == FALSE_NODE:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while node not in (FALSE_NODE, TRUE_NODE):
            name = self._level_vars[self._level[node]]
            if self._high[node] != FALSE_NODE:
                assignment[name] = True
                node = self._high[node]
            else:
                assignment[name] = False
                node = self._low[node]
        for name in self.support(f):
            assignment.setdefault(name, False)
        return assignment

    def all_sat(self, f: int, over: Optional[Sequence[str]] = None) -> Iterator[Dict[str, bool]]:
        """Enumerate all satisfying assignments over ``over`` (default: support).

        Enumeration follows the manager's variable order: the BDD is walked
        top-down, so ``over`` is traversed from the outermost declared level
        inward regardless of the order (or names) the caller supplied.
        """
        pool = sorted(set(over)) if over is not None else sorted(self.support(f))
        for name in pool:
            self.declare(name)
        names = sorted(pool, key=self._var_levels.__getitem__)
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"enumeration variables {sorted(missing)} are not in 'over'")
        name_levels = [self._var_levels[name] for name in names]

        def rec(node: int, index: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == FALSE_NODE:
                return
            if index == len(names):
                if node == TRUE_NODE:
                    yield dict(partial)
                return
            name = names[index]
            level = name_levels[index]
            for value in (False, True):
                if node in (FALSE_NODE, TRUE_NODE):
                    child = node
                elif self._level[node] == level:
                    child = self._high[node] if value else self._low[node]
                else:
                    child = node
                partial[name] = value
                yield from rec(child, index + 1, partial)
            del partial[name]

        yield from rec(f, 0, {})

    def dag_size(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (excluding terminals)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE_NODE, TRUE_NODE) or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
