"""A reduced ordered binary decision diagram (ROBDD) package.

The manager keeps a unique table of nodes so that structurally equal
functions share one node, which makes equivalence checking a pointer
comparison — exactly what the property checker in :mod:`repro.checking`
relies on to compare a pipeline interlock implementation with the derived
maximum-performance specification.

Nodes are integers indexing into the manager's node store.  The two
terminals are ``0`` (FALSE) and ``1`` (TRUE).  Complement edges are not
used; instead negation is a dedicated involution with its own cache, which
keeps the node representation simple while still making ``¬¬f`` and
``f ∧ ¬f`` constant time.

Storage layout (the array kernel)
---------------------------------

The node store is struct-of-arrays: three parallel flat vectors ``_var``
/ ``_lo`` / ``_hi`` hold the level and the two children of every node
(plain lists — on CPython an indexed list read is measurably faster than
``array('q')``, which re-boxes every element), and ``_ref`` is an
``array('q')`` of external protection counts for garbage collection (a
contiguous buffer numpy can view zero-copy when marking roots).  A freed
slot has ``_var[i] == -1`` and sits on the free list; allocation reuses
freed slots before growing the vectors, so node ids are stable across
collections.

The unique table is split per level: each level owns a dict mapping the
packed ``(lo << 26) | hi`` key to the node id.  CPython dicts *are*
open-addressed tables implemented in C — a hand-rolled linear-probe
loop in bytecode is ~3x slower per probe — so the dict is the fastest
available open-addressed backing.  GC and sifting rebuild the per-level
tables from the surviving nodes; splitting by level is what makes an
adjacent-level swap O(size of the two levels) instead of O(all nodes).

All memo tables are flat dictionaries keyed on packed machine integers:
an operation key packs its operands into one int with a 3-bit operation
tag in the low bits, so the hot loops of apply, fused quantification,
composition and ISOP never build key tuples.  Because every packed key
is at least ``2 ** 26`` (operands are shifted left past the node-id
width) an ``int`` result can be told apart from a pending task by a
single comparison against :data:`_NODE_LIMIT`.

The operation kernel is iterative (explicit work stack, no Python
recursion limit): conjunction and disjunction are normalised to a
standardized form — commuted operands are swapped into a canonical order
and if-then-else triples that denote them are rewritten to the tagged
binary form — so calls that commute or only differ syntactically hit the
same memo entry.  Quantification is a single multi-variable pass, and
the fused ``and_exists`` relational product conjoins and quantifies in
one sweep without building the intermediate conjunction.

Garbage collection and reordering
---------------------------------

:meth:`BddManager.gc` is a mark-and-sweep over the flat arrays: roots
are the nodes with a positive ``_ref`` count (see :meth:`protect` /
:meth:`release`; ``SymbolicFunction`` handles protect their node
automatically) plus any ``extra_roots``.  Sweeping clears the operation
and ISOP memo tables, filters the negation cache down to live pairs,
rebuilds the per-level unique tables and invokes registered sweep hooks
so higher layers can drop entries for reclaimed ids (crucial: ids are
reused, so a stale cache entry would silently alias a new function).
When numpy is available the mark phase runs vectorised over views of the
node arrays; set ``REPRO_PURE_ARRAY=1`` (or pass ``use_numpy=False``) to
force the pure-``array`` fallback.

:meth:`BddManager.reorder` is Rudell-style sifting built on in-place
adjacent-level swaps: a swap relabels and rewrites nodes *in place*, so
node ids keep denoting the same functions and caller-held handles stay
valid.  Nodes orphaned by a swap are reclaimed immediately through an
in-degree cascade, which is what gives sifting a size signal to descend.
Because of that reclamation, every externally held node must be
protected (or held through a ``SymbolicFunction``) before calling
``reorder`` — the same contract as ``gc``.  An automatic trigger on
unique-table growth is available via ``auto_reorder_threshold`` and is
off by default: it is only safe for workloads that protect every raw
node id they hold across public operations.
"""

from __future__ import annotations

import os
import sys
from array import array
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the REPRO_PURE_ARRAY CI leg
    if os.environ.get("REPRO_PURE_ARRAY"):
        raise ImportError("pure-array mode forced by REPRO_PURE_ARRAY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

FALSE_NODE = 0
TRUE_NODE = 1

_TERMINAL_LEVEL = 2**31

# Node ids are packed into 26-bit fields of the integer cache keys, so the
# store is capped at ~67M nodes — far beyond what fits in memory here, but
# checked on allocation so overflow can never corrupt a packed key.
_NODE_BITS = 26
_NODE_LIMIT = 1 << _NODE_BITS
_NODE_MASK = _NODE_LIMIT - 1

# Operation tags occupy the low 3 bits of every packed cache key.
_TAG_AND = 0
_TAG_OR = 1
_TAG_ITE = 2
_TAG_E = 3
_TAG_A = 4
_TAG_EA = 5
_TAG_CONSTRAIN = 6
_TAG_RESTRICT = 7

class CoverBudgetExceeded(RuntimeError):
    """Raised by :meth:`BddManager.isop` when a cover outgrows ``max_cubes``.

    Lets callers race the direct and the complemented cover of a function
    against each other without ever paying for the exponential side.
    """


@dataclass
class BddStats:
    """A snapshot of kernel health counters (see :meth:`BddManager.stats`)."""

    live_nodes: int
    allocated_slots: int
    free_slots: int
    num_vars: int
    unique_entries: int
    unique_capacity: int
    load_factor: float
    op_cache_entries: int
    not_cache_entries: int
    isop_cache_entries: int
    cache_hits: int
    cache_misses: int
    hit_rate: float
    gc_runs: int
    gc_reclaimed: int
    reorder_runs: int
    reorder_swaps: int

    def as_dict(self) -> Dict[str, float]:
        """The counters as a plain JSON-friendly dict."""
        return {
            "live_nodes": self.live_nodes,
            "allocated_slots": self.allocated_slots,
            "free_slots": self.free_slots,
            "num_vars": self.num_vars,
            "unique_entries": self.unique_entries,
            "unique_capacity": self.unique_capacity,
            "load_factor": round(self.load_factor, 4),
            "op_cache_entries": self.op_cache_entries,
            "not_cache_entries": self.not_cache_entries,
            "isop_cache_entries": self.isop_cache_entries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 4),
            "gc_runs": self.gc_runs,
            "gc_reclaimed": self.gc_reclaimed,
            "reorder_runs": self.reorder_runs,
            "reorder_swaps": self.reorder_swaps,
        }

    def describe(self) -> str:
        """A compact human-readable rendering for ``--verbose`` output."""
        return (
            f"nodes: {self.live_nodes} live / {self.allocated_slots} allocated"
            f" ({self.free_slots} free), {self.num_vars} variables\n"
            f"unique table: {self.unique_entries} entries in"
            f" {self.unique_capacity} slots (load {self.load_factor:.2f})\n"
            f"caches: op {self.op_cache_entries}, not {self.not_cache_entries},"
            f" isop {self.isop_cache_entries};"
            f" hit rate {self.hit_rate:.1%}"
            f" ({self.cache_hits} hits / {self.cache_misses} misses)\n"
            f"gc: {self.gc_runs} runs, {self.gc_reclaimed} nodes reclaimed;"
            f" reorder: {self.reorder_runs} runs, {self.reorder_swaps} swaps"
        )


class BddManager:
    """Owns the node store, the variable order and all BDD operations."""

    def __new__(cls, *args, **kwargs):
        # REPRO_SANITIZE=1 transparently swaps every manager for the
        # contract-enforcing subclass (checked at construction time, like
        # REPRO_PURE_ARRAY): use-after-free and cross-manager node mixing
        # raise instead of silently aliasing, memo tables are validated
        # after every sweep, and unreleased protections are tracked by
        # call site.  Zero cost when the variable is unset — this branch
        # is the only hook and the devtools package is never imported.
        if cls is BddManager and os.environ.get("REPRO_SANITIZE"):
            from ..devtools.sanitizer import SanitizedBddManager

            return super().__new__(SanitizedBddManager)
        return super().__new__(cls)

    def __init__(
        self,
        variable_order: Optional[Sequence[str]] = None,
        *,
        auto_reorder_threshold: Optional[int] = None,
        use_numpy: Optional[bool] = None,
        balanced_reduce: bool = False,
    ):
        # Struct-of-arrays node store; terminals occupy ids 0 and 1 with a
        # sentinel level.  A freed slot has _var[i] == -1.
        self._var: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._lo: List[int] = [FALSE_NODE, TRUE_NODE]
        self._hi: List[int] = [FALSE_NODE, TRUE_NODE]
        self._ref = array("q", (0, 0))
        self._free: List[int] = []
        # Per-level unique tables: packed (lo << 26) | hi key -> node id.
        self._utables: List[Dict[int, int]] = []
        self._entries = 0
        # Operation memo table shared by every operator, keyed on packed
        # integers (operands shifted left, 3-bit tag in the low bits).
        self._op_cache: Dict[int, int] = {}
        # Negation cache (an involution: both directions are stored).
        self._not_cache: Dict[int, int] = {}
        # Interned quantification variable sets: frozenset of levels -> key.
        self._quant_sets: Dict[frozenset, int] = {}
        self._quant_levels: List[Tuple[frozenset, int]] = []
        self._quant_names: List[frozenset] = []
        # ISOP memo: packed (lower << 26) | upper -> (node, cubes).
        # key -> (node, cube_count, spine); see isop() for the spine encoding.
        self._isop_cache: Dict[int, tuple] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_vars: List[str] = []
        # How and_all/or_all combine their operands; see _reduce_connective.
        self._balanced_reduce = balanced_reduce
        # GC / reorder machinery.
        self._sweep_hooks: List[Callable[[Callable[[int], bool]], None]] = []
        self._reorder_inhibit = 0
        self._auto_reorder_threshold = auto_reorder_threshold
        if use_numpy is None:
            use_numpy = _np is not None
        self._numpy = _np if (use_numpy and _np is not None) else None
        # Health counters.
        self._hits = 0
        self._misses = 0
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        if variable_order is not None:
            for name in variable_order:
                self.declare(name)

    # -- variable management --------------------------------------------------

    def declare(self, name: str) -> int:
        """Declare a variable (idempotent) and return its level."""
        level = self._var_levels.get(name)
        if level is not None:
            return level
        level = len(self._level_vars)
        self._var_levels[name] = level
        self._level_vars.append(name)
        self._utables.append({})
        return level

    def variable_order(self) -> List[str]:
        """The current variable order, outermost (top) first."""
        return list(self._level_vars)

    def level_of(self, name: str) -> int:
        """The level of a declared variable."""
        return self._var_levels[name]

    def var_at_level(self, level: int) -> str:
        """The variable name at a given level."""
        return self._level_vars[level]

    def num_nodes(self) -> int:
        """Number of live (allocated, not freed) nodes including terminals."""
        return self._entries + 2

    # -- unique tables ---------------------------------------------------------
    #
    # Each level's table maps the packed ``(lo << 26) | hi`` key to the node
    # id.  The mapping is a plain dict: CPython dicts are open-addressed
    # hash tables implemented in C, and a packed-int-keyed dict probe beats
    # any probe sequence interpreted in bytecode by ~3x.  The per-level
    # split (rather than one global table) is what keeps an adjacent-level
    # swap proportional to the two levels involved.

    def _table_insert(self, level: int, node: int) -> None:
        """Insert an existing node into its level table (swap/rebuild path)."""
        self._utables[level][(self._lo[node] << _NODE_BITS) | self._hi[node]] = node

    def _table_remove(self, level: int, node: int) -> None:
        """Remove a node from its level table."""
        del self._utables[level][(self._lo[node] << _NODE_BITS) | self._hi[node]]

    def _table_nodes(self, level: int) -> List[int]:
        return list(self._utables[level].values())

    # -- node construction -----------------------------------------------------

    def _alloc(self, level: int, low: int, high: int) -> int:
        if self._free:
            node = self._free.pop()
            self._var[node] = level
            self._lo[node] = low
            self._hi[node] = high
        else:
            node = len(self._var)
            if node >= _NODE_LIMIT:  # pragma: no cover - 67M-node ceiling
                raise MemoryError("BDD node store exceeded 2**26 nodes")
            self._var.append(level)
            self._lo.append(low)
            self._hi.append(high)
            self._ref.append(0)
        return node

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        table = self._utables[level]
        k = (low << _NODE_BITS) | high
        node = table.get(k)
        if node is None:
            node = self._alloc(level, low, high)
            table[k] = node
            self._entries += 1
        return node

    def var(self, name: str) -> int:
        """BDD for a single variable."""
        level = self.declare(name)
        return self._make_node(level, FALSE_NODE, TRUE_NODE)

    def nvar(self, name: str) -> int:
        """BDD for the negation of a single variable."""
        level = self.declare(name)
        return self._make_node(level, TRUE_NODE, FALSE_NODE)

    def true(self) -> int:
        """The TRUE terminal."""
        return TRUE_NODE

    def false(self) -> int:
        """The FALSE terminal."""
        return FALSE_NODE

    # -- normalisation ----------------------------------------------------------

    def _norm2(self, tag: int, a: int, b: int) -> int:
        """Standardize a binary operation.

        Returns either a decided node id (``< _NODE_LIMIT``) or a packed
        task key with canonically ordered operands.
        """
        if tag == _TAG_AND:
            if a == FALSE_NODE or b == FALSE_NODE:
                return FALSE_NODE
            if a == TRUE_NODE:
                return b
            if b == TRUE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return FALSE_NODE
        else:  # or
            if a == TRUE_NODE or b == TRUE_NODE:
                return TRUE_NODE
            if a == FALSE_NODE:
                return b
            if b == FALSE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return TRUE_NODE
        if a > b:
            a, b = b, a
        return (((a << _NODE_BITS) | b) << 3) | tag

    def _norm_ite(self, f: int, g: int, h: int) -> int:
        """Standardize an if-then-else triple into a decided node or a task key.

        Triples denoting a conjunction or disjunction are rewritten to the
        tagged commutative form so that, for example, ``ite(f, g, 0)`` and
        ``ite(g, f, 0)`` land on the same memo entry.  Rewrites that would
        require a negation only fire when the negation is already in the
        cache (a free dictionary lookup); materialising new negated cones
        here would blow the unique table up instead of speeding anything
        up.
        """
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE:
            if h == FALSE_NODE:
                return f
            return self._norm2(_TAG_OR, f, h)
        if g == FALSE_NODE and h == TRUE_NODE:
            return self.not_(f)
        if h == FALSE_NODE:
            return self._norm2(_TAG_AND, f, g)
        if g == f:
            return self._norm2(_TAG_OR, f, h)
        if h == f:
            return self._norm2(_TAG_AND, f, g)
        nf = self._not_cache.get(f)
        if nf is not None:
            if h == TRUE_NODE or h == nf:
                return self._norm2(_TAG_OR, nf, g)
            if g == FALSE_NODE or g == nf:
                return self._norm2(_TAG_AND, nf, h)
        return ((((f << _NODE_BITS) | g) << _NODE_BITS | h) << 3) | _TAG_ITE

    def _norm_quant(self, tag: int, node: int, quant_key: int) -> int:
        if node <= TRUE_NODE:
            return node
        if self._var[node] > self._quant_levels[quant_key][1]:
            return node
        return (((node << _NODE_BITS) | quant_key) << 3) | tag

    def _norm_and_exists(self, f: int, g: int, quant_key: int) -> int:
        if f == FALSE_NODE or g == FALSE_NODE:
            return FALSE_NODE
        if f == g or g == TRUE_NODE:
            return self._norm_quant(_TAG_E, f, quant_key)
        if f == TRUE_NODE:
            return self._norm_quant(_TAG_E, g, quant_key)
        if self._not_cache.get(f) == g:
            return FALSE_NODE
        max_level = self._quant_levels[quant_key][1]
        if self._var[f] > max_level and self._var[g] > max_level:
            return self._norm2(_TAG_AND, f, g)
        if f > g:
            f, g = g, f
        return ((((f << _NODE_BITS) | g) << _NODE_BITS | quant_key) << 3) | _TAG_EA

    # -- the iterative operation kernel ------------------------------------------

    def _run_binary(self, tag: int, root_a: int, root_b: int) -> int:
        """Tight inlined work-stack loop for AND / OR (the hot operations).

        Conjunction and disjunction dominate every compile and check
        workload, so their cofactor expansion, child normalisation, memo
        lookup and unique-table insertion are all inlined into one loop.
        Frames and cache keys are packed machine integers — no per-frame
        tuple allocation at all.  Children of an AND/OR task are always
        same-op tasks, so the loop never leaves its operation.
        """
        cache = self._op_cache
        cache_get = cache.get
        var = self._var
        lows = self._lo
        highs = self._hi
        nots_get = self._not_cache.get
        utables = self._utables
        free = self._free
        ref_append = self._ref.append
        var_append = self._var.append
        lo_append = self._lo.append
        hi_append = self._hi.append
        entries_added = 0
        is_and = tag == _TAG_AND
        stack = [(root_a << _NODE_BITS) | root_b]
        push = stack.append
        while stack:
            frame = stack[-1]
            key = (frame << 3) | tag
            if key in cache:
                stack.pop()
                continue
            a = frame >> _NODE_BITS
            b = frame & _NODE_MASK
            la = var[a]
            lb = var[b]
            level = la if la < lb else lb
            if la == level:
                a0, a1 = lows[a], highs[a]
            else:
                a0 = a1 = a
            if lb == level:
                b0, b1 = lows[b], highs[b]
            else:
                b0 = b1 = b
            # Both children are normalised and probed before any push, so a
            # frame whose children both miss is reprocessed once, not twice.
            # -1 marks a cache miss (node ids and task results are >= 0).
            child_lo = child_hi = -1
            if is_and:
                if a0 == 0 or b0 == 0:
                    low = 0
                elif a0 == 1:
                    low = b0
                elif b0 == 1:
                    low = a0
                elif a0 == b0:
                    low = a0
                elif nots_get(a0) == b0:
                    low = 0
                else:
                    child_lo = (a0 << _NODE_BITS) | b0 if a0 < b0 else (b0 << _NODE_BITS) | a0
                    low = cache_get((child_lo << 3) | tag, -1)
                if a1 == 0 or b1 == 0:
                    high = 0
                elif a1 == 1:
                    high = b1
                elif b1 == 1:
                    high = a1
                elif a1 == b1:
                    high = a1
                elif nots_get(a1) == b1:
                    high = 0
                else:
                    child_hi = (a1 << _NODE_BITS) | b1 if a1 < b1 else (b1 << _NODE_BITS) | a1
                    high = cache_get((child_hi << 3) | tag, -1)
            else:
                if a0 == 1 or b0 == 1:
                    low = 1
                elif a0 == 0:
                    low = b0
                elif b0 == 0:
                    low = a0
                elif a0 == b0:
                    low = a0
                elif nots_get(a0) == b0:
                    low = 1
                else:
                    child_lo = (a0 << _NODE_BITS) | b0 if a0 < b0 else (b0 << _NODE_BITS) | a0
                    low = cache_get((child_lo << 3) | tag, -1)
                if a1 == 1 or b1 == 1:
                    high = 1
                elif a1 == 0:
                    high = b1
                elif b1 == 0:
                    high = a1
                elif a1 == b1:
                    high = a1
                elif nots_get(a1) == b1:
                    high = 1
                else:
                    child_hi = (a1 << _NODE_BITS) | b1 if a1 < b1 else (b1 << _NODE_BITS) | a1
                    high = cache_get((child_hi << 3) | tag, -1)
            if low < 0:
                push(child_lo)
                if high < 0 and child_hi != child_lo:
                    push(child_hi)
                continue
            if high < 0:
                push(child_hi)
                continue
            # Unique-table insertion, inlined (including allocation).
            if low == high:
                result = low
            else:
                table = utables[level]
                k = (low << _NODE_BITS) | high
                result = table.get(k)
                if result is None:
                    if free:
                        result = free.pop()
                        var[result] = level
                        lows[result] = low
                        highs[result] = high
                    else:
                        result = len(var)
                        if result >= _NODE_LIMIT:  # pragma: no cover
                            raise MemoryError("BDD node store exceeded 2**26 nodes")
                        var_append(level)
                        lo_append(low)
                        hi_append(high)
                        ref_append(0)
                    table[k] = result
                    entries_added += 1
            cache[key] = result
            stack.pop()
        self._entries += entries_added
        return cache[(((root_a << _NODE_BITS) | root_b) << 3) | tag]

    def _run_ite(self, root_f: int, root_g: int, root_h: int) -> int:
        """Inlined work-stack loop for general if-then-else triples.

        Mirrors :meth:`_run_binary`: cofactor expansion, memo lookup and
        unique-table insertion are inlined; child triples that normalise
        to a conjunction or disjunction are delegated to the binary loop.
        """
        cache = self._op_cache
        var = self._var
        lows = self._lo
        highs = self._hi
        norm_ite = self._norm_ite
        stack = [((root_f << _NODE_BITS) | root_g) << _NODE_BITS | root_h]
        push = stack.append
        while stack:
            frame = stack[-1]
            key = (frame << 3) | _TAG_ITE
            if key in cache:
                stack.pop()
                continue
            h = frame & _NODE_MASK
            g = (frame >> _NODE_BITS) & _NODE_MASK
            f = frame >> (2 * _NODE_BITS)
            lf = var[f]
            lg = var[g]
            lh = var[h]
            level = lf if lf < lg else lg
            if lh < level:
                level = lh
            if lf == level:
                f0, f1 = lows[f], highs[f]
            else:
                f0 = f1 = f
            if lg == level:
                g0, g1 = lows[g], highs[g]
            else:
                g0 = g1 = g
            if lh == level:
                h0, h1 = lows[h], highs[h]
            else:
                h0 = h1 = h
            low_key = norm_ite(f0, g0, h0)
            if low_key >= _NODE_LIMIT:
                low = cache.get(low_key)
                if low is None:
                    ctag = low_key & 7
                    if ctag == _TAG_ITE:
                        push(low_key >> 3)
                        continue
                    body = low_key >> 3
                    low = self._run_binary(ctag, body >> _NODE_BITS, body & _NODE_MASK)
            else:
                low = low_key
            high_key = norm_ite(f1, g1, h1)
            if high_key >= _NODE_LIMIT:
                high = cache.get(high_key)
                if high is None:
                    ctag = high_key & 7
                    if ctag == _TAG_ITE:
                        push(high_key >> 3)
                        continue
                    body = high_key >> 3
                    high = self._run_binary(ctag, body >> _NODE_BITS, body & _NODE_MASK)
            else:
                high = high_key
            cache[key] = self._make_node(level, low, high)
            stack.pop()
        return cache[((((root_f << _NODE_BITS) | root_g) << _NODE_BITS | root_h) << 3) | _TAG_ITE]

    def _expand(self, key: int):
        """One-time expansion of a quantification task frame.

        Returns ``(level, low_key, high_key, combine)`` where ``combine``
        names how the two child results are joined: ``-1`` for a plain
        node at ``level``, or a binary tag for a quantified level (where
        a dominant low result also short-circuits).
        """
        var = self._var
        lows = self._lo
        highs = self._hi
        tag = key & 7
        body = key >> 3
        if tag == _TAG_E or tag == _TAG_A:
            quant_key = body & _NODE_MASK
            node = body >> _NODE_BITS
            level = var[node]
            low_key = self._norm_quant(tag, lows[node], quant_key)
            high_key = self._norm_quant(tag, highs[node], quant_key)
            if level in self._quant_levels[quant_key][0]:
                combine = _TAG_OR if tag == _TAG_E else _TAG_AND
            else:
                combine = -1
            return level, low_key, high_key, combine
        # _TAG_EA
        quant_key = body & _NODE_MASK
        rest = body >> _NODE_BITS
        g = rest & _NODE_MASK
        f = rest >> _NODE_BITS
        lf, lg = var[f], var[g]
        level = lf if lf < lg else lg
        if lf == level:
            f0, f1 = lows[f], highs[f]
        else:
            f0 = f1 = f
        if lg == level:
            g0, g1 = lows[g], highs[g]
        else:
            g0 = g1 = g
        low_key = self._norm_and_exists(f0, g0, quant_key)
        high_key = self._norm_and_exists(f1, g1, quant_key)
        combine = _TAG_OR if level in self._quant_levels[quant_key][0] else -1
        return level, low_key, high_key, combine

    def _run(self, root: int) -> int:
        """Evaluate one normalised quantification task (and what it spawns).

        The generic engine for the quantification sweeps; AND/OR subtrees
        spawned by normalisation are delegated to the specialised inlined
        loop.  An explicit work stack replaces recursion, so operand depth
        is bounded by available memory rather than the Python recursion
        limit; a frame is re-examined after each missing child completes.
        """
        cache = self._op_cache
        stack = [root]
        push = stack.append
        while stack:
            key = stack[-1]
            if key in cache:
                stack.pop()
                continue
            level, low_key, high_key, combine = self._expand(key)
            if low_key >= _NODE_LIMIT:
                low = cache.get(low_key)
                if low is None:
                    ctag = low_key & 7
                    if ctag == _TAG_AND or ctag == _TAG_OR:
                        body = low_key >> 3
                        low = self._run_binary(ctag, body >> _NODE_BITS, body & _NODE_MASK)
                    else:
                        push(low_key)
                        continue
            else:
                low = low_key
            if combine >= 0 and low == (TRUE_NODE if combine == _TAG_OR else FALSE_NODE):
                cache[key] = low
                stack.pop()
                continue
            if high_key >= _NODE_LIMIT:
                high = cache.get(high_key)
                if high is None:
                    ctag = high_key & 7
                    if ctag == _TAG_AND or ctag == _TAG_OR:
                        body = high_key >> 3
                        high = self._run_binary(ctag, body >> _NODE_BITS, body & _NODE_MASK)
                    else:
                        push(high_key)
                        continue
            else:
                high = high_key
            if combine < 0:
                cache[key] = self._make_node(level, low, high)
            else:
                cache[key] = self._binary(combine, low, high)
            stack.pop()
        return cache[root]

    def _binary(self, tag: int, a: int, b: int) -> int:
        # _norm2 inlined: three-quarters of all calls are decided here, so
        # the extra call level would be pure overhead on the hot path.
        if tag == _TAG_AND:
            if a == FALSE_NODE or b == FALSE_NODE:
                return FALSE_NODE
            if a == TRUE_NODE:
                return b
            if b == TRUE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return FALSE_NODE
        else:  # or
            if a == TRUE_NODE or b == TRUE_NODE:
                return TRUE_NODE
            if a == FALSE_NODE:
                return b
            if b == FALSE_NODE:
                return a
            if a == b:
                return a
            if self._not_cache.get(a) == b:
                return TRUE_NODE
        if a > b:
            a, b = b, a
        cached = self._op_cache.get((((a << _NODE_BITS) | b) << 3) | tag)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        return self._run_binary(tag, a, b)

    # -- core operations --------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``f ? g : h``; all boolean ops reduce to it."""
        self._maybe_reorder(f, g, h)
        key = self._norm_ite(f, g, h)
        if key < _NODE_LIMIT:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        tag = key & 7
        body = key >> 3
        if tag == _TAG_ITE:
            return self._run_ite(
                body >> (2 * _NODE_BITS),
                (body >> _NODE_BITS) & _NODE_MASK,
                body & _NODE_MASK,
            )
        return self._run_binary(tag, body >> _NODE_BITS, body & _NODE_MASK)

    def not_(self, f: int) -> int:
        """Negation (a cached involution: ``not_(not_(f))`` is free)."""
        if f <= TRUE_NODE:
            return TRUE_NODE - f
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            return cached
        cache_get = cache.get
        var = self._var
        lows = self._lo
        highs = self._hi
        utables = self._utables
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            low, high = lows[node], highs[node]
            # Probe both children before pushing (one reprocessing pass).
            if low <= TRUE_NODE:
                nlow = TRUE_NODE - low
            else:
                nlow = cache_get(low, -1)
            if high <= TRUE_NODE:
                nhigh = TRUE_NODE - high
            else:
                nhigh = cache_get(high, -1)
            if nlow < 0:
                push(low)
                if nhigh < 0:
                    push(high)
                continue
            if nhigh < 0:
                push(high)
                continue
            # Unique-table insertion, inlined (nlow != nhigh always: the
            # complement of a canonical node is canonical).
            level = var[node]
            table = utables[level]
            k = (nlow << _NODE_BITS) | nhigh
            result = table.get(k)
            if result is None:
                result = self._alloc(level, nlow, nhigh)
                table[k] = result
                self._entries += 1
            cache[node] = result
            cache[result] = node
            stack.pop()
        return cache[f]

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        self._maybe_reorder(f, g)
        return self._binary(_TAG_AND, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        self._maybe_reorder(f, g)
        return self._binary(_TAG_OR, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE_NODE)

    def iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.ite(f, g, self.not_(g))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions.

        A product of single-variable literals (every scoreboard stall cube
        is one) takes the zero-apply literal-chain fast path; anything
        else goes through :meth:`_reduce_connective`, which picks the
        combination shape by operand size.
        """
        items = [node for node in nodes if node != TRUE_NODE]
        if FALSE_NODE in items:
            return FALSE_NODE
        if not items:
            return TRUE_NODE
        cube = self._literal_cube(items)
        if cube is not None:
            return cube
        self._maybe_reorder(*items)
        return self._reduce_connective(_TAG_AND, items, FALSE_NODE)

    def _reduce_connective(self, tag: int, items: List[int], absorbing: int) -> int:
        """Combine many operands under one commutative connective.

        The profitable shape depends on how operand supports relate to
        the variable order, which only the *owner* of the order knows —
        hence the ``balanced_reduce`` construction knob rather than a
        local heuristic (operand sizes do not discriminate: the same
        cube lists occur in both regimes).

        ``balanced_reduce=True`` — a balanced pairwise tree.  Right when
        operand supports are localized bands of the order, e.g.
        per-register stall cubes under the register-interleaved
        derivation order: intermediates combine neighbouring bands and
        stay proportional to their own span, where a sequential fold
        rebuilds the whole accumulated result per operand (quadratic).

        ``balanced_reduce=False`` (default) — a sequential fold in the
        order the operands arrive.  Right for non-localized workloads
        (the property checker's default-order contexts): there the
        balanced tree builds large intermediate combinations only to
        throw them away — measured 5-10x slower — while the sequential
        small × accumulated-result fold stays near-linear.
        """
        binary = self._binary
        if self._balanced_reduce:
            while len(items) > 1:
                paired: List[int] = []
                append = paired.append
                for i in range(1, len(items), 2):
                    result = binary(tag, items[i - 1], items[i])
                    if result == absorbing:
                        return absorbing
                    append(result)
                if len(items) & 1:
                    append(items[-1])
                items = paired
            return items[0]
        out = items[0]
        for node in items[1:]:
            out = binary(tag, out, node)
            if out == absorbing:
                return absorbing
        return out

    def _literal_cube(self, items: List[int]) -> Optional[int]:
        """Direct unique-table chain for a conjunction of literals.

        A product of single-variable literals is an ``if``-chain with one
        node per distinct variable; when every operand is a literal the
        chain is built bottom-up with plain unique-table lookups — no
        apply sweeps, no operation-cache traffic.  Returns ``None`` when
        some operand is not a literal (the caller falls back to apply).
        """
        lows = self._lo
        highs = self._hi
        var = self._var
        literals: Dict[int, bool] = {}
        for node in items:
            lo = lows[node]
            if lo > TRUE_NODE or highs[node] > TRUE_NODE:
                return None
            polarity = lo == FALSE_NODE
            level = var[node]
            seen = literals.get(level)
            if seen is None:
                literals[level] = polarity
            elif seen != polarity:
                return FALSE_NODE
        result = TRUE_NODE
        for level in sorted(literals, reverse=True):
            if literals[level]:
                result = self._make_node(level, FALSE_NODE, result)
            else:
                result = self._make_node(level, result, FALSE_NODE)
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions (dual of :meth:`and_all`)."""
        items = [node for node in nodes if node != FALSE_NODE]
        if TRUE_NODE in items:
            return TRUE_NODE
        if not items:
            return FALSE_NODE
        clause = self._literal_clause(items)
        if clause is not None:
            return clause
        self._maybe_reorder(*items)
        return self._reduce_connective(_TAG_OR, items, TRUE_NODE)

    def _literal_clause(self, items: List[int]) -> Optional[int]:
        """Direct unique-table chain for a disjunction of literals.

        Dual of :meth:`_literal_cube`: a sum of single-variable literals
        is an ``else``-chain built bottom-up without apply sweeps.
        Returns ``None`` when some operand is not a literal.
        """
        lows = self._lo
        highs = self._hi
        var = self._var
        literals: Dict[int, bool] = {}
        for node in items:
            lo = lows[node]
            if lo > TRUE_NODE or highs[node] > TRUE_NODE:
                return None
            polarity = lo == FALSE_NODE
            level = var[node]
            seen = literals.get(level)
            if seen is None:
                literals[level] = polarity
            elif seen != polarity:
                return TRUE_NODE
        result = FALSE_NODE
        for level in sorted(literals, reverse=True):
            if literals[level]:
                result = self._make_node(level, result, TRUE_NODE)
            else:
                result = self._make_node(level, TRUE_NODE, result)
        return result

    # -- restriction, composition, quantification -------------------------------

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with variable ``name`` fixed to ``value``."""
        level = self.declare(name)
        var = self._var
        lows = self._lo
        highs = self._hi
        cache: Dict[int, int] = {}
        if f <= TRUE_NODE or var[f] > level:
            return f
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            node_level = var[node]
            if node_level == level:
                cache[node] = highs[node] if value else lows[node]
                stack.pop()
                continue
            c0 = lows[node]
            if c0 <= TRUE_NODE or var[c0] > level:
                low = c0
            else:
                low = cache.get(c0)
                if low is None:
                    push(c0)
                    continue
            c1 = highs[node]
            if c1 <= TRUE_NODE or var[c1] > level:
                high = c1
            else:
                high = cache.get(c1)
                if high is None:
                    push(c1)
                    continue
            cache[node] = self._make_node(node_level, low, high)
            stack.pop()
        return cache[f]

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        return self.compose_many(f, {name: g})

    def compose_many(self, f: int, mapping: Dict[str, int]) -> int:
        """Simultaneous substitution of several variables by functions.

        Implemented by an iterative sweep over levels using ``ite`` so the
        substitution really is simultaneous (inner compositions do not see
        each other's replacements).  Nodes strictly below the deepest
        substituted level are returned unchanged without being visited —
        in the derivation fixed point the mode-enable flags sit at the top
        of the order, so this cutoff skips almost the whole operand.
        """
        if not mapping:
            return f
        self._maybe_reorder(f, *mapping.values())
        subst = {self.declare(name): g for name, g in mapping.items()}
        max_level = max(subst)
        var = self._var
        lows = self._lo
        highs = self._hi
        if f <= TRUE_NODE or var[f] > max_level:
            return f
        cache: Dict[int, int] = {}
        self._reorder_inhibit += 1
        try:
            stack = [f]
            push = stack.append
            while stack:
                node = stack[-1]
                if node in cache:
                    stack.pop()
                    continue
                c0 = lows[node]
                if c0 <= TRUE_NODE or var[c0] > max_level:
                    low = c0
                else:
                    low = cache.get(c0)
                    if low is None:
                        push(c0)
                        continue
                c1 = highs[node]
                if c1 <= TRUE_NODE or var[c1] > max_level:
                    high = c1
                else:
                    high = cache.get(c1)
                    if high is None:
                        push(c1)
                        continue
                level = var[node]
                g = subst.get(level)
                if g is not None:
                    result = self.ite(g, high, low)
                elif var[low] > level and var[high] > level:
                    result = self._make_node(level, low, high)
                else:
                    # Substitution below pulled in variables at or above
                    # this level; rebuild through ite to restore the order.
                    result = self.ite(
                        self._make_node(level, FALSE_NODE, TRUE_NODE), high, low
                    )
                cache[node] = result
                stack.pop()
            return cache[f]
        finally:
            self._reorder_inhibit -= 1

    # -- generalized cofactors and covers ----------------------------------------

    @contextmanager
    def _level_bounded_recursion(self):
        """Lift the interpreter recursion limit to the depth the order needs.

        The operation kernel is iterative and never touches this, but the
        cover/cofactor algorithms below are clearest recursive and descend
        at most one frame per variable level — a *bounded* depth, unlike
        the operand-shaped recursion the kernel eliminated.  Wide orders
        (hundreds of registers expand to thousands of one-hot levels)
        would still trip CPython's default 1000-frame limit, so the limit
        is raised to cover the declared order and restored on exit.
        """
        depth = 0
        frame = sys._getframe()
        while frame is not None:
            depth += 1
            frame = frame.f_back
        needed = depth + 2 * len(self._level_vars) + 512
        previous = sys.getrecursionlimit()
        if previous >= needed:
            yield
            return
        sys.setrecursionlimit(needed)
        try:
            yield
        finally:
            sys.setrecursionlimit(previous)

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """The (low, high) cofactors of ``node`` with respect to ``level``."""
        if self._var[node] == level:
            return self._lo[node], self._hi[node]
        return node, node

    def constrain(self, f: int, care: int) -> int:
        """The Coudert–Madre generalized cofactor ``f ↓ care`` (*constrain*).

        The result agrees with ``f`` everywhere ``care`` holds; outside the
        care set its value is chosen so the result is canonical in ``(f,
        care)``.  Useful as a caching-friendly image operator; for pure
        size reduction prefer :meth:`restrict_with`, which never pulls
        variables of ``care`` into the result that ``f`` does not mention.
        """
        if care == FALSE_NODE:
            raise ValueError("constrain against an empty care set is undefined")
        self._maybe_reorder(f, care)
        cache = self._op_cache

        def rec(f: int, c: int) -> int:
            if c == TRUE_NODE or f <= TRUE_NODE:
                return f
            if f == c:
                return TRUE_NODE
            if self._not_cache.get(f) == c:
                return FALSE_NODE
            key = (((f << _NODE_BITS) | c) << 3) | _TAG_CONSTRAIN
            cached = cache.get(key)
            if cached is not None:
                return cached
            level = min(self._var[f], self._var[c])
            c0, c1 = self._cofactors(c, level)
            f0, f1 = self._cofactors(f, level)
            if c1 == FALSE_NODE:
                result = rec(f0, c0)
            elif c0 == FALSE_NODE:
                result = rec(f1, c1)
            else:
                result = self._make_node(level, rec(f0, c0), rec(f1, c1))
            cache[key] = result
            return result

        self._reorder_inhibit += 1
        try:
            with self._level_bounded_recursion():
                return rec(f, care)
        finally:
            self._reorder_inhibit -= 1

    def restrict_with(self, f: int, care: int) -> int:
        """The Coudert–Madre *restrict* operator: simplify ``f`` on the care set.

        Like :meth:`constrain` the result agrees with ``f`` wherever
        ``care`` holds, but care-set variables that ``f`` does not depend on
        are quantified away instead of copied into the result, so the
        output never grows support beyond ``f``'s.  The printers use it to
        shrink a function against environment assumptions before
        materializing a cover.
        """
        if care == FALSE_NODE:
            raise ValueError("restrict against an empty care set is undefined")
        self._maybe_reorder(f, care)
        cache = self._op_cache

        def rec(f: int, c: int) -> int:
            if c == TRUE_NODE or f <= TRUE_NODE:
                return f
            if f == c:
                return TRUE_NODE
            if self._not_cache.get(f) == c:
                return FALSE_NODE
            key = (((f << _NODE_BITS) | c) << 3) | _TAG_RESTRICT
            cached = cache.get(key)
            if cached is not None:
                return cached
            level_f = self._var[f]
            level_c = self._var[c]
            if level_c < level_f:
                # f does not test this care variable: drop it existentially.
                result = rec(f, self._binary(_TAG_OR, self._lo[c], self._hi[c]))
            else:
                c0, c1 = self._cofactors(c, level_f)
                if c1 == FALSE_NODE:
                    result = rec(self._lo[f], c0)
                elif c0 == FALSE_NODE:
                    result = rec(self._hi[f], c1)
                else:
                    result = self._make_node(
                        level_f, rec(self._lo[f], c0), rec(self._hi[f], c1)
                    )
            cache[key] = result
            return result

        self._reorder_inhibit += 1
        try:
            with self._level_bounded_recursion():
                return rec(f, care)
        finally:
            self._reorder_inhibit -= 1

    def isop(
        self, lower: int, upper: int, max_cubes: Optional[int] = None
    ) -> Tuple[int, tuple]:
        """An irredundant sum-of-products between ``lower`` and ``upper``.

        Minato's ISOP algorithm: returns ``(node, cubes)`` where ``cubes``
        is a tuple of product terms — each a tuple of ``(level, polarity)``
        literals — whose disjunction denotes ``node``, with ``lower ≤ node ≤
        upper`` (callers must ensure ``lower`` implies ``upper``; pass the
        same node twice for an exact cover).  The cover is irredundant: no
        cube or literal can be dropped without uncovering part of ``lower``.
        The recursion is memoised structurally (as lazy cover spines), so
        materializing the same function twice costs only the final flatten.

        ``max_cubes`` bounds the size of any intermediate cover; when
        exceeded :class:`CoverBudgetExceeded` is raised.  A mostly-true
        function has an exponential direct cover but a compact complement
        cover (or vice versa); the budget lets a caller try both sides
        without risking the exponential one.  Sub-results completed before
        an abort stay cached, so a retry (or the other polarity) reuses
        them.
        """
        self._maybe_reorder(lower, upper)
        cache = self._isop_cache
        binary = self._binary
        not_ = self.not_
        nots = self._not_cache
        var = self._var
        lows = self._lo
        highs = self._hi

        # The recursion carries a lazy *spine* instead of concrete cube
        # tuples: ``0`` is the empty cover, ``1`` the tautology cube, and
        # ``(level, s0, s1, sd)`` a branch.  Prepending this level's literal
        # to every cube below (as the textbook formulation does) makes the
        # total work quadratic in cover depth; the spine makes each combine
        # O(1) and the cubes are materialized once, at the top, only for
        # covers that actually complete within budget.

        def rec(lo: int, up: int) -> tuple:
            if lo == FALSE_NODE:
                return FALSE_NODE, 0, 0
            if up == TRUE_NODE:
                return TRUE_NODE, 1, 1
            key = (lo << _NODE_BITS) | up
            cached = cache.get(key)
            if cached is not None:
                if max_cubes is not None and cached[1] > max_cubes:
                    raise CoverBudgetExceeded(f"cover exceeds {max_cubes} cubes")
                return cached
            llo = var[lo]
            lup = var[up]
            level = llo if llo < lup else lup
            if llo == level:
                lo0, lo1 = lows[lo], highs[lo]
            else:
                lo0 = lo1 = lo
            if lup == level:
                up0, up1 = lows[up], highs[up]
            else:
                up0 = up1 = up
            # Cubes that must contain the negative literal of this variable
            # cover the part of the low on-set excluded from the high bound,
            # and dually for the positive literal.  The constant cases are
            # resolved inline — most of them are, and each saves a negation
            # lookup, an apply probe and a recursive call.
            if lo0 == FALSE_NODE or up1 == TRUE_NODE:
                node0 = count0 = s0 = 0
            else:
                n_up1 = nots.get(up1)
                if n_up1 is None:
                    n_up1 = not_(up1)
                node0, count0, s0 = rec(binary(_TAG_AND, lo0, n_up1), up0)
            if lo1 == FALSE_NODE or up0 == TRUE_NODE:
                node1 = count1 = s1 = 0
            else:
                n_up0 = nots.get(up0)
                if n_up0 is None:
                    n_up0 = not_(up0)
                node1, count1, s1 = rec(binary(_TAG_AND, lo1, n_up0), up1)
            # Whatever the literal cubes left uncovered may be covered by
            # cubes that do not mention the variable at all.
            if node0 == FALSE_NODE:
                part0 = lo0
            else:
                n_node0 = nots.get(node0)
                if n_node0 is None:
                    n_node0 = not_(node0)
                part0 = binary(_TAG_AND, lo0, n_node0)
            if node1 == FALSE_NODE:
                part1 = lo1
            else:
                n_node1 = nots.get(node1)
                if n_node1 is None:
                    n_node1 = not_(node1)
                part1 = binary(_TAG_AND, lo1, n_node1)
            if part0 == FALSE_NODE and part1 == FALSE_NODE:
                node_d = count_d = sd = 0
            else:
                rest_lower = binary(_TAG_OR, part0, part1)
                upper_d = up0 if up0 == up1 else binary(_TAG_AND, up0, up1)
                node_d, count_d, sd = rec(rest_lower, upper_d)
            # The cover node is x'·node0 + x·node1 + node_d; every summand's
            # support sits strictly below this level, so the Shannon form
            # (x ? node1 + node_d : node0 + node_d) builds it with two
            # disjunctions and one unique-table lookup instead of five
            # apply sweeps.
            if node_d == FALSE_NODE:
                branch0, branch1 = node0, node1
            else:
                branch0 = node_d if node0 == FALSE_NODE else binary(_TAG_OR, node0, node_d)
                branch1 = node_d if node1 == FALSE_NODE else binary(_TAG_OR, node1, node_d)
            node = self._make_node(level, branch0, branch1)
            count = count0 + count1 + count_d
            if max_cubes is not None and count > max_cubes:
                raise CoverBudgetExceeded(f"cover exceeds {max_cubes} cubes")
            result = (node, count, (level, s0, s1, sd))
            cache[key] = result
            return result

        cubes_out: List[tuple] = []
        prefix: List[Tuple[int, bool]] = []

        def flatten(spine) -> None:
            if spine == 1:
                cubes_out.append(tuple(prefix))
                return
            if spine == 0:
                return
            level, s0, s1, sd = spine
            prefix.append((level, False))
            flatten(s0)
            prefix[-1] = (level, True)
            flatten(s1)
            prefix.pop()
            flatten(sd)

        self._reorder_inhibit += 1
        try:
            with self._level_bounded_recursion():
                node, _, spine = rec(lower, upper)
                flatten(spine)
                return node, tuple(cubes_out)
        finally:
            self._reorder_inhibit -= 1

    def isop_cover(self, f: int, care: Optional[int] = None) -> List[Dict[str, bool]]:
        """An irredundant SOP cover of ``f`` as name-keyed cubes.

        With a ``care`` set the cover only needs to match ``f`` on the care
        set (assignments outside it are don't-cares), which typically gives
        a smaller cover; the bounds are then ``f ∧ care ≤ cover ≤ f ∨
        ¬care``.
        """
        if care is None:
            lower = upper = f
        else:
            lower = self._binary(_TAG_AND, f, care)
            upper = self._binary(_TAG_OR, f, self.not_(care))
        _, cubes = self.isop(lower, upper)
        return [
            {self._level_vars[level]: polarity for level, polarity in cube}
            for cube in cubes
        ]

    def _quant_key(self, names: Iterable[str]) -> Optional[int]:
        name_list = list(names)
        levels = frozenset(self.declare(name) for name in name_list)
        if not levels:
            return None
        key = self._quant_sets.get(levels)
        if key is None:
            key = len(self._quant_levels)
            self._quant_sets[levels] = key
            self._quant_levels.append((levels, max(levels)))
            self._quant_names.append(frozenset(name_list))
        return key

    def _quantify(self, tag: int, f: int, names: Iterable[str]) -> int:
        self._maybe_reorder(f)
        quant_key = self._quant_key(names)
        if quant_key is None:
            return f
        key = self._norm_quant(tag, f, quant_key)
        if key < _NODE_LIMIT:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        return self._run(key)

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables.

        A single memoised pass over the BDD quantifies every variable at
        once (rather than two cofactor rebuilds per variable), and the memo
        survives across calls with the same variable set.
        """
        return self._quantify(_TAG_E, f, names)

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables (one fused pass)."""
        return self._quantify(_TAG_A, f, names)

    def and_exists(self, f: int, g: int, names: Iterable[str]) -> int:
        """The relational product ``∃ names . f ∧ g`` in one fused sweep.

        Equivalent to ``exists(and_(f, g), names)`` but never materialises
        the conjunction: quantified levels turn into disjunctions on the
        way back up, and a TRUE low branch short-circuits the high branch.
        """
        self._maybe_reorder(f, g)
        quant_key = self._quant_key(names)
        if quant_key is None:
            return self._binary(_TAG_AND, f, g)
        key = self._norm_and_exists(f, g, quant_key)
        if key < _NODE_LIMIT:
            return key
        cached = self._op_cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        tag = key & 7
        if tag == _TAG_AND:
            # Both operands sit below every quantified level; the product
            # degenerated to a plain conjunction.
            body = key >> 3
            return self._run_binary(tag, body >> _NODE_BITS, body & _NODE_MASK)
        return self._run(key)

    # -- garbage collection ------------------------------------------------------

    def protect(self, node: int) -> int:
        """Pin a node (and everything reachable from it) across :meth:`gc`.

        Every externally held raw node id must be protected — or held
        through a ``SymbolicFunction``, which protects automatically — for
        ``gc``/``reorder`` to be safe.  Returns the node for chaining.
        """
        if node > TRUE_NODE:
            self._ref[node] += 1
        return node

    def release(self, node: int) -> None:
        """Undo one :meth:`protect`; unpinned nodes become collectable."""
        if node > TRUE_NODE and self._ref[node] > 0:
            self._ref[node] -= 1

    def add_sweep_hook(self, hook: Callable[[Callable[[int], bool]], None]) -> None:
        """Register a callback invoked after every sweep with an ``alive``
        predicate, so higher-level caches can drop entries whose node ids
        were reclaimed (ids are reused — stale entries would alias new
        functions).
        """
        self._sweep_hooks.append(hook)

    def gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep collection of dead nodes; returns the count reclaimed.

        Roots are all protected nodes (``_ref > 0``) plus ``extra_roots``.
        All operation/ISOP memo tables are cleared (their keys embed node
        ids), the negation cache is filtered down to live pairs, and the
        per-level unique tables are rebuilt from the survivors.
        """
        var = self._var
        lows = self._lo
        highs = self._hi
        size = len(var)
        np = self._numpy
        if np is not None:
            refs = np.frombuffer(self._ref, dtype=np.int64, count=size)
            roots = np.nonzero(refs)[0].tolist()
        else:
            ref = self._ref
            roots = [i for i in range(2, size) if ref[i]]
        roots.extend(node for node in extra_roots if node > TRUE_NODE)
        if np is not None:
            lo_view = np.fromiter(lows, dtype=np.int64, count=size)
            hi_view = np.fromiter(highs, dtype=np.int64, count=size)
            marked_np = np.zeros(size, dtype=bool)
            marked_np[0] = marked_np[1] = True
            frontier = np.array(roots, dtype=np.int64)
            while frontier.size:
                frontier = frontier[~marked_np[frontier]]
                if not frontier.size:
                    break
                marked_np[frontier] = True
                children = np.concatenate((lo_view[frontier], hi_view[frontier]))
                frontier = np.unique(children[children > TRUE_NODE])
            marked = memoryview(marked_np)  # zero-copy bool indexing
        else:
            marked = bytearray(size)
            marked[0] = marked[1] = 1
            stack = roots[:]
            while stack:
                node = stack.pop()
                if marked[node]:
                    continue
                marked[node] = 1
                child = lows[node]
                if child > TRUE_NODE and not marked[child]:
                    stack.append(child)
                child = highs[node]
                if child > TRUE_NODE and not marked[child]:
                    stack.append(child)
        # Sweep dead nodes onto the free list.
        free = self._free
        reclaimed = 0
        for i in range(2, size):
            if not marked[i] and var[i] >= 0:
                var[i] = -1
                free.append(i)
                reclaimed += 1
        # Memo keys embed node ids; drop everything that may be stale.
        self._op_cache.clear()
        self._isop_cache.clear()
        self._not_cache = {
            a: b for a, b in self._not_cache.items() if marked[a] and marked[b]
        }
        self._rebuild_tables()
        alive = lambda node: 0 <= node < size and bool(marked[node])  # noqa: E731
        for hook in self._sweep_hooks:
            hook(alive)
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        return reclaimed

    def _rebuild_tables(self) -> None:
        """Rebuild every per-level unique table from the live nodes."""
        var = self._var
        lows = self._lo
        highs = self._hi
        size = len(var)
        tables: List[dict] = [{} for _ in self._level_vars]
        total = 0
        for i in range(2, size):
            level = var[i]
            if level >= 0:
                tables[level][(lows[i] << _NODE_BITS) | highs[i]] = i
                total += 1
        self._utables = tables
        self._entries = total

    # -- dynamic variable reordering ---------------------------------------------

    def _maybe_reorder(self, *roots: int) -> None:
        threshold = self._auto_reorder_threshold
        if (
            threshold is None
            or self._entries < threshold
            or self._reorder_inhibit
        ):
            return
        # Double the threshold so a workload that genuinely needs the
        # nodes does not thrash in back-to-back reorders.
        self._auto_reorder_threshold = max(threshold * 2, self._entries + 1)
        for node in roots:
            self.protect(node)
        try:
            self.reorder()
        finally:
            for node in roots:
                self.release(node)

    @contextmanager
    def postpone_reorder(self):
        """Inhibit automatic reordering for the duration of the block.

        Used by code that holds raw node ids in local caches across many
        public operations (e.g. expression compilation): a reorder in the
        middle could reclaim nodes only those locals reference.
        """
        self._reorder_inhibit += 1
        try:
            yield
        finally:
            self._reorder_inhibit -= 1

    def reorder(
        self,
        max_vars: int = 32,
        max_growth: float = 1.2,
        max_swap_size: Optional[int] = None,
    ) -> int:
        """Sifting-based dynamic variable reordering; returns the swap count.

        Sifts the ``max_vars`` largest levels one at a time: each variable
        is moved through the order by adjacent-level swaps, the total node
        count is tracked at every position, and the variable settles at
        its best position (aborting a direction when the table grows past
        ``max_growth`` times the best size seen).  Swaps rewrite nodes in
        place, so ids keep denoting the same functions and all caller
        handles stay valid; nodes orphaned by a swap are reclaimed
        immediately, which is what gives sifting its size signal.

        Contract (same as :meth:`gc`): every externally held raw node id
        must be protected or held via a ``SymbolicFunction``; unprotected
        ids may be reclaimed.  Function-shaped memo entries (and/or/ite,
        negation, quantification) stay valid — ids are stable — but the
        ISOP cache embeds levels and is cleared.
        """
        if self._reorder_inhibit or len(self._level_vars) < 2:
            return 0
        self._reorder_inhibit += 1
        try:
            # Sifting deletes orphans, so memo entries could go stale; the
            # level-keyed ISOP cache additionally encodes the order itself.
            self._op_cache.clear()
            self._isop_cache.clear()
            indeg = self._in_degrees()
            deleted: set = set()
            candidates = sorted(
                range(len(self._level_vars)),
                key=lambda level: len(self._utables[level]),
                reverse=True,
            )[:max_vars]
            names = [self._level_vars[level] for level in candidates]
            swaps = 0
            for name in names:
                swaps += self._sift_one(name, max_growth, indeg, deleted, max_swap_size)
            self._not_cache = {
                a: b
                for a, b in self._not_cache.items()
                if a not in deleted and b not in deleted
            }
            if deleted:
                alive = lambda node: node not in deleted  # noqa: E731
                for hook in self._sweep_hooks:
                    hook(alive)
            # Quantification sets are interned by level; remap them onto the
            # new positions of their variables.
            self._quant_sets = {}
            for key, name_set in enumerate(self._quant_names):
                levels = frozenset(self._var_levels[n] for n in name_set)
                self._quant_levels[key] = (levels, max(levels))
                self._quant_sets.setdefault(levels, key)
            self._reorder_runs += 1
            self._reorder_swaps += swaps
            return swaps
        finally:
            self._reorder_inhibit -= 1

    def _in_degrees(self) -> array:
        """Parent counts for every node (DAG edges only, not external refs)."""
        var = self._var
        lows = self._lo
        highs = self._hi
        size = len(var)
        indeg = array("q", bytes(8 * size))
        for i in range(2, size):
            if var[i] >= 0:
                indeg[lows[i]] += 1
                indeg[highs[i]] += 1
        return indeg

    def _sift_one(
        self,
        name: str,
        max_growth: float,
        indeg: array,
        deleted: set,
        max_swap_size: Optional[int],
    ) -> int:
        last = len(self._level_vars) - 1
        start = self._var_levels[name]
        best_pos = start
        best_size = self._entries
        limit = int(best_size * max_growth) + 2
        swaps = 0
        pos = start
        # Walk to the nearer end first, then across to the other end,
        # recording the best position seen; abort a direction on blow-up.
        if start * 2 >= last:
            targets = (last, 0)
        else:
            targets = (0, last)
        for target in targets:
            step = 1 if target > pos else -1
            while pos != target:
                if max_swap_size is not None:
                    x = pos if step > 0 else pos - 1
                    if (
                        len(self._utables[x]) + len(self._utables[x + 1])
                        > max_swap_size
                    ):
                        break
                if step > 0:
                    self._swap_levels(pos, indeg, deleted)
                    pos += 1
                else:
                    self._swap_levels(pos - 1, indeg, deleted)
                    pos -= 1
                swaps += 1
                size = self._entries
                if size < best_size:
                    best_size = size
                    best_pos = pos
                    limit = int(best_size * max_growth) + 2
                elif size > limit:
                    break
        while pos < best_pos:
            self._swap_levels(pos, indeg, deleted)
            pos += 1
            swaps += 1
        while pos > best_pos:
            self._swap_levels(pos - 1, indeg, deleted)
            pos -= 1
            swaps += 1
        return swaps

    def _swap_levels(self, x: int, indeg: array, deleted: set) -> None:
        """Swap the variables at adjacent positions ``x`` and ``x + 1`` in place.

        Let u be the variable at x and v at x + 1.  Nodes labelled v only
        move up (relabel).  A u-node whose children do not test v keeps
        its structure and moves down.  A u-node with a v-child is rewritten
        in place to test v first: its id continues to denote the same
        function, so no external handle or function-shaped memo entry is
        invalidated.  Children orphaned by the rewrite are reclaimed via
        the in-degree cascade.
        """
        y = x + 1
        var = self._var
        lows = self._lo
        highs = self._hi
        u_nodes = self._table_nodes(x)
        v_nodes = self._table_nodes(y)
        u_name = self._level_vars[x]
        v_name = self._level_vars[y]
        self._level_vars[x] = v_name
        self._level_vars[y] = u_name
        self._var_levels[v_name] = x
        self._var_levels[u_name] = y
        self._utables[x] = {}
        self._utables[y] = {}
        # v-nodes move up to position x unchanged.
        for m in v_nodes:
            var[m] = x
            self._table_insert(x, m)
        # u-nodes without a v-child move down to y unchanged; the rest are
        # rewritten after all solid nodes are in place so probe lookups
        # during the rewrite can reuse them.
        interacting = []
        for n in u_nodes:
            if var[lows[n]] == x or var[highs[n]] == x:
                interacting.append(n)
            else:
                var[n] = y
                self._table_insert(y, n)
        orphan_candidates = []
        for n in interacting:
            f0 = lows[n]
            f1 = highs[n]
            if var[f0] == x:
                f00, f01 = lows[f0], highs[f0]
            else:
                f00 = f01 = f0
            if var[f1] == x:
                f10, f11 = lows[f1], highs[f1]
            else:
                f10 = f11 = f1
            if f00 == f10:
                a = f00
            else:
                a = self._make_at(y, f00, f10, indeg)
            if f01 == f11:
                b = f01
            else:
                b = self._make_at(y, f01, f11, indeg)
            lows[n] = a
            highs[n] = b
            self._table_insert(x, n)
            if a > TRUE_NODE:
                indeg[a] += 1
            if b > TRUE_NODE:
                indeg[b] += 1
            if f0 > TRUE_NODE:
                indeg[f0] -= 1
                orphan_candidates.append(f0)
            if f1 > TRUE_NODE:
                indeg[f1] -= 1
                orphan_candidates.append(f1)
        if orphan_candidates:
            self._cascade_delete(orphan_candidates, indeg, deleted)

    def _make_at(self, level: int, low: int, high: int, indeg: array) -> int:
        """Find-or-create a node at ``level`` during a swap, tracking degrees."""
        table = self._utables[level]
        k = (low << _NODE_BITS) | high
        node = table.get(k)
        if node is not None:
            return node
        node = self._alloc(level, low, high)
        table[k] = node
        self._entries += 1
        while len(indeg) <= node:
            indeg.append(0)
        indeg[node] = 0
        if low > TRUE_NODE:
            indeg[low] += 1
        if high > TRUE_NODE:
            indeg[high] += 1
        return node

    def _cascade_delete(self, candidates: List[int], indeg: array, deleted: set) -> None:
        """Reclaim nodes whose last DAG parent disappeared (unless protected)."""
        var = self._var
        lows = self._lo
        highs = self._hi
        ref = self._ref
        free = self._free
        stack = candidates
        while stack:
            node = stack.pop()
            if node <= TRUE_NODE or indeg[node] != 0 or ref[node] != 0:
                continue
            if var[node] < 0:
                continue
            self._table_remove(var[node], node)
            child = lows[node]
            if child > TRUE_NODE:
                indeg[child] -= 1
                if indeg[child] == 0:
                    stack.append(child)
            child = highs[node]
            if child > TRUE_NODE:
                indeg[child] -= 1
                if indeg[child] == 0:
                    stack.append(child)
            var[node] = -1
            free.append(node)
            self._entries -= 1
            deleted.add(node)

    # -- health counters -----------------------------------------------------------

    def stats(self) -> BddStats:
        """A snapshot of node-store, cache and GC/reorder health counters."""
        # Slot-count estimate of the interpreter's open-addressed tables:
        # a CPython dict resizes at 2/3 load to the next power of two.
        capacity = 0
        for table in self._utables:
            slots = 8
            while 3 * len(table) >= 2 * slots:
                slots <<= 1
            capacity += slots
        hits = self._hits
        misses = self._misses
        total = hits + misses
        return BddStats(
            live_nodes=self.num_nodes(),
            allocated_slots=len(self._var),
            free_slots=len(self._free),
            num_vars=len(self._level_vars),
            unique_entries=self._entries,
            unique_capacity=capacity,
            load_factor=(self._entries / capacity) if capacity else 0.0,
            op_cache_entries=len(self._op_cache),
            not_cache_entries=len(self._not_cache),
            isop_cache_entries=len(self._isop_cache),
            cache_hits=hits,
            cache_misses=misses,
            hit_rate=(hits / total) if total else 0.0,
            gc_runs=self._gc_runs,
            gc_reclaimed=self._gc_reclaimed,
            reorder_runs=self._reorder_runs,
            reorder_swaps=self._reorder_swaps,
        )

    # -- queries -----------------------------------------------------------------

    def is_true(self, f: int) -> bool:
        """Is ``f`` the constant TRUE function?"""
        return f == TRUE_NODE

    def is_false(self, f: int) -> bool:
        """Is ``f`` the constant FALSE function?"""
        return f == FALSE_NODE

    def equivalent(self, f: int, g: int) -> bool:
        """Are ``f`` and ``g`` the same function?  Constant time."""
        return f == g

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support variables."""
        node = f
        while node > TRUE_NODE:
            name = self._level_vars[self._var[node]]
            try:
                value = assignment[name]
            except KeyError as exc:
                raise KeyError(f"assignment is missing variable {name!r}") from exc
            node = self._hi[node] if value else self._lo[node]
        return node == TRUE_NODE

    def support(self, f: int) -> frozenset:
        """The set of variables the function actually depends on."""
        var = self._var
        lows = self._lo
        highs = self._hi
        seen = set()
        seen_add = seen.add
        levels = set()
        levels_add = levels.add
        stack = [f]
        push = stack.append
        pop = stack.pop
        while stack:
            node = pop()
            if node <= TRUE_NODE or node in seen:
                continue
            seen_add(node)
            levels_add(var[node])
            push(lows[node])
            push(highs[node])
        names = self._level_vars
        return frozenset(names[level] for level in levels)

    def density(self, f: int) -> float:
        """Fraction of assignments satisfying ``f`` (each variable p=1/2).

        A cheap O(dag) float walk — no big-integer arithmetic, no need to
        name the counting universe (the fraction is the same over any
        superset of the support).  Used as a polarity heuristic: a density
        above one half means the direct SOP cover is likely the exponential
        side and the complement cover the compact one.
        """
        memo: Dict[int, float] = {FALSE_NODE: 0.0, TRUE_NODE: 1.0}
        lows = self._lo
        highs = self._hi
        stack = [f]
        push = stack.append
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            lo = lows[node]
            hi = highs[node]
            p_lo = memo.get(lo)
            p_hi = memo.get(hi)
            if p_lo is None or p_hi is None:
                if p_lo is None:
                    push(lo)
                if p_hi is None:
                    push(hi)
                continue
            memo[node] = 0.5 * (p_lo + p_hi)
            stack.pop()
        return memo[f]

    def sat_count(self, f: int, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``over`` (default: support)."""
        names = list(over) if over is not None else sorted(self.support(f))
        for name in names:
            self.declare(name)
        levels = sorted(self._var_levels[name] for name in names)
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"counting variables {sorted(missing)} are not in 'over'")
        index_of_level = {level: idx for idx, level in enumerate(levels)}
        total_levels = len(levels)
        cache: Dict[int, int] = {}

        def count_below(node: int, from_index: int) -> int:
            # Number of solutions of the sub-function over variables at
            # positions >= from_index.
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1 << (total_levels - from_index)
            key = node
            node_index = index_of_level[self._var[node]]
            gap = node_index - from_index
            if key in cache:
                return cache[key] << gap
            low = count_below(self._lo[node], node_index + 1)
            high = count_below(self._hi[node], node_index + 1)
            cache[key] = low + high
            return (low + high) << gap

        with self._level_bounded_recursion():
            return count_below(f, 0)

    def find_difference(self, f: int, g: int) -> Optional[Dict[str, bool]]:
        """One assignment on which ``f`` and ``g`` disagree, or None.

        Walks the two DAGs in lock step without materialising ``f ⊕ g``;
        pairs proven difference-free are memoised, so the search is linear
        in the number of reachable node pairs.
        """
        if f == g:
            return None
        no_difference: set = set()
        assignment: Dict[str, bool] = {}

        def rec(a: int, b: int) -> bool:
            if a == b:
                return False
            la, lb = self._var[a], self._var[b]
            level = la if la < lb else lb
            if level == _TERMINAL_LEVEL:
                return True  # two distinct terminals
            pair = (a, b)
            if pair in no_difference:
                return False
            a0, a1 = (self._lo[a], self._hi[a]) if la == level else (a, a)
            b0, b1 = (self._lo[b], self._hi[b]) if lb == level else (b, b)
            name = self._level_vars[level]
            assignment[name] = False
            if rec(a0, b0):
                return True
            assignment[name] = True
            if rec(a1, b1):
                return True
            del assignment[name]
            no_difference.add(pair)
            return False

        with self._level_bounded_recursion():
            found = rec(f, g)
        if not found:  # pragma: no cover - f != g guarantees a witness
            return None
        for name in self.support(f) | self.support(g):
            assignment.setdefault(name, False)
        return assignment

    def pick_one(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support of ``f``, or None."""
        if f == FALSE_NODE:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while node > TRUE_NODE:
            name = self._level_vars[self._var[node]]
            if self._hi[node] != FALSE_NODE:
                assignment[name] = True
                node = self._hi[node]
            else:
                assignment[name] = False
                node = self._lo[node]
        for name in self.support(f):
            assignment.setdefault(name, False)
        return assignment

    def all_sat(self, f: int, over: Optional[Sequence[str]] = None) -> Iterator[Dict[str, bool]]:
        """Enumerate all satisfying assignments over ``over`` (default: support).

        Enumeration follows the manager's variable order: the BDD is walked
        top-down, so ``over`` is traversed from the outermost declared level
        inward regardless of the order (or names) the caller supplied.
        """
        pool = sorted(set(over)) if over is not None else sorted(self.support(f))
        for name in pool:
            self.declare(name)
        names = sorted(pool, key=self._var_levels.__getitem__)
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"enumeration variables {sorted(missing)} are not in 'over'")
        name_levels = [self._var_levels[name] for name in names]

        def rec(node: int, index: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == FALSE_NODE:
                return
            if index == len(names):
                if node == TRUE_NODE:
                    yield dict(partial)
                return
            name = names[index]
            level = name_levels[index]
            for value in (False, True):
                if node <= TRUE_NODE:
                    child = node
                elif self._var[node] == level:
                    child = self._hi[node] if value else self._lo[node]
                else:
                    child = node
                partial[name] = value
                yield from rec(child, index + 1, partial)
            del partial[name]

        yield from rec(f, 0, {})

    def dag_size(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (excluding terminals)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE_NODE or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)
