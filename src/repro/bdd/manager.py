"""A reduced ordered binary decision diagram (ROBDD) package.

The manager keeps a unique table of nodes so that structurally equal
functions share one node, which makes equivalence checking a pointer
comparison — exactly what the property checker in :mod:`repro.checking`
relies on to compare a pipeline interlock implementation with the derived
maximum-performance specification.

Nodes are integers indexing into the manager's node arrays.  The two
terminals are ``0`` (FALSE) and ``1`` (TRUE).  Complement edges are not
used; negation goes through ``apply``/``ite`` with memoisation, which is
simple and fast enough for interlock-sized control cones (tens of
variables).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

FALSE_NODE = 0
TRUE_NODE = 1


class BddManager:
    """Owns the unique table, the variable order and all BDD operations."""

    def __init__(self, variable_order: Optional[Sequence[str]] = None):
        # Node storage: parallel lists indexed by node id.
        # Terminals occupy ids 0 and 1 with a sentinel level.
        self._level: List[int] = [2**31, 2**31]
        self._low: List[int] = [FALSE_NODE, TRUE_NODE]
        self._high: List[int] = [FALSE_NODE, TRUE_NODE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_vars: List[str] = []
        if variable_order is not None:
            for name in variable_order:
                self.declare(name)

    # -- variable management --------------------------------------------------

    def declare(self, name: str) -> int:
        """Declare a variable (idempotent) and return its level."""
        if name in self._var_levels:
            return self._var_levels[name]
        level = len(self._level_vars)
        self._var_levels[name] = level
        self._level_vars.append(name)
        return level

    def variable_order(self) -> List[str]:
        """The current variable order, outermost (top) first."""
        return list(self._level_vars)

    def level_of(self, name: str) -> int:
        """The level of a declared variable."""
        return self._var_levels[name]

    def var_at_level(self, level: int) -> str:
        """The variable name at a given level."""
        return self._level_vars[level]

    def num_nodes(self) -> int:
        """Total number of allocated nodes including terminals."""
        return len(self._level)

    # -- node construction -----------------------------------------------------

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """BDD for a single variable."""
        level = self.declare(name)
        return self._make_node(level, FALSE_NODE, TRUE_NODE)

    def nvar(self, name: str) -> int:
        """BDD for the negation of a single variable."""
        level = self.declare(name)
        return self._make_node(level, TRUE_NODE, FALSE_NODE)

    def true(self) -> int:
        """The TRUE terminal."""
        return TRUE_NODE

    def false(self) -> int:
        """The FALSE terminal."""
        return FALSE_NODE

    # -- core operations --------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``f ? g : h``; all boolean ops reduce to it."""
        # Terminal cases.
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE and h == FALSE_NODE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self._make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def not_(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE_NODE, TRUE_NODE)

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE_NODE)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE_NODE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE_NODE)

    def iff(self, f: int, g: int) -> int:
        """Equivalence ``f <-> g``."""
        return self.ite(f, g, self.not_(g))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions."""
        out = TRUE_NODE
        for node in nodes:
            out = self.and_(out, node)
            if out == FALSE_NODE:
                return FALSE_NODE
        return out

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions."""
        out = FALSE_NODE
        for node in nodes:
            out = self.or_(out, node)
            if out == TRUE_NODE:
                return TRUE_NODE
        return out

    # -- restriction, composition, quantification -------------------------------

    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with variable ``name`` fixed to ``value``."""
        level = self.declare(name)
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE) or self._level[node] > level:
                return node
            if node in cache:
                return cache[node]
            if self._level[node] == level:
                result = self._high[node] if value else self._low[node]
            else:
                low = rec(self._low[node])
                high = rec(self._high[node])
                result = self._make_node(self._level[node], low, high)
            cache[node] = result
            return result

        return rec(f)

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        level = self.declare(name)
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE) or self._level[node] > level:
                return node
            if node in cache:
                return cache[node]
            low = rec(self._low[node])
            high = rec(self._high[node])
            if self._level[node] == level:
                result = self.ite(g, high, low)
            else:
                result = self._make_node(self._level[node], low, high)
            cache[node] = result
            return result

        return rec(f)

    def compose_many(self, f: int, mapping: Dict[str, int]) -> int:
        """Simultaneous substitution of several variables by functions.

        Implemented by recursion on levels using ``ite`` so the substitution
        really is simultaneous (inner compositions do not see each other's
        replacements).
        """
        if not mapping:
            return f
        levels = {self.declare(name): g for name, g in mapping.items()}
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node in (FALSE_NODE, TRUE_NODE):
                return node
            if node in cache:
                return cache[node]
            level = self._level[node]
            low = rec(self._low[node])
            high = rec(self._high[node])
            if level in levels:
                result = self.ite(levels[level], high, low)
            else:
                top = self._make_node(level, low, high)
                result = top
            cache[node] = result
            return result

        return rec(f)

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables."""
        out = f
        for name in names:
            low = self.restrict(out, name, False)
            high = self.restrict(out, name, True)
            out = self.or_(low, high)
        return out

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables."""
        out = f
        for name in names:
            low = self.restrict(out, name, False)
            high = self.restrict(out, name, True)
            out = self.and_(low, high)
        return out

    # -- queries -----------------------------------------------------------------

    def is_true(self, f: int) -> bool:
        """Is ``f`` the constant TRUE function?"""
        return f == TRUE_NODE

    def is_false(self, f: int) -> bool:
        """Is ``f`` the constant FALSE function?"""
        return f == FALSE_NODE

    def equivalent(self, f: int, g: int) -> bool:
        """Are ``f`` and ``g`` the same function?  Constant time."""
        return f == g

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support variables."""
        node = f
        while node not in (FALSE_NODE, TRUE_NODE):
            name = self._level_vars[self._level[node]]
            try:
                value = assignment[name]
            except KeyError as exc:
                raise KeyError(f"assignment is missing variable {name!r}") from exc
            node = self._high[node] if value else self._low[node]
        return node == TRUE_NODE

    def support(self, f: int) -> frozenset:
        """The set of variables the function actually depends on."""
        seen = set()
        names = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE_NODE, TRUE_NODE) or node in seen:
                continue
            seen.add(node)
            names.add(self._level_vars[self._level[node]])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(names)

    def sat_count(self, f: int, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``over`` (default: support)."""
        names = list(over) if over is not None else sorted(self.support(f))
        for name in names:
            self.declare(name)
        levels = sorted(self._var_levels[name] for name in names)
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"counting variables {sorted(missing)} are not in 'over'")
        index_of_level = {level: idx for idx, level in enumerate(levels)}
        total_levels = len(levels)
        cache: Dict[int, int] = {}

        def count_below(node: int, from_index: int) -> int:
            # Number of solutions of the sub-function over variables at
            # positions >= from_index.
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1 << (total_levels - from_index)
            key = node
            node_index = index_of_level[self._level[node]]
            gap = node_index - from_index
            if key in cache:
                return cache[key] << gap
            low = count_below(self._low[node], node_index + 1)
            high = count_below(self._high[node], node_index + 1)
            cache[key] = low + high
            return (low + high) << gap

        return count_below(f, 0)

    def pick_one(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support of ``f``, or None."""
        if f == FALSE_NODE:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while node not in (FALSE_NODE, TRUE_NODE):
            name = self._level_vars[self._level[node]]
            if self._high[node] != FALSE_NODE:
                assignment[name] = True
                node = self._high[node]
            else:
                assignment[name] = False
                node = self._low[node]
        for name in self.support(f):
            assignment.setdefault(name, False)
        return assignment

    def all_sat(self, f: int, over: Optional[Sequence[str]] = None) -> Iterator[Dict[str, bool]]:
        """Enumerate all satisfying assignments over ``over`` (default: support)."""
        names = sorted(over) if over is not None else sorted(self.support(f))
        missing = self.support(f) - set(names)
        if missing:
            raise ValueError(f"enumeration variables {sorted(missing)} are not in 'over'")

        def rec(node: int, index: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == FALSE_NODE:
                return
            if index == len(names):
                if node == TRUE_NODE:
                    yield dict(partial)
                return
            name = names[index]
            for value in (False, True):
                if node in (FALSE_NODE, TRUE_NODE):
                    child = node
                elif self._level_vars[self._level[node]] == name:
                    child = self._high[node] if value else self._low[node]
                else:
                    child = node
                partial[name] = value
                yield from rec(child, index + 1, partial)
            del partial[name]

        yield from rec(f, 0, {})

    def dag_size(self, f: int) -> int:
        """Number of distinct nodes reachable from ``f`` (excluding terminals)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE_NODE, TRUE_NODE) or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
