"""Static variable ordering heuristics for the BDD manager.

A good order keeps related signals adjacent.  For pipeline interlock
formulas the natural order is "by stage, back to front", which mirrors how
control flows backwards from the completion stages and keeps the moe/rtm
flags of each stage together.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

from ..expr.ast import Expr, variables_of

_REGISTER_INDEX_RE = re.compile(r"(?:\[(\d+)\]|=(\d+))$")


def register_index_of(name: str) -> Optional[int]:
    """The trailing register index of an indexed signal name, or None.

    Recognises the two indexed conventions of :mod:`repro.pipeline.signals`:
    scoreboard bits ``scb[5]`` and lowered one-hot indicators such as
    ``c.regaddr=5`` or ``long.1.src.regaddr=5``.
    """
    match = _REGISTER_INDEX_RE.search(name)
    if match is None:
        return None
    return int(match.group(1) or match.group(2))


def register_interleaved_order(names: Sequence[str]) -> List[str]:
    """Group register-indexed signals by their index; keep the rest in place.

    The scoreboard stall term is a disjunction of per-register cubes
    (``sel=a ∧ scb[a] ∧ ¬bus.regaddr=a``): with all selectors ordered before
    all scoreboard bits the BDD must remember every selector seen so far —
    the classic interleaving blow-up, exponential in the register count
    (1.7M nodes per issue condition at 16 registers).  Placing each
    register's selector, scoreboard and bypass indicators adjacently makes
    the same conditions linear (a few thousand nodes for the whole
    FirePath-scale specification).

    Non-indexed signals keep their relative order and precede the indexed
    groups, which are emitted in ascending register index.
    """
    plain: List[str] = []
    grouped: dict = {}
    for name in names:
        index = register_index_of(name)
        if index is None:
            plain.append(name)
        else:
            grouped.setdefault(index, []).append(name)
    order = plain
    for index in sorted(grouped):
        order.extend(grouped[index])
    return order


def order_from_exprs(exprs: Iterable[Expr]) -> List[str]:
    """Deterministic (sorted) order over all variables of the expressions."""
    return sorted(variables_of(list(exprs)))


def occurrence_order(exprs: Sequence[Expr]) -> List[str]:
    """Order variables by first occurrence in a pre-order walk.

    Keeps variables that appear together in a sub-formula close in the
    order, which is a cheap approximation of the classic fan-in heuristic.
    """
    seen = []
    seen_set = set()
    for expr in exprs:
        for node in _preorder(expr):
            name = getattr(node, "name", None)
            if name is not None and name not in seen_set:
                seen_set.add(name)
                seen.append(name)
    return seen


def interleaved_order(groups: Sequence[Sequence[str]]) -> List[str]:
    """Round-robin interleave several signal groups.

    Useful when comparing an implementation against a specification that
    uses renamed copies of the same signals: keeping each signal next to its
    copy avoids the exponential blow-up of a concatenated order.
    """
    order: List[str] = []
    seen = set()
    longest = max((len(g) for g in groups), default=0)
    for index in range(longest):
        for group in groups:
            if index < len(group):
                name = group[index]
                if name not in seen:
                    seen.add(name)
                    order.append(name)
    return order


def stage_major_order(stage_signal_names: Sequence[Sequence[str]]) -> List[str]:
    """Concatenate per-stage signal groups, deepest pipeline stage first.

    This follows the paper's observation that control flows backwards from
    the completion stages: placing a stage's moe flag right after the
    signals that feed it keeps the interlock BDDs small.
    """
    order: List[str] = []
    seen = set()
    for group in stage_signal_names:
        for name in group:
            if name not in seen:
                seen.add(name)
                order.append(name)
    return order


def _preorder(expr: Expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))
