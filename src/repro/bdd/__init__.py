"""Reduced ordered BDD package used by the specification and checking layers."""

from .expr_to_bdd import ExprBddContext, compile_expr
from .manager import FALSE_NODE, TRUE_NODE, BddManager, BddStats, CoverBudgetExceeded
from .ordering import (
    interleaved_order,
    occurrence_order,
    order_from_exprs,
    register_index_of,
    register_interleaved_order,
    stage_major_order,
)
from .serialize import (
    ArtifactError,
    dump_nodes,
    inspect_artifact,
    load_nodes,
)

__all__ = [
    "ArtifactError",
    "BddManager",
    "BddStats",
    "CoverBudgetExceeded",
    "FALSE_NODE",
    "TRUE_NODE",
    "dump_nodes",
    "inspect_artifact",
    "load_nodes",
    "ExprBddContext",
    "compile_expr",
    "interleaved_order",
    "occurrence_order",
    "order_from_exprs",
    "register_index_of",
    "register_interleaved_order",
    "stage_major_order",
]
