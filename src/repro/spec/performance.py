"""Performance and combined specifications derived from a functional spec.

These are thin, immutable views over a :class:`~repro.spec.functional.FunctionalSpec`;
the real work (proving that flipping the implications is the unique optimum)
happens in :mod:`repro.spec.derivation` and :mod:`repro.spec.properties`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..expr.ast import Expr, Iff, Implies, Not, Var
from ..expr.builders import big_and
from ..expr.printer import to_text, to_unicode
from .functional import FunctionalSpec, StallClause


@dataclass(frozen=True)
class PerformanceClause:
    """One per-stage performance implication ``¬moe → condition``.

    A violation of this clause is an *unnecessary pipeline stall* — the
    stage reported that it is not moving although no functional constraint
    required it to stall (the paper's definition of a performance bug).
    """

    moe: str
    condition: Expr
    label: str = ""

    def formula(self) -> Expr:
        """The implication ``¬moe → condition``."""
        return Implies(Not(Var(self.moe)), self.condition)

    def violation_condition(self) -> Expr:
        """The situation that constitutes an unnecessary stall: ``¬moe ∧ ¬condition``."""
        return Not(Var(self.moe)) & Not(self.condition)

    def describe(self) -> str:
        """Single-line rendering used in listings and assertion comments."""
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}!{self.moe} -> {to_text(self.condition)}"


@dataclass(frozen=True)
class CombinedClause:
    """One per-stage combined equivalence ``condition ↔ ¬moe``.

    The combined clause is what a maximum-performance implementation must
    realise: the stage stalls if and only if some functional constraint
    requires it.
    """

    moe: str
    condition: Expr
    label: str = ""

    def formula(self) -> Expr:
        """The equivalence ``condition ↔ ¬moe``."""
        return Iff(self.condition, Not(Var(self.moe)))

    def moe_definition(self) -> Expr:
        """The moe flag's defining expression: ``moe = ¬condition``."""
        return Not(self.condition)


class PerformanceSpec:
    """The maximum performance specification (Figure 3 of the paper)."""

    def __init__(self, functional: FunctionalSpec):
        self._functional = functional
        self._clauses = [
            PerformanceClause(moe=c.moe, condition=c.condition, label=c.label)
            for c in functional.clauses
        ]

    @property
    def name(self) -> str:
        """Name inherited from the functional specification."""
        return self._functional.name

    @property
    def functional(self) -> FunctionalSpec:
        """The functional specification this was derived from."""
        return self._functional

    @property
    def clauses(self) -> List[PerformanceClause]:
        """Per-stage performance clauses, in functional clause order."""
        return list(self._clauses)

    def clause_for(self, moe: str) -> PerformanceClause:
        """The performance clause governing a given moe flag."""
        for clause in self._clauses:
            if clause.moe == moe:
                return clause
        raise KeyError(f"no performance clause for moe flag {moe!r}")

    def formula(self) -> Expr:
        """``SPEC_perf``: the conjunction of all performance implications."""
        return big_and(clause.formula() for clause in self._clauses)

    def describe(self, unicode_symbols: bool = False) -> str:
        """Figure-3 style listing of the specification."""
        render = to_unicode if unicode_symbols else to_text
        arrow = "→" if unicode_symbols else "->"
        neg = "¬" if unicode_symbols else "!"
        lines = [f"SPEC_perf for {self.name}:"]
        for clause in self._clauses:
            lines.append(f"  {neg}{clause.moe} {arrow} {render(clause.condition)}")
        return "\n".join(lines)


class CombinedSpec:
    """The combined functional + performance specification.

    Section 2.2.3: "the combined specification would contain formulas of the
    form condition ↔ ¬moe"; Section 3 proves this is the unique maximum
    performance implementation of the functional specification.
    """

    def __init__(self, functional: FunctionalSpec):
        self._functional = functional
        self._clauses = [
            CombinedClause(moe=c.moe, condition=c.condition, label=c.label)
            for c in functional.clauses
        ]

    @property
    def name(self) -> str:
        """Name inherited from the functional specification."""
        return self._functional.name

    @property
    def functional(self) -> FunctionalSpec:
        """The functional specification this was derived from."""
        return self._functional

    @property
    def performance(self) -> PerformanceSpec:
        """The performance half of the combined specification."""
        return PerformanceSpec(self._functional)

    @property
    def clauses(self) -> List[CombinedClause]:
        """Per-stage combined clauses, in functional clause order."""
        return list(self._clauses)

    def formula(self) -> Expr:
        """The conjunction of all per-stage equivalences."""
        return big_and(clause.formula() for clause in self._clauses)

    def describe(self, unicode_symbols: bool = False) -> str:
        """Listing of the combined specification."""
        render = to_unicode if unicode_symbols else to_text
        arrow = "↔" if unicode_symbols else "<->"
        neg = "¬" if unicode_symbols else "!"
        lines = [f"SPEC_combined for {self.name}:"]
        for clause in self._clauses:
            lines.append(f"  {render(clause.condition)} {arrow} {neg}{clause.moe}")
        return "\n".join(lines)


def performance_spec_of(functional: FunctionalSpec) -> PerformanceSpec:
    """Convenience constructor mirroring the paper's 'flip the implications'."""
    return PerformanceSpec(functional)


def combined_spec_of(functional: FunctionalSpec) -> CombinedSpec:
    """Convenience constructor for the combined specification."""
    return CombinedSpec(functional)
