"""Fixed-point derivation of the most liberal moe assignment (Section 3.2).

The paper proves that, for a functional specification with the Section 3.1
properties, a unique *most liberal* assignment ``MOE`` to the moving-or-
empty flags exists and satisfies::

    MOE_i  =  ¬ F_i(¬MOE)                                   (equation 4)

This module computes that fixed point in two ways:

* **concretely** (:func:`concrete_most_liberal`) — for a given valuation of
  the primary inputs, producing the boolean vector the interlock should
  drive on that cycle.  The cycle-accurate simulator's reference interlock
  calls this every cycle.

* **symbolically** (:func:`symbolic_most_liberal`) — producing, for every
  stage, a closed form of ``MOE_i`` over the primary inputs only.  This is
  what the assertion generator, the property checkers and the RTL
  synthesiser consume.

Both start from the all-true vector (the most liberal candidate) and apply
``MOE := ¬F(¬MOE)`` until convergence; monotonicity of ``F`` makes the
iteration a descending chain on a finite lattice, so it terminates, and the
greatest fixed point it reaches is exactly the paper's ``MOE``.

The symbolic derivation iterates **purely in BDD space**: every stall
condition is compiled once against a register-interleaved variable order,
and each step is one memoised simultaneous composition plus a cached
negation.  The result is a :class:`DerivationResult` holding
:class:`~repro.symbolic.SymbolicFunction` closed forms; human-readable
expressions are materialized lazily as minimized ISOP covers only when a
printer, HDL backend or monitor asks for them.  (The previous
implementation kept an expression-tree candidate "in lock step" with the
BDD side; the substitution residue grew super-linearly and the full
16-register FirePath derivation never finished flattening its n-ary
operands.  That legacy pipeline remains reachable as ``backend="expr"``
for A/B debugging and is deprecated.)
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..bdd.expr_to_bdd import ExprBddContext
from ..bdd.ordering import register_interleaved_order
from ..bdd.serialize import ArtifactError
from ..expr.ast import Expr, Not, TRUE, Var
from ..expr.evaluate import eval_expr
from ..expr.printer import to_text
from ..expr.transform import simplify, substitute
from ..obs import KernelWatch, current_trace_id, span
from ..symbolic import SymbolicContext, SymbolicFunction
from .functional import FunctionalSpec, SpecificationError
from .performance import CombinedSpec, PerformanceSpec


class DerivationError(RuntimeError):
    """Raised when the fixed-point iteration fails to converge.

    With a well-formed (monotone) functional specification this cannot
    happen; it indicates the specification violates Section 3.1.
    """


class DerivationResult:
    """Outcome of a symbolic fixed-point derivation.

    The primary payload is :attr:`moe_functions` — one
    :class:`~repro.symbolic.SymbolicFunction` per moe flag, all sharing one
    :class:`~repro.symbolic.SymbolicContext` — which downstream layers
    (property checks, equivalence, BMC obligations, synthesis) consume
    directly as canonical BDD nodes.  :attr:`moe_expressions` is a *view*:
    the closed forms materialized lazily as minimized ISOP covers, for
    printers, HDL emitters and per-cycle evaluators; materialization is
    cached, so touching it twice costs nothing extra.

    Results produced by expression-level passes (the legacy ``expr``
    backend, the synthesis optimiser) carry expressions only and no
    functions.

    Attributes:
        spec: the functional specification the derivation started from.
        iterations: number of global iterations until convergence.
        feed_forward: whether the moe dependency graph was acyclic (if so
            the iteration converges in one pass over a topological order).
        bdd_sizes: per-flag BDD node counts of the closed forms, a rough
            complexity measure reported by the scale benchmarks.
        moe_functions: per-flag closed forms as SymbolicFunctions, or None
            for expression-backed results.
    """

    def __init__(
        self,
        spec: FunctionalSpec,
        iterations: int,
        feed_forward: bool,
        moe_functions: Optional[Dict[str, SymbolicFunction]] = None,
        moe_expressions: Optional[Dict[str, Expr]] = None,
        bdd_sizes: Optional[Dict[str, int]] = None,
    ):
        if moe_functions is None and moe_expressions is None:
            raise ValueError("a derivation result needs functions or expressions")
        self.spec = spec
        self.iterations = iterations
        self.feed_forward = feed_forward
        self.moe_functions = moe_functions
        # Kept by reference: the synthesis optimiser hands in a mapping it
        # fills per flag after constructing the result object.
        self._moe_expressions = moe_expressions
        if bdd_sizes is None and moe_functions is not None:
            bdd_sizes = {
                moe: function.dag_size() for moe, function in moe_functions.items()
            }
        self.bdd_sizes: Dict[str, int] = dict(bdd_sizes or {})
        self._stall_expressions: Optional[Dict[str, Expr]] = None

    # -- the symbolic side -------------------------------------------------------

    @property
    def context(self) -> Optional[SymbolicContext]:
        """The shared symbolic context, or None for expression-backed results."""
        if self.moe_functions is None:
            return None
        return next(iter(self.moe_functions.values())).context

    def moe_function(self, moe: str) -> SymbolicFunction:
        """The closed form of one flag as a SymbolicFunction."""
        if self.moe_functions is None:
            raise KeyError(
                "this derivation result is expression-backed and carries no "
                "symbolic functions (legacy 'expr' backend or optimiser output)"
            )
        return self.moe_functions[moe]

    def stall_functions(self) -> Dict[str, SymbolicFunction]:
        """Closed-form stall conditions ``¬MOE_i`` as SymbolicFunctions.

        Negation is a cached involution in the BDD kernel, so this is free.
        """
        if self.moe_functions is None:
            raise KeyError(
                "this derivation result is expression-backed and carries no "
                "symbolic functions (legacy 'expr' backend or optimiser output)"
            )
        return {moe: ~function for moe, function in self.moe_functions.items()}

    # -- materialized views ------------------------------------------------------

    @property
    def moe_expressions(self) -> Dict[str, Expr]:
        """Closed-form ``MOE_i`` per flag, materialized lazily and cached.

        Function-backed results materialize each flag as a minimized
        irredundant-SOP cover of its BDD node (not the substitution residue
        the iteration would have produced at expression level).
        """
        if self._moe_expressions is None:
            self._moe_expressions = {
                moe: function.to_expr()
                for moe, function in self.moe_functions.items()
            }
        # A copy, like stall_expressions(): callers that rewrite the mapping
        # must not corrupt the cached closed forms other consumers read.
        return dict(self._moe_expressions)

    def moe_expression(self, moe: str) -> Expr:
        """The materialized closed form of one flag."""
        return self.moe_expressions[moe]

    def stall_expressions(self) -> Dict[str, Expr]:
        """Closed-form stall conditions ``¬MOE_i`` per stage (memoised).

        Function-backed results extract a minimized cover of the *negated*
        node — usually smaller than ``Not(cover)`` — and the result is
        cached, so monitors and reports can call this per trace without
        re-simplifying anything.
        """
        if self._stall_expressions is None:
            if self.moe_functions is not None:
                self._stall_expressions = {
                    moe: (~function).to_expr()
                    for moe, function in self.moe_functions.items()
                }
            else:
                self._stall_expressions = {
                    moe: simplify(Not(expr))
                    for moe, expr in self.moe_expressions.items()
                }
        return dict(self._stall_expressions)

    # -- artifact round trip -----------------------------------------------------

    def to_artifact_bytes(self, include_covers: bool = False) -> bytes:
        """Serialize the whole derivation as one binary artifact.

        The artifact carries the closed-form moe functions (level-ordered
        node table + variable-order manifest), the derivation metadata
        (iterations, feed-forward flag, per-flag BDD sizes) and — with
        ``include_covers`` — the minimized ISOP covers, so a loader gets
        cached materialization too.  The specification itself is *not*
        embedded: it is cheaply rebuilt from the architecture, and
        :meth:`from_artifact_bytes` verifies the artifact matches the
        spec it is being attached to.

        Expression-backed results (legacy ``expr`` backend, optimiser
        output) carry no symbolic functions and cannot be serialized.
        """
        if self.moe_functions is None:
            raise ValueError(
                "expression-backed derivation results cannot be serialized; "
                "re-derive with the default 'bdd' backend"
            )
        from ..symbolic.serialize import dump_functions

        payload = {
            "kind": "derivation",
            "spec": self.spec.name,
            "iterations": self.iterations,
            "feed_forward": self.feed_forward,
            "bdd_sizes": dict(self.bdd_sizes),
        }
        return dump_functions(
            self.moe_functions, payload=payload, include_covers=include_covers
        )

    @classmethod
    def from_artifact_bytes(
        cls,
        spec: FunctionalSpec,
        data: bytes,
        context: Optional[SymbolicContext] = None,
    ) -> "DerivationResult":
        """Rebuild a derivation from artifact bytes for a known spec.

        Loads into a fresh context mirroring the source's variable order
        (balanced-reduce on, matching :func:`symbolic_most_liberal`), or
        splices into ``context`` when given.  Raises
        :class:`~repro.bdd.serialize.ArtifactError` when the bytes are
        corrupt, truncated, or do not belong to ``spec`` — callers treat
        that exactly like a cache miss and re-derive.
        """
        from ..symbolic.serialize import load_functions

        loaded = load_functions(data, context=context, balanced_reduce=True)
        payload = loaded.payload
        if payload.get("kind") != "derivation":
            raise ArtifactError("artifact does not hold a derivation result")
        if payload.get("spec") != spec.name:
            raise ArtifactError(
                f"derivation artifact belongs to spec {payload.get('spec')!r}, "
                f"not {spec.name!r}"
            )
        if set(loaded.functions) != set(spec.moe_flags()):
            raise ArtifactError(
                "derivation artifact's moe flags do not match the specification"
            )
        return cls(
            spec=spec,
            iterations=int(payload.get("iterations", 1)),
            feed_forward=bool(payload.get("feed_forward", False)),
            moe_functions=loaded.functions,
            bdd_sizes=payload.get("bdd_sizes"),
        )

    # -- evaluation and rendering ------------------------------------------------

    def evaluate(self, input_valuation: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate every closed form under a concrete input valuation."""
        if self.moe_functions is not None:
            return {
                moe: function.evaluate(input_valuation)
                for moe, function in self.moe_functions.items()
            }
        return {
            moe: eval_expr(expr, input_valuation)
            for moe, expr in self.moe_expressions.items()
        }

    def describe(self) -> str:
        """Human-readable listing of the (materialized) closed forms."""
        lines = [
            f"Maximum-performance moe assignment for {self.spec.name} "
            f"(converged after {self.iterations} iteration(s)):"
        ]
        for moe, expr in self.moe_expressions.items():
            lines.append(f"  {moe} = {to_text(expr)}")
        return "\n".join(lines)


def concrete_most_liberal(
    spec: FunctionalSpec,
    input_valuation: Mapping[str, bool],
    max_iterations: Optional[int] = None,
) -> Dict[str, bool]:
    """The most liberal moe vector for one concrete input valuation.

    Starts with every flag true and repeatedly applies equation (4); the
    result is the unique assignment with the fewest stalls that still
    satisfies the functional specification under the given inputs.
    """
    moe_flags = spec.moe_flags()
    limit = max_iterations if max_iterations is not None else len(moe_flags) + 2
    assignment: Dict[str, bool] = dict(input_valuation)
    for moe in moe_flags:
        assignment[moe] = True
    for _ in range(limit):
        changed = False
        for clause in spec.clauses:
            new_value = not eval_expr(clause.condition, assignment)
            if assignment[clause.moe] and not new_value:
                assignment[clause.moe] = False
                changed = True
            elif not assignment[clause.moe] and new_value:
                # A monotone specification can only lower flags during the
                # descent from all-true; a raise means F is not monotone.
                raise DerivationError(
                    f"stall condition for {clause.moe} is not monotone in the negated "
                    "moe flags; the Section 3.1 preconditions are violated"
                )
        if not changed:
            return {moe: assignment[moe] for moe in moe_flags}
    raise DerivationError(
        f"fixed-point iteration did not converge within {limit} iterations"
    )


def _dependency_order(flags: List[str], deps: Dict[str, List[str]]) -> List[str]:
    """Topological order of the moe flags by stall-condition dependencies.

    A flag whose stall condition reads other flags is scheduled after them
    (Kahn's algorithm); members of dependency cycles are appended in the
    original specification order, which the chaotic iteration then settles
    by re-enqueueing.
    """
    flag_set = set(flags)
    pending: Dict[str, set] = {
        moe: {read for read in deps.get(moe, ()) if read in flag_set} for moe in flags
    }
    dependents: Dict[str, List[str]] = {moe: [] for moe in flags}
    for moe in flags:
        for read in deps.get(moe, ()):
            if read in flag_set:
                dependents[read].append(moe)
    ordered = [moe for moe in flags if not pending[moe]]
    placed = set(ordered)
    head = 0
    while head < len(ordered):
        for dependent in dependents[ordered[head]]:
            waiting = pending[dependent]
            waiting.discard(ordered[head])
            if not waiting and dependent not in placed:
                ordered.append(dependent)
                placed.add(dependent)
        head += 1
    ordered.extend(moe for moe in flags if moe not in placed)
    return ordered


def derivation_order(spec: FunctionalSpec) -> List[str]:
    """The BDD variable order the symbolic derivation compiles against.

    Moe flags go first — the candidates they are replaced by range over
    primary inputs only, so composition then never lifts a variable above
    its substitution point — followed by the primary inputs with
    register-indexed signals interleaved per register (see
    :func:`repro.bdd.ordering.register_interleaved_order`; the concatenated
    order is exponential in the scoreboard width).
    """
    return list(spec.moe_flags()) + register_interleaved_order(spec.input_signals())


def symbolic_most_liberal(
    spec: FunctionalSpec,
    max_iterations: Optional[int] = None,
    simplify_result: bool = True,
    backend: str = "bdd",
    context: Optional[SymbolicContext] = None,
) -> DerivationResult:
    """Closed-form most liberal moe assignment over the primary inputs.

    The fixed point is iterated purely in BDD space: every stall condition
    is compiled once, each step substitutes the candidate moe functions
    with a (memoised) simultaneous composition and negates through the
    kernel's involution cache, and convergence is a pointer comparison.
    The returned closed forms are :class:`~repro.symbolic.SymbolicFunction`
    objects; expressions are materialized lazily as minimized ISOP covers.

    Args:
        spec: the functional specification to derive from.
        max_iterations: iteration bound (default: number of flags + 2).
        simplify_result: legacy-backend only — structurally simplify the
            per-step expression candidates.
        backend: ``"bdd"`` (default) or ``"expr"``.  The expression backend
            is the pre-SymbolicFunction pipeline that carries an expression
            candidate in lock step with the BDD side; it is kept reachable
            for A/B debugging (``repro derive --backend expr``) and is
            **deprecated** — it re-flattens n-ary substitution residue each
            step and cannot complete the full 16-register FirePath
            derivation.
        context: an existing :class:`~repro.symbolic.SymbolicContext` to
            derive into (so several specifications can be compared by
            pointer in one shared unique table).  By default a fresh
            context with the register-interleaved order is created.
    """
    if backend not in ("bdd", "expr"):
        raise ValueError(f"backend must be 'bdd' or 'expr', got {backend!r}")
    if backend == "expr":
        return _symbolic_most_liberal_expr(spec, max_iterations, simplify_result)

    moe_flags = spec.moe_flags()
    limit = max_iterations if max_iterations is not None else len(moe_flags) + 2
    if context is None:
        context = SymbolicContext(derivation_order(spec), balanced_reduce=True)
    manager = context.manager
    # The loop state below is raw node ids (not SymbolicFunction handles),
    # so an automatic reorder mid-iteration could reclaim nodes only this
    # frame references; postpone it until the fixed point converges.
    # The stats() snapshot is not free, so the kernel checkpoint around
    # the fixed point is taken only when a trace session is active.
    watch = KernelWatch(manager) if current_trace_id() is not None else None
    with manager.postpone_reorder():
        with span("derive.compile", clauses=len(spec.clauses)):
            condition_nodes: Dict[str, int] = {
                clause.moe: context.lift(clause.condition).node
                for clause in spec.clauses
            }
        current: Dict[str, int] = {moe: manager.true() for moe in moe_flags}

        # The descending Kleene iteration from all-true reaches the greatest
        # fixed point in any fair update order (chaotic iteration), so the
        # flags are processed as a worklist in dependency order: a flag is
        # only re-evaluated after the flags its stall condition reads have
        # settled, which for a feed-forward pipeline means exactly one
        # evaluation per flag instead of a full Jacobi sweep per pipeline
        # depth.  Cyclic dependencies simply re-enqueue until stable.
        # Dependencies are kept in clause order, not set order: the kernel
        # assigns node ids in creation order, so hash-randomised iteration
        # over support sets would permute the composition schedule (and the
        # resulting node layout) from process to process.  The fixed point
        # is the same either way, but the run would not be reproducible.
        moe_set = set(moe_flags)
        deps: Dict[str, List[str]] = {}
        for clause in spec.clauses:
            read_set = manager.support(condition_nodes[clause.moe]) & moe_set
            deps[clause.moe] = [moe for moe in moe_flags if moe in read_set]
        # Chaotic iteration reaches the greatest fixed point only for a
        # monotone map, and unlike the Jacobi sweep it can settle on a
        # spurious fixed point of a non-monotone one instead of visibly
        # oscillating — so monotonicity (F_i[v:=1] → F_i[v:=0] for every
        # flag v the condition reads) is checked explicitly up front.
        with span("derive.monotonicity"):
            for moe, reads in deps.items():
                condition = condition_nodes[moe]
                for name in reads:
                    with_move = manager.restrict(condition, name, True)
                    with_stall = manager.restrict(condition, name, False)
                    if (
                        manager.or_(with_stall, manager.not_(with_move))
                        != manager.true()
                    ):
                        raise DerivationError(
                            f"stall condition for {moe} is not monotone in the "
                            f"negated moe flag {name}; the Section 3.1 "
                            "preconditions are violated"
                        )
        dependents: Dict[str, List[str]] = {moe: [] for moe in moe_flags}
        for moe, reads in deps.items():
            for read in reads:
                dependents[read].append(moe)
        clause_of = {clause.moe: clause for clause in spec.clauses}
        order = _dependency_order(list(clause_of), deps)

        with span("derive.fixed_point", flags=len(moe_flags)) as fp_span:
            evaluations: Dict[str, int] = {moe: 0 for moe in moe_flags}
            queue = list(order)
            queued = set(queue)
            head = 0
            while head < len(queue):
                moe = queue[head]
                head += 1
                queued.discard(moe)
                evaluations[moe] += 1
                if evaluations[moe] > limit:
                    raise DerivationError(
                        f"symbolic fixed-point iteration did not converge within "
                        f"{limit} iterations"
                    )
                node = manager.not_(
                    manager.compose_many(condition_nodes[moe], current)
                )
                if node != current[moe]:
                    current[moe] = node
                    for dependent in dependents[moe]:
                        if dependent not in queued:
                            queue.append(dependent)
                            queued.add(dependent)
            iterations = max(evaluations.values(), default=1)
            fp_span.annotate(
                iterations=iterations, evaluations=sum(evaluations.values())
            )
            if watch is not None:
                fp_span.annotate(kernel=watch.delta())

    # Confirm the fixed point really only mentions primary inputs.
    input_scope = tuple(spec.input_signals())
    input_set = set(input_scope)
    for moe, node in current.items():
        leftover = manager.support(node) - input_set
        if leftover:
            raise DerivationError(
                f"closed form for {moe} still refers to {sorted(leftover)}; "
                "the specification's moe dependency structure is malformed"
            )

    with span("derive.extract", flags=len(current)):
        moe_functions = {
            moe: context.function(node, scope=input_scope)
            for moe, node in current.items()
        }
    return DerivationResult(
        spec=spec,
        iterations=iterations,
        feed_forward=spec.is_feed_forward(),
        moe_functions=moe_functions,
    )


def _symbolic_most_liberal_expr(
    spec: FunctionalSpec,
    max_iterations: Optional[int],
    simplify_result: bool,
) -> DerivationResult:
    """Deprecated expression-level pipeline (kept for A/B debugging).

    Keeps an expression candidate in lock step with the BDD side; each step
    substitutes the candidates into the stall conditions and negates, with
    convergence detected semantically on the BDD side.  The substitution
    residue grows super-linearly with pipeline depth and register count.
    """
    moe_flags = spec.moe_flags()
    limit = max_iterations if max_iterations is not None else len(moe_flags) + 2
    context = ExprBddContext(list(moe_flags) + list(spec.input_signals()))
    manager = context.manager
    condition_nodes: Dict[str, int] = {
        clause.moe: context.compile(clause.condition) for clause in spec.clauses
    }
    current: Dict[str, Expr] = {moe: TRUE for moe in moe_flags}
    current_nodes: Dict[str, int] = {moe: manager.true() for moe in moe_flags}

    iterations = 0
    for _ in range(limit):
        iterations += 1
        changed = False
        next_exprs: Dict[str, Expr] = {}
        next_nodes: Dict[str, int] = {}
        for clause in spec.clauses:
            substituted = substitute(clause.condition, current)
            candidate = simplify(Not(substituted)) if simplify_result else Not(substituted)
            node = manager.not_(
                manager.compose_many(condition_nodes[clause.moe], current_nodes)
            )
            next_exprs[clause.moe] = candidate
            next_nodes[clause.moe] = node
            if node != current_nodes[clause.moe]:
                changed = True
        current = next_exprs
        current_nodes = next_nodes
        if not changed:
            break
    else:
        raise DerivationError(
            f"symbolic fixed-point iteration did not converge within {limit} iterations"
        )

    input_set = set(spec.input_signals())
    for moe, expr in current.items():
        leftover = expr.variables() - input_set
        if leftover:
            raise DerivationError(
                f"closed form for {moe} still refers to {sorted(leftover)}; "
                "the specification's moe dependency structure is malformed"
            )

    bdd_sizes = {moe: manager.dag_size(node) for moe, node in current_nodes.items()}
    return DerivationResult(
        spec=spec,
        iterations=iterations,
        feed_forward=spec.is_feed_forward(),
        moe_expressions=current,
        bdd_sizes=bdd_sizes,
    )


def derive_performance_spec(
    spec: FunctionalSpec, check_preconditions: bool = True
) -> PerformanceSpec:
    """Derive the maximum performance specification from a functional spec.

    This is the operation the paper performs manually in Section 2.2.2 and
    justifies in Section 3: because the functional specification satisfies
    properties (1) and (2), the optimal implementation is ``¬moe_i ↔ F_i``,
    so the performance half is obtained by flipping every implication.

    When ``check_preconditions`` is true the Section 3.1 properties are
    verified first (see :mod:`repro.spec.properties`) and a
    :class:`~repro.spec.functional.SpecificationError` is raised if they fail
    — deriving a "maximum performance" spec from a non-monotone functional
    spec would be unsound.
    """
    if check_preconditions:
        from .properties import check_all_properties

        report = check_all_properties(spec)
        if not report.all_hold():
            raise SpecificationError(
                "functional specification violates the Section 3.1 preconditions:\n"
                + report.describe()
            )
    return PerformanceSpec(spec)


def derive_combined_spec(
    spec: FunctionalSpec, check_preconditions: bool = True
) -> CombinedSpec:
    """Derive the combined (functional + performance) specification."""
    if check_preconditions:
        from .properties import check_all_properties

        report = check_all_properties(spec)
        if not report.all_hold():
            raise SpecificationError(
                "functional specification violates the Section 3.1 preconditions:\n"
                + report.describe()
            )
    return CombinedSpec(spec)


def most_liberal_is_maximal(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> bool:
    """Verify the Section 3.2 subsumption theorem for a specification.

    Checks, with BDDs, that every assignment satisfying the functional
    specification is pointwise below the derived ``MOE``::

        SPEC_func(moe, inputs)  →  (moe_i → MOE_i(inputs))     for every i

    This is the machine-checked version of the paper's inductive proof.
    The claim is decided directly on the derivation's BDD nodes — no
    expressions are materialized.
    """
    derivation = derivation or symbolic_most_liberal(spec)
    if derivation.moe_functions is not None:
        context = derivation.context
        manager = context.manager
        functional_node = context.lift(spec.functional_formula()).node
        for moe in spec.moe_flags():
            # The claim is valid iff SPEC_func ∧ moe_i ∧ ¬MOE_i is
            # unsatisfiable; the fused relational product decides that in
            # one sweep without building the conjunction.
            refutation = manager.and_(
                manager.var(moe), manager.not_(derivation.moe_functions[moe].node)
            )
            witness = manager.and_exists(
                functional_node, refutation, manager.variable_order()
            )
            if witness != manager.false():
                return False
        return True
    context = ExprBddContext()
    manager = context.manager
    functional_node = context.compile(spec.functional_formula())
    for moe in spec.moe_flags():
        refutation = context.compile(Not(Var(moe).implies(derivation.moe_expressions[moe])))
        witness = manager.and_exists(
            functional_node, refutation, manager.variable_order()
        )
        if witness != manager.false():
            return False
    return True


def unnecessary_stall_condition(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> Dict[str, Expr]:
    """Per-stage condition under which an observed stall is unnecessary.

    For each stage this is ``MOE_i(inputs)`` itself: if the closed-form most
    liberal assignment says the stage could move, any implementation that
    stalls it has introduced a performance bug.  The stall classifier in
    :mod:`repro.analysis.stalls` evaluates these expressions on simulation
    traces.
    """
    derivation = derivation or symbolic_most_liberal(spec)
    return dict(derivation.moe_expressions)
