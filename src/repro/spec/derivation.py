"""Fixed-point derivation of the most liberal moe assignment (Section 3.2).

The paper proves that, for a functional specification with the Section 3.1
properties, a unique *most liberal* assignment ``MOE`` to the moving-or-
empty flags exists and satisfies::

    MOE_i  =  ¬ F_i(¬MOE)                                   (equation 4)

This module computes that fixed point in two ways:

* **concretely** (:func:`concrete_most_liberal`) — for a given valuation of
  the primary inputs, producing the boolean vector the interlock should
  drive on that cycle.  The cycle-accurate simulator's reference interlock
  calls this every cycle.

* **symbolically** (:func:`symbolic_most_liberal`) — producing, for every
  stage, a closed-form expression of ``MOE_i`` over the primary inputs
  only.  This is what the assertion generator and the RTL synthesiser
  consume.

Both start from the all-true vector (the most liberal candidate) and apply
``MOE := ¬F(¬MOE)`` until convergence; monotonicity of ``F`` makes the
iteration a descending chain on a finite lattice, so it terminates, and the
greatest fixed point it reaches is exactly the paper's ``MOE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..bdd.expr_to_bdd import ExprBddContext
from ..expr.ast import Expr, Not, TRUE, Var
from ..expr.evaluate import eval_expr
from ..expr.printer import to_text
from ..expr.transform import simplify, substitute
from .functional import FunctionalSpec, SpecificationError
from .performance import CombinedSpec, PerformanceSpec


class DerivationError(RuntimeError):
    """Raised when the fixed-point iteration fails to converge.

    With a well-formed (monotone) functional specification this cannot
    happen; it indicates the specification violates Section 3.1.
    """


@dataclass
class DerivationResult:
    """Outcome of a symbolic fixed-point derivation.

    Attributes:
        spec: the functional specification the derivation started from.
        moe_expressions: closed-form ``MOE_i`` per moe flag, over primary
            inputs only.
        iterations: number of global iterations until convergence.
        feed_forward: whether the moe dependency graph was acyclic (if so
            the iteration converges in one pass over a topological order).
        bdd_sizes: per-flag BDD node counts of the closed forms, a rough
            complexity measure reported by the scale benchmarks.
    """

    spec: FunctionalSpec
    moe_expressions: Dict[str, Expr]
    iterations: int
    feed_forward: bool
    bdd_sizes: Dict[str, int] = field(default_factory=dict)

    def stall_expressions(self) -> Dict[str, Expr]:
        """Closed-form stall conditions ``¬MOE_i`` per stage."""
        return {moe: simplify(Not(expr)) for moe, expr in self.moe_expressions.items()}

    def moe_expression(self, moe: str) -> Expr:
        """The closed form of one flag."""
        return self.moe_expressions[moe]

    def evaluate(self, input_valuation: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate every closed form under a concrete input valuation."""
        return {
            moe: eval_expr(expr, input_valuation)
            for moe, expr in self.moe_expressions.items()
        }

    def describe(self) -> str:
        """Human-readable listing of the closed forms."""
        lines = [
            f"Maximum-performance moe assignment for {self.spec.name} "
            f"(converged after {self.iterations} iteration(s)):"
        ]
        for moe, expr in self.moe_expressions.items():
            lines.append(f"  {moe} = {to_text(expr)}")
        return "\n".join(lines)


def concrete_most_liberal(
    spec: FunctionalSpec,
    input_valuation: Mapping[str, bool],
    max_iterations: Optional[int] = None,
) -> Dict[str, bool]:
    """The most liberal moe vector for one concrete input valuation.

    Starts with every flag true and repeatedly applies equation (4); the
    result is the unique assignment with the fewest stalls that still
    satisfies the functional specification under the given inputs.
    """
    moe_flags = spec.moe_flags()
    limit = max_iterations if max_iterations is not None else len(moe_flags) + 2
    assignment: Dict[str, bool] = dict(input_valuation)
    for moe in moe_flags:
        assignment[moe] = True
    for _ in range(limit):
        changed = False
        for clause in spec.clauses:
            new_value = not eval_expr(clause.condition, assignment)
            if assignment[clause.moe] and not new_value:
                assignment[clause.moe] = False
                changed = True
            elif not assignment[clause.moe] and new_value:
                # A monotone specification can only lower flags during the
                # descent from all-true; a raise means F is not monotone.
                raise DerivationError(
                    f"stall condition for {clause.moe} is not monotone in the negated "
                    "moe flags; the Section 3.1 preconditions are violated"
                )
        if not changed:
            return {moe: assignment[moe] for moe in moe_flags}
    raise DerivationError(
        f"fixed-point iteration did not converge within {limit} iterations"
    )


def symbolic_most_liberal(
    spec: FunctionalSpec,
    max_iterations: Optional[int] = None,
    simplify_result: bool = True,
) -> DerivationResult:
    """Closed-form most liberal moe assignment over the primary inputs.

    The iteration keeps, for every stage, an expression of the current
    candidate ``MOE_i`` in terms of primary inputs only; each step
    substitutes the candidates into the stall conditions and negates.
    Convergence is detected semantically with BDD equivalence so that
    syntactic noise from substitution cannot mask a fixed point.
    """
    moe_flags = spec.moe_flags()
    limit = max_iterations if max_iterations is not None else len(moe_flags) + 2
    # The fixed point is iterated in BDD space: every stall condition is
    # compiled once, and each step substitutes the candidate moe functions
    # with a (memoised) simultaneous composition instead of re-compiling the
    # ever-growing substituted expression trees.  The expression-level
    # candidates are kept in lock step purely as the human-readable output;
    # composition and substitution compute the same function, so the
    # expression and BDD sides converge at the same iteration.  The moe
    # flags are declared at the top of the variable order: the candidates
    # they are replaced by range over primary inputs only, so composition
    # then never lifts a variable above its substitution point.
    context = ExprBddContext(list(moe_flags) + list(spec.input_signals()))
    manager = context.manager
    condition_nodes: Dict[str, int] = {
        clause.moe: context.compile(clause.condition) for clause in spec.clauses
    }
    current: Dict[str, Expr] = {moe: TRUE for moe in moe_flags}
    current_nodes: Dict[str, int] = {moe: manager.true() for moe in moe_flags}

    iterations = 0
    for _ in range(limit):
        iterations += 1
        changed = False
        next_exprs: Dict[str, Expr] = {}
        next_nodes: Dict[str, int] = {}
        for clause in spec.clauses:
            substituted = substitute(clause.condition, current)
            candidate = simplify(Not(substituted)) if simplify_result else Not(substituted)
            node = manager.not_(
                manager.compose_many(condition_nodes[clause.moe], current_nodes)
            )
            next_exprs[clause.moe] = candidate
            next_nodes[clause.moe] = node
            if node != current_nodes[clause.moe]:
                changed = True
        current = next_exprs
        current_nodes = next_nodes
        if not changed:
            break
    else:
        raise DerivationError(
            f"symbolic fixed-point iteration did not converge within {limit} iterations"
        )

    # Confirm the fixed point really only mentions primary inputs.
    input_set = set(spec.input_signals())
    for moe, expr in current.items():
        leftover = expr.variables() - input_set
        if leftover:
            raise DerivationError(
                f"closed form for {moe} still refers to {sorted(leftover)}; "
                "the specification's moe dependency structure is malformed"
            )

    bdd_sizes = {
        moe: context.manager.dag_size(node) for moe, node in current_nodes.items()
    }
    return DerivationResult(
        spec=spec,
        moe_expressions=current,
        iterations=iterations,
        feed_forward=spec.is_feed_forward(),
        bdd_sizes=bdd_sizes,
    )


def derive_performance_spec(
    spec: FunctionalSpec, check_preconditions: bool = True
) -> PerformanceSpec:
    """Derive the maximum performance specification from a functional spec.

    This is the operation the paper performs manually in Section 2.2.2 and
    justifies in Section 3: because the functional specification satisfies
    properties (1) and (2), the optimal implementation is ``¬moe_i ↔ F_i``,
    so the performance half is obtained by flipping every implication.

    When ``check_preconditions`` is true the Section 3.1 properties are
    verified first (see :mod:`repro.spec.properties`) and a
    :class:`~repro.spec.functional.SpecificationError` is raised if they fail
    — deriving a "maximum performance" spec from a non-monotone functional
    spec would be unsound.
    """
    if check_preconditions:
        from .properties import check_all_properties

        report = check_all_properties(spec)
        if not report.all_hold():
            raise SpecificationError(
                "functional specification violates the Section 3.1 preconditions:\n"
                + report.describe()
            )
    return PerformanceSpec(spec)


def derive_combined_spec(
    spec: FunctionalSpec, check_preconditions: bool = True
) -> CombinedSpec:
    """Derive the combined (functional + performance) specification."""
    if check_preconditions:
        from .properties import check_all_properties

        report = check_all_properties(spec)
        if not report.all_hold():
            raise SpecificationError(
                "functional specification violates the Section 3.1 preconditions:\n"
                + report.describe()
            )
    return CombinedSpec(spec)


def most_liberal_is_maximal(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> bool:
    """Verify the Section 3.2 subsumption theorem for a specification.

    Checks, with BDDs, that every assignment satisfying the functional
    specification is pointwise below the derived ``MOE``::

        SPEC_func(moe, inputs)  →  (moe_i → MOE_i(inputs))     for every i

    This is the machine-checked version of the paper's inductive proof.
    """
    derivation = derivation or symbolic_most_liberal(spec)
    context = ExprBddContext()
    manager = context.manager
    functional_node = context.compile(spec.functional_formula())
    for moe in spec.moe_flags():
        # The claim is valid iff SPEC_func ∧ ¬(moe_i → MOE_i) is unsatisfiable;
        # the fused relational product decides that in one sweep without
        # building the conjunction.
        refutation = context.compile(Not(Var(moe).implies(derivation.moe_expressions[moe])))
        witness = manager.and_exists(
            functional_node, refutation, manager.variable_order()
        )
        if witness != manager.false():
            return False
    return True


def unnecessary_stall_condition(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> Dict[str, Expr]:
    """Per-stage condition under which an observed stall is unnecessary.

    For each stage this is ``MOE_i(inputs)`` itself: if the closed-form most
    liberal assignment says the stage could move, any implementation that
    stalls it has introduced a performance bug.  The stall classifier in
    :mod:`repro.analysis.stalls` evaluates these expressions on simulation
    traces.
    """
    derivation = derivation or symbolic_most_liberal(spec)
    return dict(derivation.moe_expressions)
