"""Functional specifications of interlocked pipeline control logic.

A functional specification, in the sense of Section 2.2.1 of the paper, is
a conjunction of per-stage implications::

    F_i(¬moe, inputs)  →  ¬moe_i

Each :class:`StallClause` holds one such implication: the stage it governs
(identified by its moe signal name) and the stall condition ``F_i``.  The
stall condition may refer to the moe flags of *other* stages only through
their negation (``¬moe_j``) and to arbitrary primary inputs — exactly the
shape Section 3.1 requires for the maximum-performance derivation to work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..expr.ast import Expr, Iff, Implies, Not, Var
from ..expr.builders import big_and
from ..expr.printer import to_text, to_unicode
from ..expr.transform import polarity_of_variables, simplify, substitute


class SpecificationError(ValueError):
    """Raised when a specification is malformed or violates the paper's shape."""


@dataclass(frozen=True)
class StallClause:
    """One per-stage stall implication ``condition → ¬moe``.

    Attributes:
        moe: the name of the governed stage's moving-or-empty flag.
        condition: the stall condition ``F_i``; an expression over negated
            moe flags of other stages and primary inputs.
        label: optional human-readable stage label used in reports.
    """

    moe: str
    condition: Expr
    label: str = ""

    def functional_formula(self) -> Expr:
        """The functional implication ``condition → ¬moe`` (Figure 2 shape)."""
        return Implies(self.condition, Not(Var(self.moe)))

    def performance_formula(self) -> Expr:
        """The performance implication ``¬moe → condition`` (Figure 3 shape)."""
        return Implies(Not(Var(self.moe)), self.condition)

    def combined_formula(self) -> Expr:
        """The combined equivalence ``condition ↔ ¬moe``."""
        return Iff(self.condition, Not(Var(self.moe)))

    def moe_variables_in_condition(self, all_moe: Sequence[str]) -> List[str]:
        """The moe flags (other stages') that the condition refers to."""
        used = self.condition.variables()
        return [name for name in all_moe if name in used]

    def describe(self) -> str:
        """Single-line rendering used in spec listings."""
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}{to_text(self.condition)} -> !{self.moe}"


@dataclass
class FunctionalSpec:
    """A complete functional specification of the interlock logic.

    This is the object the paper's method starts from.  It groups one
    :class:`StallClause` per pipeline stage (exactly one clause per moe
    flag, as in Figure 2), and records which signals are primary inputs of
    the control logic.

    Attributes:
        name: specification name (usually the architecture name).
        clauses: the per-stage stall clauses.
        inputs: names of primary input signals the conditions may use
            (rtm flags, bus requests/grants, scoreboard bits, WAIT, ...).
        metadata: free-form annotations (e.g. the architecture object).
    """

    name: str
    clauses: List[StallClause]
    inputs: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        moes = [clause.moe for clause in self.clauses]
        duplicates = {m for m in moes if moes.count(m) > 1}
        if duplicates:
            raise SpecificationError(
                f"multiple stall clauses for moe flags {sorted(duplicates)}; combine "
                "their conditions into one disjunction per stage"
            )
        input_set = set(self.inputs)
        moe_set = set(moes)
        overlap = input_set & moe_set
        if overlap:
            raise SpecificationError(
                f"signals {sorted(overlap)} are declared both as inputs and as moe flags"
            )
        for clause in self.clauses:
            unknown = clause.condition.variables() - input_set - moe_set
            if unknown:
                raise SpecificationError(
                    f"stall condition for {clause.moe} uses undeclared signals "
                    f"{sorted(unknown)}"
                )

    # -- basic accessors ---------------------------------------------------------

    def moe_flags(self) -> List[str]:
        """The moe flag names in clause order (deepest stages first by convention)."""
        return [clause.moe for clause in self.clauses]

    def clause_for(self, moe: str) -> StallClause:
        """The stall clause governing a given moe flag."""
        for clause in self.clauses:
            if clause.moe == moe:
                return clause
        raise KeyError(f"no stall clause for moe flag {moe!r}")

    def condition_for(self, moe: str) -> Expr:
        """The stall condition ``F_i`` of a given stage."""
        return self.clause_for(moe).condition

    def input_signals(self) -> List[str]:
        """The primary inputs (declared order)."""
        return list(self.inputs)

    def all_signals(self) -> List[str]:
        """Inputs followed by moe flags."""
        return list(self.inputs) + self.moe_flags()

    # -- formulas ------------------------------------------------------------------

    def functional_formula(self) -> Expr:
        """``SPEC_func``: the conjunction of all functional implications (Fig. 2)."""
        return big_and(clause.functional_formula() for clause in self.clauses)

    def performance_formula(self) -> Expr:
        """``SPEC_perf``: the conjunction of all performance implications (Fig. 3)."""
        return big_and(clause.performance_formula() for clause in self.clauses)

    def combined_formula(self) -> Expr:
        """The combined specification ``condition_i ↔ ¬moe_i`` for every stage."""
        return big_and(clause.combined_formula() for clause in self.clauses)

    # -- structural checks -----------------------------------------------------------

    def moe_dependencies(self) -> Dict[str, List[str]]:
        """For each stage, the moe flags its stall condition depends on.

        This is the backwards control-flow graph of the paper: an edge from
        stage *i* to stage *j* means stage *i* stalls when stage *j* stalls.
        """
        moes = self.moe_flags()
        return {
            clause.moe: clause.moe_variables_in_condition(moes) for clause in self.clauses
        }

    def is_feed_forward(self) -> bool:
        """True when the moe dependency graph is acyclic.

        The paper notes (end of Section 3.2) that the simple fixed point
        derivation always terminates, but the closed-form result is only
        guaranteed to be literal when control flows in one direction; the
        lock-step equivalence of issue stages already introduces a cycle and
        is handled by iterating to convergence.
        """
        graph = self.moe_dependencies()
        visited: Dict[str, int] = {}

        def has_cycle(node: str) -> bool:
            state = visited.get(node, 0)
            if state == 1:
                return True
            if state == 2:
                return False
            visited[node] = 1
            for successor in graph.get(node, []):
                if has_cycle(successor):
                    return True
            visited[node] = 2
            return False

        return not any(has_cycle(moe) for moe in graph)

    def monotonicity_report(self) -> Dict[str, Dict[str, Tuple[bool, bool]]]:
        """Per-clause polarity of every moe flag used in its condition.

        Section 3.1 requires each ``F_i`` to be monotone in the *negated*
        moe flags, i.e. the moe flags themselves must appear only under an
        odd number of negations (only negatively).  The report maps each
        clause's moe flag to ``{used_moe: (positive, negative)}``.
        """
        moes = set(self.moe_flags())
        report: Dict[str, Dict[str, Tuple[bool, bool]]] = {}
        for clause in self.clauses:
            polarities = polarity_of_variables(clause.condition)
            report[clause.moe] = {
                name: pol for name, pol in polarities.items() if name in moes
            }
        return report

    def is_monotone(self) -> bool:
        """Syntactic check of the Section 3.1 monotonicity requirement."""
        for per_clause in self.monotonicity_report().values():
            for positive, _negative in [per_clause[name] for name in per_clause]:
                if positive:
                    return False
        return True

    def violating_clauses(self) -> List[str]:
        """Moe flags whose conditions use some other moe flag positively."""
        out = []
        for moe, per_clause in self.monotonicity_report().items():
            if any(positive for positive, _ in per_clause.values()):
                out.append(moe)
        return out

    # -- transformation ----------------------------------------------------------------

    def substitute_inputs(self, mapping: Mapping[str, Expr]) -> "FunctionalSpec":
        """Return a copy with primary input signals replaced by expressions.

        Used, for instance, to refine the abstract bus grant into a concrete
        arbitration scheme (the paper notes the completion logic "can also
        be included in the functional specification").
        """
        illegal = set(mapping) & set(self.moe_flags())
        if illegal:
            raise SpecificationError(
                f"cannot substitute moe flags {sorted(illegal)}; only inputs may be refined"
            )
        new_clauses = [
            StallClause(
                moe=clause.moe,
                condition=simplify(substitute(clause.condition, mapping)),
                label=clause.label,
            )
            for clause in self.clauses
        ]
        new_inputs = [name for name in self.inputs if name not in mapping]
        extra: List[str] = []
        for replacement in mapping.values():
            for name in replacement.variables():
                if name not in new_inputs and name not in self.moe_flags():
                    extra.append(name)
        for name in extra:
            if name not in new_inputs:
                new_inputs.append(name)
        return FunctionalSpec(
            name=self.name,
            clauses=new_clauses,
            inputs=new_inputs,
            metadata=dict(self.metadata),
        )

    def restricted_to(self, moe_flags: Iterable[str]) -> "FunctionalSpec":
        """The sub-specification governing only the given stages.

        Mirrors the paper's remark that the specification "can be split into
        two separate pipeline specifications".
        """
        wanted = set(moe_flags)
        clauses = [clause for clause in self.clauses if clause.moe in wanted]
        missing = wanted - {clause.moe for clause in clauses}
        if missing:
            raise KeyError(f"specification has no clauses for {sorted(missing)}")
        # Moe flags of stages outside the restriction become free inputs of the
        # sub-specification, exactly as in the paper's per-pipe split where the
        # other pipe's flags appear as arguments of F.
        inputs = list(self.inputs)
        for clause in clauses:
            for name in clause.condition.variables():
                if name not in wanted and name not in inputs:
                    inputs.append(name)
        return FunctionalSpec(
            name=f"{self.name}[{','.join(sorted(wanted))}]",
            clauses=clauses,
            inputs=inputs,
            metadata=dict(self.metadata),
        )

    # -- rendering ---------------------------------------------------------------------

    def describe(self, unicode_symbols: bool = False) -> str:
        """Figure-2 style listing of the specification."""
        render = to_unicode if unicode_symbols else to_text
        lines = [f"SPEC_func for {self.name}:"]
        for clause in self.clauses:
            arrow = "→" if unicode_symbols else "->"
            neg = "¬" if unicode_symbols else "!"
            lines.append(f"  {render(clause.condition)} {arrow} {neg}{clause.moe}")
        return "\n".join(lines)
