"""Automatic construction of a functional specification from an architecture.

Section 2.2.1 of the paper writes the stall conditions of the example
architecture by hand, following a small number of structural rules:

* a **completion stage** stalls when it requests the completion bus but is
  not granted it (``p.req ∧ ¬p.gnt``);
* an **intermediate stage** stalls when its content requires to move but the
  next stage is neither moving nor empty (``p.s.rtm ∧ ¬p.(s+1).moe``);
* an **issue stage** additionally stalls on an instruction-enforced WAIT,
  when a lock-step partner stalls, and when a source or destination
  register is outstanding on the scoreboard and not bypassed by a
  completion bus this cycle.

:class:`SpecBuilder` applies those rules to any
:class:`~repro.pipeline.structure.Architecture`, producing the same
Figure 2 specification for the paper's example and scaling to the larger
FirePath-like architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..expr.ast import Expr, FALSE, Not, Var
from ..expr.builders import big_and, big_or
from ..pipeline import signals as sig
from ..pipeline.structure import Architecture, PipeSpec, StageRef
from .functional import FunctionalSpec, StallClause


@dataclass
class BuilderOptions:
    """Knobs for specification construction.

    Attributes:
        include_scoreboard: generate register-outstanding stall terms at
            issue stages (requires the architecture to have a scoreboard).
        include_bypass: model completion-bus bypassing inside the
            scoreboard term (the paper's ``c.regaddr ≠ a`` conjunct); with
            bypassing disabled the scoreboard term stalls on any
            outstanding register, which is the conservative variant used by
            the completion-redesign experiment.
        include_lockstep: generate the lock-step coupling implications.
        include_extra_stalls: generate WAIT / interrupt stall terms.
    """

    include_scoreboard: bool = True
    include_bypass: bool = True
    include_lockstep: bool = True
    include_extra_stalls: bool = True


class SpecBuilder:
    """Builds :class:`~repro.spec.functional.FunctionalSpec` objects from architectures."""

    def __init__(self, architecture: Architecture, options: Optional[BuilderOptions] = None):
        self.architecture = architecture
        self.options = options or BuilderOptions()

    # -- public API -----------------------------------------------------------------

    def build(self) -> FunctionalSpec:
        """Construct the functional specification for the architecture."""
        arch = self.architecture
        clauses: List[StallClause] = []
        for pipe in arch.pipes:
            for stage in reversed(pipe.stages()):
                condition = self._stall_condition(pipe, stage)
                clauses.append(
                    StallClause(
                        moe=stage.moe,
                        condition=condition,
                        label=self._stage_label(pipe, stage),
                    )
                )
        return FunctionalSpec(
            name=arch.name,
            clauses=clauses,
            inputs=arch.input_signals(),
            metadata={"architecture": arch, "builder_options": self.options},
        )

    def stall_condition_for(self, pipe_name: str, stage_index: int) -> Expr:
        """The stall condition of a single stage (useful in tests and docs)."""
        pipe = self.architecture.pipe(pipe_name)
        return self._stall_condition(pipe, pipe.stage(stage_index))

    # -- per-stage rules ---------------------------------------------------------------

    def _stall_condition(self, pipe: PipeSpec, stage: StageRef) -> Expr:
        terms: List[Expr] = []
        is_completion = stage.index == pipe.num_stages and pipe.completion_bus is not None
        is_issue = stage.index == 1

        if is_completion:
            terms.append(self._completion_term(pipe))
        if stage.index < pipe.num_stages:
            terms.append(self._blocked_successor_term(pipe, stage))
        if is_issue:
            terms.extend(self._issue_terms(pipe))

        if not terms:
            # A final stage with no completion bus never needs to stall.
            return FALSE
        return big_or(terms)

    def _completion_term(self, pipe: PipeSpec) -> Expr:
        """``p.req ∧ ¬p.gnt`` — lost the arbitration for the completion bus."""
        return Var(sig.req_name(pipe.name)) & ~Var(sig.gnt_name(pipe.name))

    def _blocked_successor_term(self, pipe: PipeSpec, stage: StageRef) -> Expr:
        """``p.s.rtm ∧ ¬p.(s+1).moe`` — wants to move but the next stage blocks."""
        next_stage = pipe.stage(stage.index + 1)
        return Var(stage.rtm) & ~Var(next_stage.moe)

    def _issue_terms(self, pipe: PipeSpec) -> List[Expr]:
        terms: List[Expr] = []
        if self.options.include_extra_stalls:
            for signal in self.architecture.wait_signals_for(pipe.name):
                terms.append(Var(signal))
        if self.options.include_lockstep:
            for partner in self.architecture.lockstep_partners(pipe.name):
                partner_issue = self.architecture.pipe(partner).issue_stage
                terms.append(~Var(partner_issue.moe))
        if self.options.include_scoreboard and self.architecture.scoreboard is not None:
            terms.append(self._scoreboard_term(pipe))
        return terms

    def _scoreboard_term(self, pipe: PipeSpec) -> Expr:
        """The register-outstanding hazard at a pipe's issue stage.

        Expands the paper's quantified formula

            ∃ r : SDREG . ∃ a : REGADDRESS .
                p.1.r.regaddr = a ∧ scb[a] ∧ c.regaddr ≠ a

        into a finite disjunction over both register selectors and every
        register address, with one ``bus.regaddr ≠ a`` conjunct per bypass
        bus when bypassing is enabled.
        """
        scoreboard = self.architecture.scoreboard
        bypass_buses = (
            list(scoreboard.bypass_buses) if self.options.include_bypass else []
        )
        disjuncts: List[Expr] = []
        for which in ("src", "dst"):
            for address in range(scoreboard.num_registers):
                conjuncts: List[Expr] = [
                    Var(sig.stage_regaddr_indicator(pipe.name, 1, which, address)),
                    Var(sig.scoreboard_name(address, scoreboard.prefix)),
                ]
                for bus_name in bypass_buses:
                    conjuncts.append(Not(Var(sig.bus_target_indicator(bus_name, address))))
                disjuncts.append(big_and(conjuncts))
        return big_or(disjuncts)

    def _stage_label(self, pipe: PipeSpec, stage: StageRef) -> str:
        if stage.index == 1:
            return f"{pipe.name} issue"
        if stage.index == pipe.num_stages and pipe.completion_bus is not None:
            return f"{pipe.name} completion"
        if stage.index in pipe.shunt_stages:
            return f"{pipe.name} shunt {stage.index}"
        return f"{pipe.name} execute {stage.index}"


def build_functional_spec(
    architecture: Architecture, options: Optional[BuilderOptions] = None
) -> FunctionalSpec:
    """One-call convenience wrapper around :class:`SpecBuilder`."""
    return SpecBuilder(architecture, options).build()


def conservative_variant(architecture: Architecture) -> FunctionalSpec:
    """A deliberately pessimistic specification without completion-bus bypassing.

    This mirrors the pre-redesign FirePath completion behaviour the paper
    reports improving: the issue stages stall on any outstanding register
    even when the register is being written back in the same cycle.  Used
    as the baseline in the completion-redesign benchmark.
    """
    options = BuilderOptions(include_bypass=False)
    spec = SpecBuilder(architecture, options).build()
    return FunctionalSpec(
        name=f"{architecture.name}-conservative",
        clauses=spec.clauses,
        inputs=spec.inputs,
        metadata=spec.metadata,
    )
