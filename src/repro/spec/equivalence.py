"""Equivalence and refinement between specifications and implementations.

Section 4 of the paper reports that "in several cases, functional
equivalence of different implementations needed to be established before a
more abstract description was accepted across the design teams" — the
canonical example being shunt (decoupling) stages, where the same abstract
flow-control behaviour can be implemented in several ways.

This module provides those comparisons at both levels:

* **clause level** — are two functional specifications the same
  specification, i.e. is every per-stage stall condition logically
  equivalent (optionally modulo environment assumptions)?
* **derived level** — do two functional specifications induce the same
  maximum-performance interlock, i.e. are the closed forms of their most
  liberal moe assignments equivalent?  Two textually different
  specifications (one per design team) are interchangeable exactly when
  this holds.
* **refinement** — a one-sided comparison: an implementation specification
  *functionally refines* a reference when it stalls at least whenever the
  reference requires a stall (it is safe), and *performance-refines* it
  when it stalls at most when the reference allows (it is no slower).
  Equivalence is refinement in both directions.
* **implementation level** — are two closed-form interlocks the same
  boolean function per moe flag?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.expr_to_bdd import ExprBddContext
from ..bdd.ordering import register_interleaved_order
from ..expr.ast import Expr, Iff, Implies
from ..expr.printer import to_text
from ..symbolic import SymbolicContext
from .derivation import symbolic_most_liberal
from .functional import FunctionalSpec, SpecificationError

__all__ = [
    "FlagComparison",
    "EquivalenceReport",
    "RefinementReport",
    "check_clause_equivalence",
    "check_derived_equivalence",
    "check_refinement",
    "interlocks_equivalent",
]


@dataclass
class FlagComparison:
    """Comparison outcome for one moe flag."""

    moe: str
    equivalent: bool
    forward_holds: bool
    backward_holds: bool
    counterexample: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        """Single-line rendering."""
        if self.equivalent:
            return f"{self.moe}: equivalent"
        direction = []
        if not self.forward_holds:
            direction.append("A does not cover B")
        if not self.backward_holds:
            direction.append("B does not cover A")
        return f"{self.moe}: DIFFER ({'; '.join(direction)})"


@dataclass
class EquivalenceReport:
    """Per-flag equivalence results between two specifications."""

    name_a: str
    name_b: str
    level: str
    flags: List[FlagComparison] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True when every compared flag is equivalent."""
        return all(flag.equivalent for flag in self.flags)

    def differing_flags(self) -> List[str]:
        """Moe flags whose conditions/closed forms differ."""
        return [flag.moe for flag in self.flags if not flag.equivalent]

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"{self.level} comparison of {self.name_a!r} and {self.name_b!r}:"
        ]
        lines.extend(f"  {flag.describe()}" for flag in self.flags)
        lines.append(
            "  => equivalent" if self.equivalent
            else f"  => differ on {', '.join(self.differing_flags())}"
        )
        return "\n".join(lines)


@dataclass
class RefinementReport:
    """Per-flag refinement results of an implementation spec against a reference."""

    implementation: str
    reference: str
    flags: List[FlagComparison] = field(default_factory=list)

    @property
    def functionally_refines(self) -> bool:
        """The implementation stalls whenever the reference requires a stall."""
        return all(flag.forward_holds for flag in self.flags)

    @property
    def performance_refines(self) -> bool:
        """The implementation stalls only when the reference allows a stall."""
        return all(flag.backward_holds for flag in self.flags)

    @property
    def equivalent(self) -> bool:
        """Refinement in both directions."""
        return self.functionally_refines and self.performance_refines

    def extra_stall_flags(self) -> List[str]:
        """Flags where the implementation stalls more often than the reference."""
        return [flag.moe for flag in self.flags if not flag.backward_holds]

    def missing_stall_flags(self) -> List[str]:
        """Flags where the implementation can miss a reference-required stall."""
        return [flag.moe for flag in self.flags if not flag.forward_holds]

    def describe(self) -> str:
        """Multi-line report."""
        lines = [f"Refinement of {self.implementation!r} against {self.reference!r}:"]
        lines.append(
            f"  functionally safe : {'yes' if self.functionally_refines else 'NO'}"
            + (f" (missing stalls at {', '.join(self.missing_stall_flags())})"
               if not self.functionally_refines else "")
        )
        lines.append(
            f"  performance equal : {'yes' if self.performance_refines else 'NO'}"
            + (f" (extra stalls at {', '.join(self.extra_stall_flags())})"
               if not self.performance_refines else "")
        )
        return "\n".join(lines)


def _shared_flags(spec_a: FunctionalSpec, spec_b: FunctionalSpec) -> List[str]:
    flags_a = spec_a.moe_flags()
    flags_b = set(spec_b.moe_flags())
    missing = [flag for flag in flags_a if flag not in flags_b] + [
        flag for flag in spec_b.moe_flags() if flag not in set(flags_a)
    ]
    if missing:
        raise SpecificationError(
            f"specifications govern different stages; unmatched moe flags: {sorted(set(missing))}"
        )
    return flags_a


def _compare(
    context: ExprBddContext,
    moe: str,
    expression_a: Expr,
    expression_b: Expr,
    assumptions: Optional[Expr],
) -> FlagComparison:
    forward: Expr = Implies(expression_a, expression_b)
    backward: Expr = Implies(expression_b, expression_a)
    both: Expr = Iff(expression_a, expression_b)
    if assumptions is not None:
        forward = Implies(assumptions, forward)
        backward = Implies(assumptions, backward)
        both = Implies(assumptions, both)
    forward_holds = context.is_valid(forward)
    backward_holds = context.is_valid(backward)
    counterexample = None if forward_holds and backward_holds else context.counterexample(both)
    return FlagComparison(
        moe=moe,
        equivalent=forward_holds and backward_holds,
        forward_holds=forward_holds,
        backward_holds=backward_holds,
        counterexample=counterexample,
    )


def check_clause_equivalence(
    spec_a: FunctionalSpec,
    spec_b: FunctionalSpec,
    assumptions: Optional[Expr] = None,
) -> EquivalenceReport:
    """Compare the per-stage stall conditions of two specifications."""
    context = ExprBddContext()
    report = EquivalenceReport(name_a=spec_a.name, name_b=spec_b.name, level="clause-level")
    for moe in _shared_flags(spec_a, spec_b):
        report.flags.append(
            _compare(
                context,
                moe,
                spec_a.condition_for(moe),
                spec_b.condition_for(moe),
                assumptions,
            )
        )
    return report


def check_derived_equivalence(
    spec_a: FunctionalSpec,
    spec_b: FunctionalSpec,
    assumptions: Optional[Expr] = None,
) -> EquivalenceReport:
    """Compare the maximum-performance interlocks two specifications induce.

    Both specifications are derived into one shared
    :class:`~repro.symbolic.SymbolicContext`, so per flag the equivalence
    decision is a pointer comparison between the two closed-form BDD nodes
    — no expression is materialized, substituted or re-compiled.  A
    differing pair yields a witness from a lock-step walk of the two DAGs.
    """
    flags = _shared_flags(spec_a, spec_b)
    moes: List[str] = list(flags)
    for moe in spec_b.moe_flags():
        if moe not in moes:
            moes.append(moe)
    inputs = list(spec_a.input_signals())
    seen = set(inputs)
    for name in spec_b.input_signals():
        if name not in seen:
            seen.add(name)
            inputs.append(name)
    context = SymbolicContext(
        moes + register_interleaved_order(inputs), balanced_reduce=True
    )
    manager = context.manager
    derived_a = symbolic_most_liberal(spec_a, context=context).moe_functions
    derived_b = symbolic_most_liberal(spec_b, context=context).moe_functions
    assumption_node = (
        context.lift(assumptions).node if assumptions is not None else manager.true()
    )
    report = EquivalenceReport(name_a=spec_a.name, name_b=spec_b.name, level="derived-interlock")
    for moe in flags:
        node_a = derived_a[moe].node
        node_b = derived_b[moe].node
        forward = manager.implies(
            assumption_node, manager.implies(node_a, node_b)
        ) == manager.true()
        backward = manager.implies(
            assumption_node, manager.implies(node_b, node_a)
        ) == manager.true()
        counterexample = None
        if not (forward and backward):
            counterexample = manager.find_difference(
                manager.and_(assumption_node, node_a),
                manager.and_(assumption_node, node_b),
            )
        report.flags.append(
            FlagComparison(
                moe=moe,
                equivalent=forward and backward,
                forward_holds=forward,
                backward_holds=backward,
                counterexample=counterexample,
            )
        )
    return report


def check_refinement(
    implementation: FunctionalSpec,
    reference: FunctionalSpec,
    assumptions: Optional[Expr] = None,
) -> RefinementReport:
    """Check whether ``implementation`` refines ``reference``.

    Per stage, ``forward`` is "the reference's stall condition implies the
    implementation's" (functional safety: the implementation never misses a
    stall the reference requires) and ``backward`` is the converse
    (performance: the implementation never adds a stall the reference does
    not justify).
    """
    context = ExprBddContext()
    report = RefinementReport(implementation=implementation.name, reference=reference.name)
    for moe in _shared_flags(implementation, reference):
        comparison = _compare(
            context,
            moe,
            reference.condition_for(moe),
            implementation.condition_for(moe),
            assumptions,
        )
        report.flags.append(comparison)
    return report


def interlocks_equivalent(
    expressions_a: Dict[str, Expr],
    expressions_b: Dict[str, Expr],
    assumptions: Optional[Expr] = None,
) -> EquivalenceReport:
    """Compare two closed-form interlock implementations flag by flag.

    Accepts the ``expressions()`` maps of two
    :class:`~repro.pipeline.interlock.ClosedFormInterlock` objects (or any
    mapping from moe flag to expression).
    """
    if set(expressions_a) != set(expressions_b):
        raise SpecificationError(
            "implementations drive different moe flags: "
            f"{sorted(set(expressions_a) ^ set(expressions_b))}"
        )
    context = ExprBddContext()
    report = EquivalenceReport(name_a="implementation A", name_b="implementation B",
                               level="implementation")
    for moe in expressions_a:
        report.flags.append(
            _compare(context, moe, expressions_a[moe], expressions_b[moe], assumptions)
        )
    return report
