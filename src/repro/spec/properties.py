"""Machine-checked versions of the paper's Section 3 properties.

The derivation of a maximum performance specification is only sound when
the functional specification satisfies:

* **Property (1)** — the all-false assignment to the moe flags satisfies
  the functional specification (stalling everything is functionally safe).
* **Property (2)** — satisfying moe assignments are closed under bitwise
  disjunction.  The paper derives this from the monotonicity of the stall
  conditions ``F_i`` in the negated moe flags; we check the syntactic
  monotonicity requirement, verify monotonicity *semantically* per clause,
  and (for small specifications) also verify the closure property directly
  with BDDs over two renamed copies of the moe vector.
* **Property (3)** — the derived most liberal assignment ``MOE`` satisfies
  the specification.
* **Maximality** — every satisfying assignment is pointwise below ``MOE``
  (the Section 3.2 theorem).

All checks are exhaustive over the interlock's boolean signal space via
BDDs; no simulation or sampling is involved.  The expensive whole-formula
checks are decomposed per clause / per control cone so they scale to the
FirePath-like architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..bdd.expr_to_bdd import ExprBddContext
from ..expr.ast import Expr, FALSE, Or, TRUE, Var
from ..expr.builders import big_and
from ..expr.transform import simplify, substitute
from .derivation import DerivationResult, symbolic_most_liberal
from .functional import FunctionalSpec

# Above this many moe flags the direct two-copy disjunction-closure check is
# skipped in favour of the per-clause monotonicity argument (the paper's own
# route); the direct check is cubic in the BDD sizes and only tractable for
# example-sized specifications.
DIRECT_CLOSURE_LIMIT = 10


@dataclass
class PropertyCheck:
    """Result of one property check."""

    name: str
    holds: bool
    detail: str = ""
    counterexample: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        """One-line summary of the check."""
        status = "holds" if self.holds else "FAILS"
        extra = f" — {self.detail}" if self.detail else ""
        return f"{self.name}: {status}{extra}"


@dataclass
class PropertyReport:
    """All Section 3 property checks for one functional specification."""

    spec_name: str
    checks: List[PropertyCheck] = field(default_factory=list)

    def all_hold(self) -> bool:
        """True when every property holds."""
        return all(check.holds for check in self.checks)

    def check(self, name: str) -> PropertyCheck:
        """Look up one check by name."""
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(f"no property check named {name!r}")

    def describe(self) -> str:
        """Multi-line report."""
        lines = [f"Section 3.1/3.2 properties for {self.spec_name}:"]
        lines.extend(f"  {check.describe()}" for check in self.checks)
        return "\n".join(lines)


def check_all_false_satisfies(spec: FunctionalSpec) -> PropertyCheck:
    """Property (1): assigning False to every moe flag satisfies SPEC_func."""
    all_false = {moe: FALSE for moe in spec.moe_flags()}
    context = ExprBddContext()
    for clause in spec.clauses:
        residual = simplify(substitute(clause.functional_formula(), all_false))
        if not context.is_valid(residual):
            return PropertyCheck(
                name="property-1-all-false-satisfies",
                holds=False,
                detail=(
                    f"the all-false moe vector violates the clause for {clause.moe}"
                ),
                counterexample=context.counterexample(residual),
            )
    return PropertyCheck(
        name="property-1-all-false-satisfies",
        holds=True,
        detail="stalling every stage is functionally safe",
    )


def check_monotonicity(spec: FunctionalSpec) -> PropertyCheck:
    """Syntactic Section 3.1 requirement: conditions use moe flags only negated."""
    offenders = spec.violating_clauses()
    if not offenders:
        return PropertyCheck(
            name="monotonicity-of-stall-conditions",
            holds=True,
            detail="every F_i is built from negated moe flags with AND/OR only",
        )
    return PropertyCheck(
        name="monotonicity-of-stall-conditions",
        holds=False,
        detail=f"stall conditions of {sorted(offenders)} use some moe flag positively",
    )


def check_semantic_monotonicity(spec: FunctionalSpec) -> PropertyCheck:
    """Per-clause semantic monotonicity of F_i in the negated moe flags.

    For every clause and every moe flag ``v`` it uses, checks validity of
    ``F_i[v := True] → F_i[v := False]`` — clearing another stage's moe flag
    (i.e. stalling it) may only add stall reasons, never remove them.  This
    is the semantic content of the Section 3.1 requirement and, by the
    paper's Section 3.1 proof, entails the disjunction-closure property.
    """
    moe_set = set(spec.moe_flags())
    context = ExprBddContext()
    for clause in spec.clauses:
        used_moes = [name for name in clause.condition.variables() if name in moe_set]
        for name in used_moes:
            with_move = substitute(clause.condition, {name: TRUE})
            with_stall = substitute(clause.condition, {name: FALSE})
            claim = with_move.implies(with_stall)
            if not context.is_valid(claim):
                return PropertyCheck(
                    name="semantic-monotonicity",
                    holds=False,
                    detail=(
                        f"stall condition of {clause.moe} is not monotone in ¬{name}"
                    ),
                    counterexample=context.counterexample(claim),
                )
    return PropertyCheck(
        name="semantic-monotonicity",
        holds=True,
        detail="every F_i is semantically monotone in every negated moe flag it uses",
    )


def check_disjunction_closure(spec: FunctionalSpec) -> PropertyCheck:
    """Property (2): satisfying assignments are closed under bitwise disjunction.

    Verified directly: with two renamed copies ``m1``/``m2`` of the moe
    vector, checks validity of::

        SPEC_func[m1] ∧ SPEC_func[m2]  →  SPEC_func[m1 ∨ m2]

    This is the strongest (but most expensive) form of the check; for large
    specifications :func:`check_all_properties` falls back to
    :func:`check_semantic_monotonicity`, which entails it.
    """
    moe_flags = spec.moe_flags()
    copy1 = {moe: Var(f"__copy1::{moe}") for moe in moe_flags}
    copy2 = {moe: Var(f"__copy2::{moe}") for moe in moe_flags}
    joined = {moe: Or(copy1[moe], copy2[moe]) for moe in moe_flags}

    functional = spec.functional_formula()
    spec1 = substitute(functional, copy1)
    spec2 = substitute(functional, copy2)
    spec_joined = substitute(functional, joined)
    claim = (spec1 & spec2).implies(spec_joined)

    context = ExprBddContext()
    if context.is_valid(claim):
        return PropertyCheck(
            name="property-2-disjunction-closure",
            holds=True,
            detail="bitwise OR of two satisfying moe vectors satisfies SPEC_func",
        )
    counterexample = context.counterexample(claim)
    return PropertyCheck(
        name="property-2-disjunction-closure",
        holds=False,
        detail="found two satisfying moe vectors whose disjunction violates SPEC_func",
        counterexample=counterexample,
    )


def check_most_liberal_satisfies(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> PropertyCheck:
    """Property (3): the derived most liberal assignment satisfies SPEC_func.

    With a SymbolicFunction-backed derivation the claim is decided on BDD
    nodes in the derivation's own context: the clause condition is composed
    with the closed forms and checked against ``¬MOE_i`` directly — no
    expression is materialized or substituted.
    """
    derivation = derivation or symbolic_most_liberal(spec)
    if derivation.moe_functions is not None:
        context = derivation.context
        manager = context.manager
        moe_nodes = {
            moe: function.node for moe, function in derivation.moe_functions.items()
        }
        for clause in spec.clauses:
            condition = manager.compose_many(
                context.lift(clause.condition).node, moe_nodes
            )
            # condition∘MOE → ¬MOE_i is valid iff condition∘MOE ∧ MOE_i = ⊥.
            violation = manager.and_(condition, moe_nodes[clause.moe])
            if violation != manager.false():
                return PropertyCheck(
                    name="property-3-most-liberal-satisfies",
                    holds=False,
                    detail=f"the fixed point violates the clause for {clause.moe}",
                    counterexample=manager.pick_one(violation),
                )
        return PropertyCheck(
            name="property-3-most-liberal-satisfies",
            holds=True,
            detail=f"fixed point reached after {derivation.iterations} iteration(s)",
        )
    for clause in spec.clauses:
        residual = substitute(clause.functional_formula(), derivation.moe_expressions)
        context = ExprBddContext()
        if not context.is_valid(residual):
            return PropertyCheck(
                name="property-3-most-liberal-satisfies",
                holds=False,
                detail=f"the fixed point violates the clause for {clause.moe}",
                counterexample=context.counterexample(residual),
            )
    return PropertyCheck(
        name="property-3-most-liberal-satisfies",
        holds=True,
        detail=f"fixed point reached after {derivation.iterations} iteration(s)",
    )


def _dependency_cone(spec: FunctionalSpec, moe: str) -> Set[str]:
    """The moe flags the given flag transitively depends on (including itself)."""
    graph = spec.moe_dependencies()
    cone: Set[str] = set()
    frontier = [moe]
    while frontier:
        current = frontier.pop()
        if current in cone:
            continue
        cone.add(current)
        frontier.extend(graph.get(current, []))
    return cone


def check_maximality(
    spec: FunctionalSpec, derivation: Optional[DerivationResult] = None
) -> PropertyCheck:
    """Section 3.2 theorem: every satisfying assignment is subsumed by MOE.

    For every flag the check uses only the clauses in that flag's control
    cone as the antecedent — the rest of the specification cannot constrain
    the flag, and restricting the antecedent keeps the BDDs small on deep
    multi-pipe architectures.  (Proving the cone-restricted implication is
    sufficient: the full specification implies its own cone.)
    """
    derivation = derivation or symbolic_most_liberal(spec)
    if derivation.moe_functions is not None:
        context = derivation.context
        manager = context.manager
        for moe in spec.moe_flags():
            cone = _dependency_cone(spec, moe)
            antecedent = context.lift(
                big_and(
                    clause.functional_formula()
                    for clause in spec.clauses
                    if clause.moe in cone
                )
            ).node
            # Refuted by a witness of antecedent ∧ moe_i ∧ ¬MOE_i; the fused
            # relational product decides emptiness without the conjunction.
            refutation = manager.and_(
                manager.var(moe),
                manager.not_(derivation.moe_functions[moe].node),
            )
            if (
                manager.and_exists(antecedent, refutation, manager.variable_order())
                != manager.false()
            ):
                return PropertyCheck(
                    name="maximality-of-most-liberal",
                    holds=False,
                    detail=(
                        f"found a satisfying assignment with {moe} set although MOE clears it"
                    ),
                    counterexample=manager.pick_one(
                        manager.and_(antecedent, refutation)
                    ),
                )
        return PropertyCheck(
            name="maximality-of-most-liberal",
            holds=True,
            detail="every satisfying moe vector is pointwise below the derived MOE",
        )
    for moe in spec.moe_flags():
        cone = _dependency_cone(spec, moe)
        antecedent = big_and(
            clause.functional_formula() for clause in spec.clauses if clause.moe in cone
        )
        claim = antecedent.implies(Var(moe).implies(derivation.moe_expressions[moe]))
        context = ExprBddContext()
        if not context.is_valid(claim):
            return PropertyCheck(
                name="maximality-of-most-liberal",
                holds=False,
                detail=(
                    f"found a satisfying assignment with {moe} set although MOE clears it"
                ),
                counterexample=context.counterexample(claim),
            )
    return PropertyCheck(
        name="maximality-of-most-liberal",
        holds=True,
        detail="every satisfying moe vector is pointwise below the derived MOE",
    )


def check_all_properties(
    spec: FunctionalSpec,
    derivation: Optional[DerivationResult] = None,
    direct_closure: Optional[bool] = None,
) -> PropertyReport:
    """Run every Section 3 check and collect a report.

    Args:
        spec: the functional specification to examine.
        derivation: an existing fixed-point derivation to reuse.
        direct_closure: force (True) or suppress (False) the direct two-copy
            disjunction-closure check; by default it runs only for
            specifications with at most ``DIRECT_CLOSURE_LIMIT`` moe flags
            and the per-clause monotonicity argument is used otherwise.
    """
    report = PropertyReport(spec_name=spec.name)
    report.checks.append(check_all_false_satisfies(spec))
    report.checks.append(check_monotonicity(spec))
    report.checks.append(check_semantic_monotonicity(spec))
    if direct_closure is None:
        direct_closure = len(spec.moe_flags()) <= DIRECT_CLOSURE_LIMIT
    if direct_closure:
        report.checks.append(check_disjunction_closure(spec))
    if derivation is None:
        try:
            derivation = symbolic_most_liberal(spec)
        except Exception as error:  # noqa: BLE001 - report, don't crash the check
            report.checks.append(
                PropertyCheck(
                    name="property-3-most-liberal-satisfies",
                    holds=False,
                    detail=f"derivation failed: {error}",
                )
            )
            report.checks.append(
                PropertyCheck(
                    name="maximality-of-most-liberal",
                    holds=False,
                    detail="derivation failed",
                )
            )
            return report
    report.checks.append(check_most_liberal_satisfies(spec, derivation))
    report.checks.append(check_maximality(spec, derivation))
    return report
