"""The paper's core contribution: specifications of interlocked pipeline control.

Workflow (mirroring the paper):

1. Describe the architecture (:mod:`repro.pipeline.structure`) or write the
   per-stage stall clauses directly.
2. Build the functional specification (:class:`FunctionalSpec`), either by
   hand or with :class:`SpecBuilder`.
3. Check the Section 3.1 properties (:func:`check_all_properties`).
4. Derive the maximum performance specification
   (:func:`derive_performance_spec`) and/or the closed-form most liberal
   moe assignment (:func:`symbolic_most_liberal`).
5. Hand the result to the assertion generator, the property checker or the
   RTL synthesiser.
"""

from .builder import (
    BuilderOptions,
    SpecBuilder,
    build_functional_spec,
    conservative_variant,
)
from .derivation import (
    DerivationError,
    DerivationResult,
    concrete_most_liberal,
    derive_combined_spec,
    derive_performance_spec,
    most_liberal_is_maximal,
    symbolic_most_liberal,
    unnecessary_stall_condition,
)
from .equivalence import (
    EquivalenceReport,
    FlagComparison,
    RefinementReport,
    check_clause_equivalence,
    check_derived_equivalence,
    check_refinement,
    interlocks_equivalent,
)
from .functional import FunctionalSpec, SpecificationError, StallClause
from .performance import (
    CombinedClause,
    CombinedSpec,
    PerformanceClause,
    PerformanceSpec,
    combined_spec_of,
    performance_spec_of,
)
from .properties import (
    PropertyCheck,
    PropertyReport,
    check_all_false_satisfies,
    check_all_properties,
    check_disjunction_closure,
    check_maximality,
    check_monotonicity,
    check_most_liberal_satisfies,
)
from .textio import (
    SpecFormatError,
    dumps_spec,
    load_spec_file,
    loads_spec,
    save_spec_file,
)

__all__ = [
    "BuilderOptions",
    "SpecBuilder",
    "build_functional_spec",
    "conservative_variant",
    "DerivationError",
    "DerivationResult",
    "concrete_most_liberal",
    "derive_combined_spec",
    "derive_performance_spec",
    "most_liberal_is_maximal",
    "symbolic_most_liberal",
    "unnecessary_stall_condition",
    "EquivalenceReport",
    "FlagComparison",
    "RefinementReport",
    "check_clause_equivalence",
    "check_derived_equivalence",
    "check_refinement",
    "interlocks_equivalent",
    "FunctionalSpec",
    "SpecificationError",
    "StallClause",
    "CombinedClause",
    "CombinedSpec",
    "PerformanceClause",
    "PerformanceSpec",
    "combined_spec_of",
    "performance_spec_of",
    "PropertyCheck",
    "PropertyReport",
    "check_all_false_satisfies",
    "check_all_properties",
    "check_disjunction_closure",
    "check_maximality",
    "check_monotonicity",
    "check_most_liberal_satisfies",
    "SpecFormatError",
    "dumps_spec",
    "load_spec_file",
    "loads_spec",
    "save_spec_file",
]
