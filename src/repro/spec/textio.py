"""A plain-text interchange format for functional specifications.

The paper's Section 5 describes the tool the authors were building: "given
a functional specification … generates the corresponding performance
specification and also Verilog/VHDL assertions".  That tool needs a way for
designers to *write down* the functional specification; this module defines
a small line-oriented format for it and implements the loader and the
serialiser (the command-line front end in :mod:`repro.cli` builds on it).

Format
------

::

    # Comments start with '#'; blank lines are ignored.
    spec dac2002-example

    inputs:
        long.1.rtm long.2.rtm long.3.rtm
        op_is_WAIT scb[0] scb[1]

    stage long.4.moe "long completion":
        stall when long.req & !long.gnt

    stage long.1.moe:
        stall when long.1.rtm & !long.2.moe
        stall when op_is_WAIT
        stall when !short.1.moe

* one ``spec <name>`` line (first non-comment line);
* one ``inputs:`` block listing every primary input signal, whitespace
  separated, over as many indented lines as needed;
* one ``stage <moe-flag> ["label"]:`` block per pipeline stage, each
  containing one or more ``stall when <condition>`` lines whose conditions
  are parsed with :func:`repro.expr.parser.parse_expr` and disjoined.

The serialiser writes exactly this shape, one disjunct per ``stall when``
line, so specifications round-trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..expr.ast import Expr, FALSE, Or
from ..expr.builders import big_or
from ..expr.parser import ParseError, parse_expr
from ..expr.printer import to_text
from .functional import FunctionalSpec, SpecificationError, StallClause

__all__ = ["SpecFormatError", "loads_spec", "dumps_spec", "load_spec_file", "save_spec_file"]


class SpecFormatError(ValueError):
    """Raised when a specification file is malformed."""


_STAGE_RE = re.compile(
    r"^stage\s+(?P<moe>[A-Za-z_][A-Za-z0-9_.\[\]=]*)\s*(?:\"(?P<label>[^\"]*)\")?\s*:\s*$"
)


def _strip(line: str) -> str:
    """Remove comments and surrounding whitespace."""
    hash_index = line.find("#")
    if hash_index != -1:
        line = line[:hash_index]
    return line.strip()


def loads_spec(text: str) -> FunctionalSpec:
    """Parse a functional specification from its textual form."""
    name: Optional[str] = None
    inputs: List[str] = []
    clauses: List[Tuple[str, str, List[Expr]]] = []  # (moe, label, disjuncts)
    mode: Optional[str] = None  # None | "inputs" | "stage"

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip(raw_line)
        if not line:
            continue

        if line.startswith("spec "):
            if name is not None:
                raise SpecFormatError(f"line {line_number}: duplicate 'spec' line")
            name = line[len("spec "):].strip()
            if not name:
                raise SpecFormatError(f"line {line_number}: empty specification name")
            mode = None
            continue

        if line == "inputs:":
            mode = "inputs"
            continue

        stage_match = _STAGE_RE.match(line)
        if stage_match:
            moe = stage_match.group("moe")
            label = stage_match.group("label") or ""
            clauses.append((moe, label, []))
            mode = "stage"
            continue

        if line.startswith("stall when "):
            if mode != "stage" or not clauses:
                raise SpecFormatError(
                    f"line {line_number}: 'stall when' outside a stage block"
                )
            condition_text = line[len("stall when "):].strip()
            try:
                condition = parse_expr(condition_text)
            except ParseError as exc:
                raise SpecFormatError(f"line {line_number}: {exc}") from exc
            clauses[-1][2].append(condition)
            continue

        if mode == "inputs":
            inputs.extend(line.split())
            continue

        raise SpecFormatError(f"line {line_number}: cannot interpret {raw_line.strip()!r}")

    if name is None:
        raise SpecFormatError("missing 'spec <name>' line")
    if not clauses:
        raise SpecFormatError("specification declares no stages")

    stall_clauses: List[StallClause] = []
    for moe, label, disjuncts in clauses:
        condition: Expr = big_or(disjuncts) if disjuncts else FALSE
        stall_clauses.append(StallClause(moe=moe, condition=condition, label=label))

    try:
        return FunctionalSpec(name=name, clauses=stall_clauses, inputs=inputs)
    except SpecificationError as exc:
        raise SpecFormatError(str(exc)) from exc


def dumps_spec(spec: FunctionalSpec) -> str:
    """Serialise a functional specification to its textual form."""
    lines: List[str] = [
        "# Functional specification of interlocked pipeline control logic.",
        "# One 'stall when' line per disjunct of each stage's stall condition.",
        f"spec {spec.name}",
        "",
        "inputs:",
    ]
    inputs = list(spec.inputs)
    for start in range(0, len(inputs), 6):
        lines.append("    " + " ".join(inputs[start:start + 6]))
    if not inputs:
        lines.append("    # (none)")
    for clause in spec.clauses:
        lines.append("")
        label = f' "{clause.label}"' if clause.label else ""
        lines.append(f"stage {clause.moe}{label}:")
        condition = clause.condition
        disjuncts = list(condition.operands) if isinstance(condition, Or) else [condition]
        if disjuncts == [FALSE]:
            lines.append("    # never stalls")
            continue
        for disjunct in disjuncts:
            lines.append(f"    stall when {to_text(disjunct)}")
    lines.append("")
    return "\n".join(lines)


def load_spec_file(path: str) -> FunctionalSpec:
    """Load a functional specification from a text file."""
    with open(path, "r", encoding="utf-8") as stream:
        return loads_spec(stream.read())


def save_spec_file(spec: FunctionalSpec, path: str) -> None:
    """Write a functional specification to a text file."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(dumps_spec(spec))
