"""Runtime assertion monitors for simulation traces.

The monitor plays the role of the paper's testbench assertions: every cycle
it samples the control signals (interlock inputs plus the moe flags the
implementation drove) and evaluates each armed assertion.  Violations are
collected with full context so that a report can tell a designer *which*
stage stalled unnecessarily (performance bug) or moved when it should have
stalled (functional bug), and in which cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..expr.compile import (
    WORD_BITS,
    CompiledExpr,
    compile_bitparallel,
    iter_set_bits,
    tail_mask,
)
from ..expr.evaluate import UnboundVariableError
from ..pipeline.trace import CycleRecord, SimulationTrace
from .generate import Assertion, AssertionKind


@dataclass(frozen=True)
class AssertionViolation:
    """One assertion failure observed in one cycle."""

    cycle: int
    assertion: Assertion
    signals: Dict[str, bool]

    def describe(self) -> str:
        """Single-line rendering for reports."""
        return (
            f"cycle {self.cycle}: {self.assertion.kind.value} assertion "
            f"{self.assertion.name} failed ({self.assertion.moe})"
        )


@dataclass
class MonitorReport:
    """Aggregate result of monitoring one trace."""

    trace_name: str
    cycles_checked: int = 0
    assertions_checked: int = 0
    violations: List[AssertionViolation] = field(default_factory=list)

    def violation_count(self, kind: Optional[AssertionKind] = None) -> int:
        """Number of violations, optionally restricted to one assertion kind."""
        if kind is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.assertion.kind is kind)

    def violated_assertions(self, kind: Optional[AssertionKind] = None) -> List[str]:
        """Names of the distinct assertions that fired."""
        names = []
        for violation in self.violations:
            if kind is not None and violation.assertion.kind is not kind:
                continue
            if violation.assertion.name not in names:
                names.append(violation.assertion.name)
        return names

    def first_violation(self, kind: Optional[AssertionKind] = None) -> Optional[AssertionViolation]:
        """The earliest violation (of a kind), or None."""
        candidates = [
            v for v in self.violations if kind is None or v.assertion.kind is kind
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda v: v.cycle)

    def clean(self) -> bool:
        """True when no assertion fired."""
        return not self.violations

    def describe(self) -> str:
        """Multi-line summary."""
        lines = [
            f"Assertion monitor report for {self.trace_name}:",
            f"  cycles checked:      {self.cycles_checked}",
            f"  assertions armed:    {self.assertions_checked}",
            f"  violations:          {len(self.violations)}",
            f"    functional:        {self.violation_count(AssertionKind.FUNCTIONAL)}",
            f"    performance:       {self.violation_count(AssertionKind.PERFORMANCE)}",
            f"    combined:          {self.violation_count(AssertionKind.COMBINED)}",
        ]
        if self.violations:
            lines.append("  first violations:")
            for violation in self.violations[:5]:
                lines.append(f"    {violation.describe()}")
        return "\n".join(lines)


class AssertionMonitor:
    """Evaluates a set of assertions cycle by cycle.

    Whole traces are checked bit-parallel: every assertion formula is
    compiled once (per monitor) to machine-word bitwise operations, the
    trace's signal columns are packed into 64-cycle words, and each
    assertion is then decided for 64 cycles per operation.  Per-cycle
    evaluation (:meth:`check_cycle`) remains available for streaming use.
    """

    def __init__(self, assertions: Iterable[Assertion]):
        self.assertions = list(assertions)
        if not self.assertions:
            raise ValueError("an assertion monitor needs at least one assertion")
        self._compiled: Optional[List[CompiledExpr]] = None
        self._needed: Optional[List[str]] = None

    def _compile(self) -> List[CompiledExpr]:
        if self._compiled is None:
            self._compiled = [
                compile_bitparallel(assertion.formula) for assertion in self.assertions
            ]
            needed: Dict[str, None] = {}
            for compiled in self._compiled:
                for name in compiled.names:
                    needed.setdefault(name, None)
            self._needed = list(needed)
        return self._compiled

    def _pack_columns(self, trace: SimulationTrace) -> Dict[str, List[int]]:
        """Pack every referenced signal's per-cycle values into 64-bit words."""
        try:
            return trace.pack_signal_columns(self._needed)
        except KeyError as exc:
            name = exc.args[0]
            offender = next(
                assertion
                for assertion, compiled in zip(self.assertions, self._compiled)
                if name in compiled.names
            )
            raise KeyError(
                f"assertion {offender.name} references signal {name!r} "
                "which the trace does not sample"
            ) from exc

    def check_cycle(self, cycle: int, signals: Mapping[str, bool]) -> List[AssertionViolation]:
        """Evaluate every armed assertion on one cycle's signal sample."""
        violations: List[AssertionViolation] = []
        for assertion in self.assertions:
            try:
                holds = assertion.holds(signals)
            except UnboundVariableError as exc:
                raise KeyError(
                    f"assertion {assertion.name} references signal {exc.args[0]!r} "
                    "which the trace does not sample"
                ) from exc
            if not holds:
                violations.append(
                    AssertionViolation(
                        cycle=cycle, assertion=assertion, signals=dict(signals)
                    )
                )
        return violations

    def check_record(self, record: CycleRecord) -> List[AssertionViolation]:
        """Evaluate the assertions on one simulator cycle record."""
        return self.check_cycle(record.cycle, record.signals())

    def check_trace(self, trace: SimulationTrace) -> MonitorReport:
        """Evaluate the assertions on every cycle of a simulation trace.

        Equivalent to :meth:`check_record` per cycle (violations are
        reported in the same cycle-major order) but evaluated 64 cycles at
        a time through the bit-parallel compiled formulas.
        """
        report = MonitorReport(
            trace_name=f"{trace.architecture_name}/{trace.interlock_name}",
            assertions_checked=len(self.assertions),
            cycles_checked=len(trace.cycles),
        )
        if not trace.cycles:
            return report
        compiled = self._compile()
        columns = self._pack_columns(trace)
        num_cycles = len(trace.cycles)
        results = [c.evaluate_packed(columns, num_cycles) for c in compiled]
        num_words = len(results[0]) if results else 0
        for word_index in range(num_words):
            mask = tail_mask(num_cycles, word_index)
            failed = 0
            for result in results:
                failed |= (~result[word_index]) & mask
            if not failed:
                continue
            for bit in iter_set_bits(failed):
                record = trace.cycles[word_index * WORD_BITS + bit]
                signals = record.signals()
                for assertion, result in zip(self.assertions, results):
                    if not (result[word_index] >> bit) & 1:
                        report.violations.append(
                            AssertionViolation(
                                cycle=record.cycle,
                                assertion=assertion,
                                signals=dict(signals),
                            )
                        )
        return report


def monitor_trace(trace: SimulationTrace, assertions: Iterable[Assertion]) -> MonitorReport:
    """One-call convenience wrapper: monitor a finished trace."""
    return AssertionMonitor(assertions).check_trace(trace)
