"""Generation of testbench assertions from specifications.

Section 2.2.3 of the paper: "To include the assertions into a testbench,
what remains to be done is to translate them into the HDL used for RTL
design and simulation."  Here the assertions are first materialised as
backend-neutral :class:`Assertion` objects (an expression that must hold in
every cycle), which the runtime monitor evaluates on simulation traces and
the SVA/PSL emitters translate to HDL text.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional

from ..expr.ast import Expr, Not, Var
from ..expr.evaluate import eval_expr
from ..expr.printer import to_text
from ..spec.functional import FunctionalSpec
from ..spec.performance import CombinedSpec, PerformanceSpec


class AssertionKind(Enum):
    """What a violation of the assertion means."""

    FUNCTIONAL = "functional"  # violated => hazard (stage moved although it had to stall)
    PERFORMANCE = "performance"  # violated => unnecessary stall (performance bug)
    COMBINED = "combined"  # violated => either of the above


@dataclass(frozen=True)
class Assertion:
    """A per-cycle invariant over the sampled control signals.

    Attributes:
        name: unique assertion name (used in reports and generated HDL).
        kind: functional, performance or combined.
        moe: the moe flag the assertion is about.
        formula: the boolean expression that must evaluate true every cycle.
        description: human-readable meaning, copied into HDL comments.
    """

    name: str
    kind: AssertionKind
    moe: str
    formula: Expr
    description: str = ""

    def holds(self, signals: Mapping[str, bool]) -> bool:
        """Evaluate the assertion on one cycle's signal sample."""
        return eval_expr(self.formula, signals)

    def describe(self) -> str:
        """Single-line rendering."""
        return f"[{self.kind.value}] {self.name}: {to_text(self.formula)}"


def _sanitise(moe: str) -> str:
    return moe.replace(".", "_").replace("[", "_").replace("]", "").replace("=", "_eq_")


def functional_assertions(spec: FunctionalSpec) -> List[Assertion]:
    """One functional assertion per stage: ``condition → ¬moe``.

    A violation means the interlock let a stage report "moving or empty"
    although a functional constraint required it to stall — a hazard.
    """
    out: List[Assertion] = []
    for clause in spec.clauses:
        out.append(
            Assertion(
                name=f"func_{_sanitise(clause.moe)}",
                kind=AssertionKind.FUNCTIONAL,
                moe=clause.moe,
                formula=clause.functional_formula(),
                description=(
                    f"{clause.label or clause.moe}: stage must stall when its "
                    "functional stall condition holds"
                ),
            )
        )
    return out


def performance_assertions(spec: PerformanceSpec) -> List[Assertion]:
    """One performance assertion per stage: ``¬moe → condition``.

    A violation is an unnecessary pipeline stall — the paper's definition of
    a performance bug.
    """
    out: List[Assertion] = []
    for clause in spec.clauses:
        out.append(
            Assertion(
                name=f"perf_{_sanitise(clause.moe)}",
                kind=AssertionKind.PERFORMANCE,
                moe=clause.moe,
                formula=clause.formula(),
                description=(
                    f"{clause.label or clause.moe}: every stall must be justified by "
                    "a functional stall condition"
                ),
            )
        )
    return out


def combined_assertions(spec: CombinedSpec) -> List[Assertion]:
    """One combined assertion per stage: ``condition ↔ ¬moe``."""
    out: List[Assertion] = []
    for clause in spec.clauses:
        out.append(
            Assertion(
                name=f"comb_{_sanitise(clause.moe)}",
                kind=AssertionKind.COMBINED,
                moe=clause.moe,
                formula=clause.formula(),
                description=(
                    f"{clause.label or clause.moe}: the stage stalls exactly when a "
                    "functional stall condition holds"
                ),
            )
        )
    return out


def testbench_assertions(
    functional: FunctionalSpec,
    include_functional: bool = True,
    include_performance: bool = True,
) -> List[Assertion]:
    """The assertion set the paper adds to the FirePath testbench.

    The project described in the paper focused on the performance half; both
    halves are generated here and callers choose which to arm.
    """
    out: List[Assertion] = []
    if include_functional:
        out.extend(functional_assertions(functional))
    if include_performance:
        out.extend(performance_assertions(PerformanceSpec(functional)))
    return out


# The name starts with "test", so pytest would otherwise collect this helper
# as a test function in every test module that imports it.
testbench_assertions.__test__ = False


def derived_assertions(
    derivation,
    include_functional: bool = True,
    include_performance: bool = True,
) -> List[Assertion]:
    """Assertions over the *derived* closed forms, from extracted covers.

    Where :func:`testbench_assertions` arms the raw specification clauses
    (whose conditions mention other stages' moe flags), these arm the
    fixed-point closed forms ``MOE_i`` over primary inputs only — the exact
    per-cycle contract of the unique maximum-performance interlock:

    * performance: ``MOE_i(inputs) → moe_i`` — if the most liberal
      assignment lets the stage move, stalling it is a performance bug;
    * functional: ``¬MOE_i(inputs) → ¬moe_i`` — if the most liberal
      assignment stalls the stage, moving it is a hazard.

    The formulas are materialized from the derivation's BDD nodes as
    minimized ISOP covers (and their cached complement covers for the
    stall side), so the emitted SVA/PSL and the runtime monitors evaluate
    compact two-level forms rather than substitution residue.

    Args:
        derivation: a :class:`~repro.spec.derivation.DerivationResult`.
        include_functional: emit the hazard half.
        include_performance: emit the unnecessary-stall half.
    """
    out: List[Assertion] = []
    moe_covers = derivation.moe_expressions
    stall_covers = derivation.stall_expressions()
    for moe in moe_covers:
        tag = _sanitise(moe)
        if include_performance:
            out.append(
                Assertion(
                    name=f"perf_closed_{tag}",
                    kind=AssertionKind.PERFORMANCE,
                    moe=moe,
                    formula=moe_covers[moe].implies(Var(moe)),
                    description=(
                        f"{moe}: the stage must move whenever the derived most "
                        "liberal assignment lets it move"
                    ),
                )
            )
        if include_functional:
            out.append(
                Assertion(
                    name=f"func_closed_{tag}",
                    kind=AssertionKind.FUNCTIONAL,
                    moe=moe,
                    formula=stall_covers[moe].implies(Not(Var(moe))),
                    description=(
                        f"{moe}: the stage must stall whenever the derived most "
                        "liberal assignment requires a stall"
                    ),
                )
            )
    return out


def assertions_by_kind(assertions: List[Assertion]) -> Dict[AssertionKind, List[Assertion]]:
    """Group assertions by kind (used by reports)."""
    grouped: Dict[AssertionKind, List[Assertion]] = {}
    for assertion in assertions:
        grouped.setdefault(assertion.kind, []).append(assertion)
    return grouped
