"""Textual reports combining assertion results and physical hazards."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..pipeline.trace import SimulationTrace
from .generate import AssertionKind
from .monitor import MonitorReport


@dataclass
class VerificationSummary:
    """Joins what the assertions said with what physically happened.

    The interesting quadrants (Section 4 of the paper):

    * performance assertions fired, no hazards — unnecessary stalls found;
    * functional assertions fired and hazards observed — a real hazard the
      interlock failed to prevent;
    * nothing fired, no hazards — clean run (which, as the paper stresses,
      still proves nothing by itself because simulation is not exhaustive).
    """

    trace: SimulationTrace
    monitor: MonitorReport

    @property
    def functional_violations(self) -> int:
        """Number of functional assertion failures (potential hazards)."""
        return self.monitor.violation_count(AssertionKind.FUNCTIONAL)

    @property
    def performance_violations(self) -> int:
        """Number of performance assertion failures (unnecessary stalls)."""
        return self.monitor.violation_count(AssertionKind.PERFORMANCE)

    @property
    def hazards(self) -> int:
        """Number of physically observed hazards."""
        return self.trace.hazard_count()

    def verdict(self) -> str:
        """Coarse classification of the run."""
        if self.functional_violations and self.hazards:
            return "functional-bug"
        if self.functional_violations:
            return "functional-violation-latent"
        if self.performance_violations:
            return "performance-bug"
        return "clean"

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"Verification summary ({self.trace.interlock_name} on "
            f"{self.trace.architecture_name}):",
            f"  verdict:                  {self.verdict()}",
            f"  cycles:                   {self.trace.num_cycles()}",
            f"  retired instructions:     {self.trace.retired_instructions}",
            f"  IPC:                      {self.trace.instructions_per_cycle():.3f}",
            f"  functional violations:    {self.functional_violations}",
            f"  performance violations:   {self.performance_violations}",
            f"  physical hazards:         {self.hazards}",
        ]
        first_perf = self.monitor.first_violation(AssertionKind.PERFORMANCE)
        if first_perf is not None:
            lines.append(f"  first unnecessary stall:  {first_perf.describe()}")
        first_func = self.monitor.first_violation(AssertionKind.FUNCTIONAL)
        if first_func is not None:
            lines.append(f"  first functional failure: {first_func.describe()}")
        return "\n".join(lines)


def violations_by_stage(report: MonitorReport) -> Dict[str, int]:
    """Violation counts grouped by the moe flag the assertion governs."""
    counts: Dict[str, int] = {}
    for violation in report.violations:
        counts[violation.assertion.moe] = counts.get(violation.assertion.moe, 0) + 1
    return counts


def format_table(rows: List[Dict[str, object]], columns: Optional[List[str]] = None) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Shared by the benchmark harnesses so every experiment prints its results
    in the same shape as the paper reports them.
    """
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
