"""Assertion generation, runtime monitoring and HDL (SVA/PSL) emission."""

from .generate import (
    Assertion,
    AssertionKind,
    assertions_by_kind,
    combined_assertions,
    derived_assertions,
    functional_assertions,
    performance_assertions,
    testbench_assertions,
)
from .monitor import AssertionMonitor, AssertionViolation, MonitorReport, monitor_trace
from .psl import psl_vunit
from .report import VerificationSummary, format_table, violations_by_stage
from .sva import sva_bind_directive, sva_module

__all__ = [
    "Assertion",
    "AssertionKind",
    "assertions_by_kind",
    "combined_assertions",
    "derived_assertions",
    "functional_assertions",
    "performance_assertions",
    "testbench_assertions",
    "AssertionMonitor",
    "AssertionViolation",
    "MonitorReport",
    "monitor_trace",
    "psl_vunit",
    "VerificationSummary",
    "format_table",
    "violations_by_stage",
    "sva_bind_directive",
    "sva_module",
]
