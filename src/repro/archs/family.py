"""A parametric family of synthetic interlocked pipeline architectures.

The paper verifies one design at a time; the campaign orchestrator
(:mod:`repro.campaign`) wants dozens to hundreds.  This module spans that
space with a single declarative knob set — register count, issue width
(number of lock-stepped pipes), stage latencies and scoreboard style —
so a whole grid of structurally distinct machines can be generated,
named, serialized and rebuilt deterministically.

Every member has a canonical name of the form::

    fam-r<registers>w<width>d<depth>s<step>-<style>[-ls][-wait]

(e.g. ``fam-r4w2d5s1-bypass-ls-wait``) which round-trips through
:meth:`FamilyConfig.from_name`.  The architecture library resolves any
such name on the fly, so family members are first-class ``--arch``
workloads everywhere a bundled architecture is accepted — the CLI, the
campaign runner and the benchmarks.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Sequence, Tuple

from ..pipeline.structure import (
    Architecture,
    CompletionBusSpec,
    PipeSpec,
    ScoreboardSpec,
    StallInput,
)

FAMILY_PREFIX = "fam-"

#: Scoreboard styles the family spans.  ``bypass`` mirrors the paper: the
#: completion bus clears the hazard in the same cycle it writes back;
#: ``blocking`` keeps the scoreboard bit visible until the cycle after.
SCOREBOARD_STYLES = ("bypass", "blocking")

_NAME_PATTERN = re.compile(
    r"^fam-r(?P<registers>\d+)w(?P<width>\d+)d(?P<depth>\d+)s(?P<step>\d+)"
    r"-(?P<style>[a-z]+)(?P<loadstore>-ls)?(?P<wait>-wait)?$"
)


class FamilyError(ValueError):
    """Raised for out-of-range parameters or malformed family names."""


@dataclass(frozen=True)
class FamilyConfig:
    """One point of the parametric architecture family.

    Attributes:
        num_registers: architectural registers tracked by the scoreboard.
        issue_width: number of lock-stepped execution pipes (the machine's
            issue/read-port width; each pipe reads a src and a dst port).
        depth: stages of the deepest pipe, including issue and completion.
        latency_step: each further pipe is this many stages shallower than
            its predecessor (floored at 2 stages), giving the family
            staggered stage latencies like the paper's long/short pair.
        scoreboard_style: ``"bypass"`` or ``"blocking"`` (see
            :data:`SCOREBOARD_STYLES`).
        with_loadstore: add a load/store pipe without register writeback
            (no completion bus), lock-stepped with the others.
        with_wait: expose an instruction-specific WAIT stall input at the
            deepest pipe's issue stage.
    """

    num_registers: int = 4
    issue_width: int = 2
    depth: int = 4
    latency_step: int = 1
    scoreboard_style: str = "bypass"
    with_loadstore: bool = False
    with_wait: bool = False

    def __post_init__(self):
        if self.num_registers < 1:
            raise FamilyError("num_registers must be at least 1")
        if self.issue_width < 1:
            raise FamilyError("issue_width must be at least 1")
        if self.depth < 2:
            raise FamilyError("depth must be at least 2 (issue + completion)")
        if self.latency_step < 0:
            raise FamilyError("latency_step must be non-negative")
        if self.scoreboard_style not in SCOREBOARD_STYLES:
            raise FamilyError(
                f"unknown scoreboard style {self.scoreboard_style!r}; "
                f"expected one of {SCOREBOARD_STYLES}"
            )

    # -- naming ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Canonical family-member name (round-trips via :meth:`from_name`)."""
        suffix = ""
        if self.with_loadstore:
            suffix += "-ls"
        if self.with_wait:
            suffix += "-wait"
        return (
            f"{FAMILY_PREFIX}r{self.num_registers}w{self.issue_width}"
            f"d{self.depth}s{self.latency_step}-{self.scoreboard_style}{suffix}"
        )

    @classmethod
    def from_name(cls, name: str) -> "FamilyConfig":
        """Parse a canonical family-member name back into its configuration."""
        match = _NAME_PATTERN.match(name)
        if match is None:
            raise FamilyError(
                f"malformed family architecture name {name!r}; expected "
                "fam-r<registers>w<width>d<depth>s<step>-<style>[-ls][-wait], "
                "e.g. 'fam-r4w2d5s1-bypass-ls-wait'"
            )
        return cls(
            num_registers=int(match.group("registers")),
            issue_width=int(match.group("width")),
            depth=int(match.group("depth")),
            latency_step=int(match.group("step")),
            scoreboard_style=match.group("style"),
            with_loadstore=match.group("loadstore") is not None,
            with_wait=match.group("wait") is not None,
        )

    # -- JSON round trip ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FamilyConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FamilyError(f"unknown family parameters: {sorted(unknown)}")
        return cls(**payload)

    # -- construction ------------------------------------------------------------

    def pipe_depths(self) -> List[int]:
        """Stage count of each execution pipe, deepest first."""
        return [
            max(2, self.depth - index * self.latency_step)
            for index in range(self.issue_width)
        ]

    def build(self) -> Architecture:
        """Instantiate the family member as an :class:`Architecture`."""
        bus_name = "c"
        pipes: List[PipeSpec] = []
        for index, stages in enumerate(self.pipe_depths()):
            pipes.append(
                PipeSpec(
                    name=f"p{index}",
                    num_stages=stages,
                    completion_bus=bus_name,
                    has_wait=self.with_wait and index == 0,
                )
            )
        if self.with_loadstore:
            # No register writeback: the load/store pipe never competes for
            # the completion bus, matching the FirePath-like model.
            pipes.append(PipeSpec(name="ls", num_stages=max(2, self.depth - 1)))
        # Shallower pipes win arbitration, as the paper's short pipe does.
        completing = [pipe for pipe in pipes if pipe.completion_bus == bus_name]
        priority = tuple(
            pipe.name for pipe in sorted(completing, key=lambda p: p.num_stages)
        )
        buses = [CompletionBusSpec(name=bus_name, priority=priority)]
        scoreboard = ScoreboardSpec(
            num_registers=self.num_registers,
            bypass_buses=(bus_name,) if self.scoreboard_style == "bypass" else (),
        )
        lockstep = [tuple(pipe.name for pipe in pipes)] if len(pipes) > 1 else []
        stall_inputs = []
        if self.with_wait:
            stall_inputs.append(
                StallInput(
                    signal="op_is_WAIT",
                    applies_to=("p0",),
                    description="instruction-specific wait state at the deep pipe",
                )
            )
        return Architecture(
            name=self.name,
            pipes=pipes,
            buses=buses,
            scoreboard=scoreboard,
            lockstep_groups=lockstep,
            extra_stall_inputs=stall_inputs,
        )


def is_family_name(name: str) -> bool:
    """Whether a name uses the family prefix (well-formed or not)."""
    return name.startswith(FAMILY_PREFIX)


def generate_family(
    registers: Sequence[int] = (2, 4),
    widths: Sequence[int] = (1, 2),
    depths: Sequence[int] = (3, 4, 5),
    latency_steps: Sequence[int] = (1,),
    styles: Sequence[str] = SCOREBOARD_STYLES,
    loadstore: Sequence[bool] = (False,),
    waits: Sequence[bool] = (False,),
) -> List[FamilyConfig]:
    """The cartesian grid over the given parameter axes, in deterministic order.

    The defaults span 24 configurations; widening any axis scales the
    family to hundreds of members without further code.
    """
    configs = [
        FamilyConfig(
            num_registers=num_registers,
            issue_width=width,
            depth=depth,
            latency_step=step,
            scoreboard_style=style,
            with_loadstore=with_ls,
            with_wait=with_wait,
        )
        for num_registers, width, depth, step, style, with_ls, with_wait in
        itertools.product(
            registers, widths, depths, latency_steps, styles, loadstore, waits
        )
    ]
    seen: Dict[tuple, FamilyConfig] = {}
    for config in configs:
        # Distinct parameter tuples can build identical machines — e.g.
        # latency_step is irrelevant at width 1 — so dedup on structural
        # identity (what actually reaches the Architecture), keeping the
        # first-listed parameterization as the member's identity.
        structural = (
            config.num_registers,
            tuple(config.pipe_depths()),
            config.scoreboard_style,
            config.with_loadstore,
            config.with_wait,
        )
        seen.setdefault(structural, config)
    return list(seen.values())


#: A small curated subset registered by name in the architecture library,
#: so ``repro list-archs`` advertises the family alongside the hand-written
#: designs.  Any other member is resolved dynamically from its name.
SHOWCASE_CONFIGS: Tuple[FamilyConfig, ...] = (
    FamilyConfig(num_registers=4, issue_width=2, depth=4, scoreboard_style="bypass"),
    FamilyConfig(num_registers=4, issue_width=2, depth=5, scoreboard_style="blocking"),
    FamilyConfig(
        num_registers=8,
        issue_width=3,
        depth=6,
        scoreboard_style="bypass",
        with_loadstore=True,
        with_wait=True,
    ),
)
