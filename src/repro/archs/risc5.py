"""A classic scoreboarded five-stage RISC pipeline.

The paper claims the method "can be applied to any pipelined microprocessor
design that uses interlock logic to prevent hazards".  This single-pipe
five-stage in-order machine (IF/ID as the issue stage, EX, MEM, WB as the
completion stage) is the simplest such design and serves as a third, very
different validation target: no lock-step coupling, no WAIT, a single
requester on its writeback port.
"""

from __future__ import annotations

from ..pipeline.structure import (
    Architecture,
    CompletionBusSpec,
    PipeSpec,
    ScoreboardSpec,
)


def risc5_architecture(num_registers: int = 8) -> Architecture:
    """A single five-stage pipe completing onto a dedicated writeback port."""
    pipe = PipeSpec(name="core", num_stages=5, completion_bus="wb")
    bus = CompletionBusSpec(name="wb", priority=("core",))
    scoreboard = ScoreboardSpec(num_registers=num_registers, bypass_buses=("wb",))
    return Architecture(
        name="risc5",
        pipes=[pipe],
        buses=[bus],
        scoreboard=scoreboard,
        lockstep_groups=[],
        extra_stall_inputs=[],
    )
