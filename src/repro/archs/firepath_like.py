"""A FirePath-like architecture: the scaled-up target of the original project.

The paper describes the real FirePath as differing from the worked example
in being two-sided, having more and deeper execution pipes, pipeline
decouple (shunt) stages, interrupt logic and several completion buses.  The
proprietary design is not available, so this module provides a synthetic
architecture with the same structural features; the method only depends on
that structure, not on the datapath, so verification results on this model
exercise the same code paths the FirePath project did.

Defaults: two sides (``a`` and ``b``), each with one deep multiply/ALU pipe
(with a shunt stage), one shorter ALU pipe and one load/store pipe without
register writeback; one completion bus per side; a shared scoreboard; WAIT
visible on each side's deep pipe; and a global interrupt request stalling
every issue stage.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..pipeline.structure import (
    Architecture,
    CompletionBusSpec,
    PipeSpec,
    ScoreboardSpec,
    StallInput,
)

DEFAULT_SIDES = ("a", "b")


def firepath_like_architecture(
    sides: Tuple[str, ...] = DEFAULT_SIDES,
    deep_pipe_stages: int = 6,
    short_pipe_stages: int = 3,
    loadstore_stages: int = 4,
    num_registers: int = 16,
    with_interrupt: bool = True,
    with_wait: bool = True,
) -> Architecture:
    """Build the FirePath-like two-sided LIW architecture.

    Args:
        sides: names of the machine's sides (two for an LIW pair).
        deep_pipe_stages: depth of each side's deep (multiply) pipe,
            including issue and completion; must be at least 3 so the shunt
            stage has room between issue and completion.
        short_pipe_stages: depth of each side's short ALU pipe.
        loadstore_stages: depth of each side's load/store pipe (no register
            writeback, hence no completion bus).
        num_registers: registers tracked by the shared scoreboard.
        with_interrupt: include the global interrupt stall input.
        with_wait: include per-side WAIT stall inputs on the deep pipes.
    """
    if deep_pipe_stages < 3:
        raise ValueError("the deep pipe needs at least 3 stages (issue, shunt, completion)")
    if short_pipe_stages < 2:
        raise ValueError("the short pipe needs at least 2 stages")
    if loadstore_stages < 2:
        raise ValueError("the load/store pipe needs at least 2 stages")

    pipes: List[PipeSpec] = []
    buses: List[CompletionBusSpec] = []
    lockstep_groups: List[Tuple[str, ...]] = []
    stall_inputs: List[StallInput] = []

    for side in sides:
        deep = f"{side}_mul"
        short = f"{side}_alu"
        loadstore = f"{side}_ls"
        bus = f"c_{side}"
        shunt_stage = deep_pipe_stages - 2
        pipes.append(
            PipeSpec(
                name=deep,
                num_stages=deep_pipe_stages,
                completion_bus=bus,
                shunt_stages=(shunt_stage,),
                has_wait=with_wait,
            )
        )
        pipes.append(PipeSpec(name=short, num_stages=short_pipe_stages, completion_bus=bus))
        pipes.append(PipeSpec(name=loadstore, num_stages=loadstore_stages))
        buses.append(CompletionBusSpec(name=bus, priority=(short, deep)))
        lockstep_groups.append((deep, short, loadstore))
        if with_wait:
            stall_inputs.append(
                StallInput(
                    signal=f"{side}.op_is_WAIT",
                    applies_to=(deep,),
                    description=f"wait state visible at side {side}'s deep pipe issue stage",
                )
            )

    if with_interrupt:
        all_pipes = tuple(pipe.name for pipe in pipes)
        stall_inputs.append(
            StallInput(
                signal="interrupt",
                applies_to=all_pipes,
                description="global interrupt request stalls every issue stage",
            )
        )

    scoreboard = ScoreboardSpec(
        num_registers=num_registers,
        bypass_buses=tuple(bus.name for bus in buses),
    )
    return Architecture(
        name="firepath-like",
        pipes=pipes,
        buses=buses,
        scoreboard=scoreboard,
        lockstep_groups=lockstep_groups,
        extra_stall_inputs=stall_inputs,
    )


def scaled_architecture(
    num_pipes: int,
    pipe_depth: int,
    num_registers: int = 4,
    num_buses: int = 1,
    name: Optional[str] = None,
) -> Architecture:
    """A parametric architecture for scalability studies.

    ``num_pipes`` pipes of ``pipe_depth`` stages each are spread round-robin
    over ``num_buses`` completion buses, all issue stages in one lock-step
    group, sharing a scoreboard of ``num_registers`` registers.  Used by the
    scale benchmark to measure how derivation and property-checking cost
    grow with pipeline size.
    """
    if num_pipes < 1 or pipe_depth < 2:
        raise ValueError("need at least one pipe of depth 2")
    if num_buses < 1:
        raise ValueError("need at least one completion bus")
    bus_names = [f"c{bus_index}" for bus_index in range(num_buses)]
    pipes = []
    bus_members: dict = {bus: [] for bus in bus_names}
    for pipe_index in range(num_pipes):
        bus = bus_names[pipe_index % num_buses]
        pipe_name = f"p{pipe_index}"
        pipes.append(PipeSpec(name=pipe_name, num_stages=pipe_depth, completion_bus=bus))
        bus_members[bus].append(pipe_name)
    buses = [
        CompletionBusSpec(name=bus, priority=tuple(members))
        for bus, members in bus_members.items()
        if members
    ]
    lockstep = [tuple(pipe.name for pipe in pipes)] if num_pipes > 1 else []
    return Architecture(
        name=name or f"scaled-{num_pipes}x{pipe_depth}",
        pipes=pipes,
        buses=buses,
        scoreboard=ScoreboardSpec(num_registers=num_registers, bypass_buses=tuple(bus_names)),
        lockstep_groups=lockstep,
        extra_stall_inputs=[],
    )
