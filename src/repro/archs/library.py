"""Registry of the bundled and generated example architectures.

Besides the three hand-written designs, the library resolves any member
of the parametric family (:mod:`repro.archs.family`) straight from its
canonical ``fam-...`` name, and accepts runtime registrations so tools
and tests can plug additional factories in without touching this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..pipeline.structure import Architecture
from .example_dac2002 import example_architecture
from .family import FamilyConfig, FamilyError, SHOWCASE_CONFIGS, is_family_name
from .firepath_like import firepath_like_architecture
from .risc5 import risc5_architecture

_REGISTRY: Dict[str, Callable[[], Architecture]] = {
    "dac2002-example": example_architecture,
    "firepath-like": firepath_like_architecture,
    "risc5": risc5_architecture,
}

for _config in SHOWCASE_CONFIGS:
    _REGISTRY[_config.name] = _config.build


def register_architecture(
    name: str,
    factory: Callable[[], Architecture],
    overwrite: bool = False,
) -> None:
    """Register an architecture factory under a name.

    Raises ValueError when the name is already taken, unless ``overwrite``
    is given (family names resolved dynamically cannot be shadowed).
    """
    if not name:
        raise ValueError("architecture name must be non-empty")
    if is_family_name(name):
        raise ValueError(
            f"the {name!r} prefix is reserved for the parametric family; "
            "family members are resolved from their canonical names"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"architecture {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_architecture(name: str) -> None:
    """Remove a registered factory (KeyError when the name is unknown)."""
    del _REGISTRY[name]


def available_architectures() -> List[str]:
    """Names of the registered architectures.

    Any further ``fam-r<R>w<W>d<D>s<S>-<style>[-ls][-wait]`` name is also
    loadable — the parametric family is resolved dynamically.
    """
    return sorted(_REGISTRY)


def load_architecture(name: str) -> Architecture:
    """Instantiate an architecture by name (registered or family)."""
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory()
    if is_family_name(name):
        try:
            return FamilyConfig.from_name(name).build()
        except FamilyError as exc:
            raise KeyError(str(exc)) from exc
    raise KeyError(
        f"unknown architecture {name!r}; available: {available_architectures()} "
        "or any parametric family name "
        "fam-r<registers>w<width>d<depth>s<step>-<style>[-ls][-wait]"
    )
