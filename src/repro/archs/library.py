"""Registry of the bundled example architectures."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..pipeline.structure import Architecture
from .example_dac2002 import example_architecture
from .firepath_like import firepath_like_architecture
from .risc5 import risc5_architecture

_REGISTRY: Dict[str, Callable[[], Architecture]] = {
    "dac2002-example": example_architecture,
    "firepath-like": firepath_like_architecture,
    "risc5": risc5_architecture,
}


def available_architectures() -> List[str]:
    """Names of the bundled architectures."""
    return sorted(_REGISTRY)


def load_architecture(name: str) -> Architecture:
    """Instantiate a bundled architecture by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown architecture {name!r}; available: {available_architectures()}"
        ) from exc
    return factory()
