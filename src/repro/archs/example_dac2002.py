"""The paper's example architecture (Figure 1) and its hand-written spec.

Two pipes share a combined fetch/decode/issue stage operating in lock step:

* ``long`` — issue, two execute stages, writeback (4 stages), completes on
  bus ``c``;
* ``short`` — issue, one combined execute/writeback stage (2 stages), also
  completes on bus ``c`` with higher priority.

Eight architectural registers are tracked on a scoreboard; the single
completion bus bypasses the scoreboard check in the cycle it writes back.
The long pipe's issue stage additionally honours the instruction-specific
``op_is_WAIT`` flag.

Besides the :class:`~repro.pipeline.structure.Architecture` object, this
module provides the *literal* Figure 2 and Figure 3 formulas transcribed
from the paper, so tests and benchmarks can verify that the automatically
built / derived specifications are logically equivalent to the published
ones.
"""

from __future__ import annotations

from typing import Dict, List

from ..expr.ast import Expr, Iff, Implies, Not, Var
from ..expr.builders import big_and, big_or
from ..pipeline import signals as sig
from ..pipeline.structure import (
    Architecture,
    CompletionBusSpec,
    PipeSpec,
    ScoreboardSpec,
    StallInput,
)

NUM_REGISTERS = 8
WAIT_SIGNAL = "op_is_WAIT"
BUS_NAME = "c"


def example_architecture(num_registers: int = NUM_REGISTERS) -> Architecture:
    """The Figure 1 architecture: two pipes, one completion bus, a scoreboard."""
    long_pipe = PipeSpec(name="long", num_stages=4, completion_bus=BUS_NAME, has_wait=True)
    short_pipe = PipeSpec(name="short", num_stages=2, completion_bus=BUS_NAME)
    bus = CompletionBusSpec(name=BUS_NAME, priority=("short", "long"))
    scoreboard = ScoreboardSpec(num_registers=num_registers, bypass_buses=(BUS_NAME,))
    return Architecture(
        name="dac2002-example",
        pipes=[long_pipe, short_pipe],
        buses=[bus],
        scoreboard=scoreboard,
        lockstep_groups=[("long", "short")],
        extra_stall_inputs=[
            StallInput(
                signal=WAIT_SIGNAL,
                applies_to=("long",),
                description="instruction-specific wait state visible at the long issue stage",
            )
        ],
    )


def _scoreboard_hazard(pipe: str, num_registers: int) -> Expr:
    """The expanded ∃r ∃a register-outstanding term for a pipe's issue stage."""
    disjuncts: List[Expr] = []
    for which in ("src", "dst"):
        for address in range(num_registers):
            disjuncts.append(
                Var(sig.stage_regaddr_indicator(pipe, 1, which, address))
                & Var(sig.scoreboard_name(address))
                & ~Var(sig.bus_target_indicator(BUS_NAME, address))
            )
    return big_or(disjuncts)


def paper_stall_conditions(num_registers: int = NUM_REGISTERS) -> Dict[str, Expr]:
    """The per-stage stall conditions exactly as printed in Figure 2."""
    long_moe = {i: Var(sig.moe_name("long", i)) for i in range(1, 5)}
    short_moe = {i: Var(sig.moe_name("short", i)) for i in range(1, 3)}
    conditions: Dict[str, Expr] = {}

    conditions[long_moe[4].name] = Var(sig.req_name("long")) & ~Var(sig.gnt_name("long"))
    conditions[long_moe[3].name] = Var(sig.rtm_name("long", 3)) & ~long_moe[4]
    conditions[long_moe[2].name] = Var(sig.rtm_name("long", 2)) & ~long_moe[3]
    conditions[long_moe[1].name] = big_or(
        [
            Var(sig.rtm_name("long", 1)) & ~long_moe[2],
            Var(WAIT_SIGNAL),
            ~short_moe[1],
            _scoreboard_hazard("long", num_registers),
        ]
    )
    conditions[short_moe[2].name] = Var(sig.req_name("short")) & ~Var(sig.gnt_name("short"))
    conditions[short_moe[1].name] = big_or(
        [
            Var(sig.rtm_name("short", 1)) & ~short_moe[2],
            ~long_moe[1],
            _scoreboard_hazard("short", num_registers),
        ]
    )
    return conditions


def paper_functional_formula(num_registers: int = NUM_REGISTERS) -> Expr:
    """``SPEC_func`` exactly as printed in Figure 2 (conjunction of implications)."""
    conditions = paper_stall_conditions(num_registers)
    return big_and(
        Implies(condition, Not(Var(moe))) for moe, condition in conditions.items()
    )


def paper_performance_formula(num_registers: int = NUM_REGISTERS) -> Expr:
    """``SPEC_perf`` exactly as printed in Figure 3 (implications flipped)."""
    conditions = paper_stall_conditions(num_registers)
    return big_and(
        Implies(Not(Var(moe)), condition) for moe, condition in conditions.items()
    )


def paper_combined_formula(num_registers: int = NUM_REGISTERS) -> Expr:
    """The combined specification of Section 2.2.3 (``condition ↔ ¬moe``)."""
    conditions = paper_stall_conditions(num_registers)
    return big_and(
        Iff(condition, Not(Var(moe))) for moe, condition in conditions.items()
    )
