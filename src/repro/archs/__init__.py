"""Bundled example architectures: the paper's example, a FirePath-like model, a RISC pipe."""

from .example_dac2002 import (
    example_architecture,
    paper_combined_formula,
    paper_functional_formula,
    paper_performance_formula,
    paper_stall_conditions,
)
from .family import (
    FamilyConfig,
    FamilyError,
    SCOREBOARD_STYLES,
    SHOWCASE_CONFIGS,
    generate_family,
    is_family_name,
)
from .firepath_like import firepath_like_architecture, scaled_architecture
from .library import (
    available_architectures,
    load_architecture,
    register_architecture,
    unregister_architecture,
)
from .risc5 import risc5_architecture

__all__ = [
    "example_architecture",
    "paper_combined_formula",
    "paper_functional_formula",
    "paper_performance_formula",
    "paper_stall_conditions",
    "FamilyConfig",
    "FamilyError",
    "SCOREBOARD_STYLES",
    "SHOWCASE_CONFIGS",
    "generate_family",
    "is_family_name",
    "firepath_like_architecture",
    "scaled_architecture",
    "available_architectures",
    "load_architecture",
    "register_architecture",
    "unregister_architecture",
    "risc5_architecture",
]
