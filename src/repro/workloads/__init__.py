"""Synthetic instruction-stream generators used by examples, tests and benches."""

from .generators import (
    BALANCED,
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WAIT_HEAVY,
    WorkloadGenerator,
    WorkloadProfile,
    completion_contention_program,
    dependent_chain,
    independent_stream,
    wait_stream,
)

__all__ = [
    "BALANCED",
    "CONTENTION_HEAVY",
    "HAZARD_HEAVY",
    "WAIT_HEAVY",
    "WorkloadGenerator",
    "WorkloadProfile",
    "completion_contention_program",
    "dependent_chain",
    "independent_stream",
    "wait_stream",
]
