"""Workload (instruction-stream) generators for the pipeline simulator.

The paper evaluates its method on the FirePath testbench's stimulus; since
that stimulus is proprietary we generate synthetic streams that exercise the
same interlock behaviours:

* register dependencies at every distance (scoreboard stalls and bypasses),
* competition for the completion buses (arbitration-induced stalls),
* explicit WAIT instructions (enforced issue stalls),
* external interrupt-style stall inputs,
* mixes of writeback and non-writeback instructions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..pipeline.instructions import (
    Instruction,
    InstructionKind,
    Program,
    alu,
    bubble,
    store,
    wait,
)
from ..pipeline.structure import Architecture


@dataclass
class WorkloadProfile:
    """Tunable mix of instruction behaviours.

    Attributes:
        length: number of issue slots generated per pipe.
        dependency_rate: probability that an instruction reads the most
            recently written register (creates read-after-write distance-1
            dependencies, the hardest case for the scoreboard/bypass logic).
        store_rate: probability of a no-writeback instruction.
        wait_rate: probability of a WAIT instruction (only emitted for pipes
            that honour WAIT).
        bubble_rate: probability of an empty issue slot.
        max_wait_cycles: upper bound on the duration of WAIT instructions.
        interrupt_rate: probability that an external stall input is asserted
            in a given cycle (applied over ``length * 4`` cycles).
    """

    length: int = 100
    dependency_rate: float = 0.3
    store_rate: float = 0.1
    wait_rate: float = 0.05
    bubble_rate: float = 0.05
    max_wait_cycles: int = 3
    interrupt_rate: float = 0.0

    def __post_init__(self):
        rates = {
            "dependency_rate": self.dependency_rate,
            "store_rate": self.store_rate,
            "wait_rate": self.wait_rate,
            "bubble_rate": self.bubble_rate,
            "interrupt_rate": self.interrupt_rate,
        }
        for name, value in rates.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.length < 1:
            raise ValueError("workload length must be at least 1")


HAZARD_HEAVY = WorkloadProfile(dependency_rate=0.8, store_rate=0.05, wait_rate=0.0, bubble_rate=0.0)
"""A profile dominated by back-to-back register dependencies."""

CONTENTION_HEAVY = WorkloadProfile(dependency_rate=0.05, store_rate=0.0, wait_rate=0.0, bubble_rate=0.0)
"""A profile of independent writeback instructions that all fight for the bus."""

WAIT_HEAVY = WorkloadProfile(dependency_rate=0.2, wait_rate=0.3, max_wait_cycles=4)
"""A profile with frequent explicit WAIT instructions."""

BALANCED = WorkloadProfile()
"""The default mixed profile."""


class WorkloadGenerator:
    """Generates reproducible random programs for an architecture."""

    def __init__(self, architecture: Architecture, seed: int = 0):
        self.architecture = architecture
        self.seed = seed

    def generate(self, profile: WorkloadProfile = BALANCED) -> Program:
        """Generate one program according to the given profile."""
        rng = random.Random(self.seed)
        num_registers = (
            self.architecture.scoreboard.num_registers
            if self.architecture.scoreboard
            else 8
        )
        streams: Dict[str, List[Instruction]] = {}
        for pipe in self.architecture.pipes:
            streams[pipe.name] = self._stream_for_pipe(
                pipe.name, pipe.has_wait, profile, rng, num_registers
            )
        external: Dict[str, List[int]] = {}
        if profile.interrupt_rate > 0.0:
            horizon = profile.length * 4
            for stall_input in self.architecture.extra_stall_inputs:
                asserted = [
                    cycle
                    for cycle in range(horizon)
                    if rng.random() < profile.interrupt_rate
                ]
                external[stall_input.signal] = asserted
        return Program(streams=streams, external_inputs=external)

    def _stream_for_pipe(
        self,
        pipe: str,
        has_wait: bool,
        profile: WorkloadProfile,
        rng: random.Random,
        num_registers: int,
    ) -> List[Instruction]:
        stream: List[Instruction] = []
        last_written: Optional[int] = None
        for _ in range(profile.length):
            roll = rng.random()
            if roll < profile.bubble_rate:
                stream.append(bubble(pipe))
                continue
            roll -= profile.bubble_rate
            if has_wait and roll < profile.wait_rate:
                stream.append(wait(pipe, rng.randint(1, profile.max_wait_cycles)))
                continue
            roll -= profile.wait_rate if has_wait else 0.0
            src = self._pick_source(rng, profile, last_written, num_registers)
            if roll < profile.store_rate:
                stream.append(store(pipe, src if src is not None else rng.randrange(num_registers)))
                continue
            dst = rng.randrange(num_registers)
            stream.append(alu(pipe, dst=dst, src=src))
            last_written = dst
        return stream

    def _pick_source(
        self,
        rng: random.Random,
        profile: WorkloadProfile,
        last_written: Optional[int],
        num_registers: int,
    ) -> Optional[int]:
        if last_written is not None and rng.random() < profile.dependency_rate:
            return last_written
        if rng.random() < 0.5:
            return rng.randrange(num_registers)
        return None


def dependent_chain(
    pipe: str,
    length: int,
    register: int = 0,
    spread: int = 1,
    num_registers: int = 8,
) -> List[Instruction]:
    """A chain where each instruction reads the register the previous one wrote.

    With ``spread == 1`` every instruction depends on its immediate
    predecessor — the worst case for issue stalls, and the clearest
    demonstration of the completion-bus bypass.
    """
    if length < 1:
        raise ValueError("chain length must be at least 1")
    stream: List[Instruction] = []
    previous_dst = register % num_registers
    for index in range(length):
        dst = (register + (index + 1) * spread) % num_registers
        stream.append(alu(pipe, dst=dst, src=previous_dst))
        previous_dst = dst
    return stream


def independent_stream(pipe: str, length: int, num_registers: int = 8) -> List[Instruction]:
    """Writeback instructions with no mutual dependencies (pure bus pressure)."""
    return [alu(pipe, dst=index % num_registers) for index in range(length)]


def wait_stream(pipe: str, length: int, wait_every: int = 4, wait_cycles: int = 2) -> List[Instruction]:
    """A stream punctuated by explicit WAIT instructions."""
    stream: List[Instruction] = []
    for index in range(length):
        if wait_every and index % wait_every == wait_every - 1:
            stream.append(wait(pipe, wait_cycles))
        else:
            stream.append(alu(pipe, dst=index % 8))
    return stream


def completion_contention_program(architecture: Architecture, length: int = 64) -> Program:
    """Independent writeback instructions in every pipe of every bus.

    Maximises completion-bus contention so the difference between the
    maximum-performance and the conservative completion interlock is
    clearly visible (the paper's completion-redesign result).
    """
    num_registers = (
        architecture.scoreboard.num_registers if architecture.scoreboard else 8
    )
    streams = {
        pipe.name: independent_stream(pipe.name, length, num_registers)
        for pipe in architecture.pipes
    }
    return Program(streams=streams)
