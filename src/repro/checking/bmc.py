"""Bounded model checking of sequential interlock behaviour.

The combinational property checker (:mod:`repro.checking.property_check`)
covers steady-state behaviour, but the class of defect the paper reports
finding alongside the unnecessary stalls — "incorrect initialisation values
of control signals" — is inherently sequential: the interlock misbehaves
only for the first few cycles after reset.

This module unrolls an interlock model over the first *k* cycles with a
fresh copy of every control input per cycle and proves (or refutes, with a
cycle-stamped counterexample) the functional and performance claims at
every cycle up to the bound.  For reset-value bugs a small bound — the
pipeline depth plus the length of the forced-reset window — is exhaustive,
which is exactly the situation bounded model checking is good at.

Models
------

* :class:`CombinationalModel` — a closed-form interlock; its outputs do not
  depend on the cycle index (BMC then coincides with the combinational
  check, cycle by cycle).
* :class:`StuckResetModel` — wraps a base model but forces chosen moe flags
  to fixed values for the first ``cycles`` cycles, mirroring
  :class:`repro.pipeline.interlock.StuckResetInterlock`.
* :class:`RegisteredGrantModel` — completion-stage grants are only honoured
  when the request was already pending in the previous cycle, mirroring
  :class:`repro.pipeline.interlock.ConservativeCompletionInterlock`; this
  model has genuine cross-cycle dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd.expr_to_bdd import ExprBddContext
from ..expr.ast import And, Expr, FALSE, Implies, Not, TRUE, Var
from ..expr.builders import big_and
from ..expr.transform import rename, simplify, substitute
from ..pipeline.structure import Architecture
from ..sat.interface import check_valid
from ..spec.functional import FunctionalSpec

__all__ = [
    "timed_name",
    "CombinationalModel",
    "StuckResetModel",
    "RegisteredGrantModel",
    "BmcViolation",
    "BmcResult",
    "BoundedModelChecker",
]


def timed_name(signal: str, cycle: int) -> str:
    """The timed copy of a signal name at a given cycle."""
    return f"{signal}@{cycle}"


def _as_expr(obligation) -> Expr:
    """Coerce an obligation to an expression.

    The unroller works on per-cycle *renamed copies* of each formula, which
    is an expression-level operation; a
    :class:`~repro.symbolic.SymbolicFunction` obligation therefore
    materializes here — once, as its minimized ISOP cover (cached in its
    context) — and every timed copy is a rename of that small cover instead
    of the raw substitution residue the expression pipeline used to carry.
    """
    to_expr = getattr(obligation, "to_expr", None)
    if to_expr is not None:
        return to_expr()
    return obligation


def _timed(expr: Expr, cycle: int) -> Expr:
    """Rename every variable of ``expr`` to its timed copy at ``cycle``."""
    mapping = {name: timed_name(name, cycle) for name in expr.variables()}
    return rename(expr, mapping)


class CombinationalModel:
    """A stateless interlock model: the same moe equations every cycle.

    Accepts plain expressions or
    :class:`~repro.symbolic.SymbolicFunction` closed forms per moe flag;
    symbolic obligations materialize once as minimized covers.
    """

    def __init__(self, expressions: Mapping[str, Expr], name: str = "combinational"):
        self.name = name
        self._expressions = {
            moe: _as_expr(expression) for moe, expression in expressions.items()
        }

    @classmethod
    def from_derivation(cls, derivation, name: Optional[str] = None) -> "CombinationalModel":
        """The model of a fixed-point derivation's closed forms."""
        source = (
            derivation.moe_functions
            if derivation.moe_functions is not None
            else derivation.moe_expressions
        )
        return cls(source, name=name or f"derived({derivation.spec.name})")

    def moe_flags(self) -> List[str]:
        """The moe flags the model drives."""
        return list(self._expressions)

    def outputs_at(self, cycle: int) -> Dict[str, Expr]:
        """Timed moe equations for one cycle (over that cycle's inputs)."""
        return {moe: _timed(expr, cycle) for moe, expr in self._expressions.items()}


class StuckResetModel:
    """A model whose chosen flags are forced to constants right after reset."""

    def __init__(
        self,
        base: CombinationalModel,
        forced_values: Mapping[str, bool],
        cycles: int,
        name: Optional[str] = None,
    ):
        self.base = base
        self.forced_values = dict(forced_values)
        self.cycles = cycles
        self.name = name or f"stuck-reset({base.name})"

    def moe_flags(self) -> List[str]:
        """The moe flags the model drives."""
        return self.base.moe_flags()

    def outputs_at(self, cycle: int) -> Dict[str, Expr]:
        """Timed moe equations; forced flags are constant before ``cycles``."""
        outputs = self.base.outputs_at(cycle)
        if cycle < self.cycles:
            for moe, value in self.forced_values.items():
                outputs[moe] = TRUE if value else FALSE
        return outputs


class RegisteredGrantModel:
    """Completion grants are only honoured for requests pending a cycle earlier.

    For every completion stage the base equation's grant signal ``p.gnt`` is
    strengthened to ``p.gnt ∧ p.req@previous-cycle``; in cycle 0 no request
    can have been registered, so the stage behaves as if never granted.
    """

    def __init__(
        self,
        base: CombinationalModel,
        architecture: Architecture,
        name: Optional[str] = None,
    ):
        self.base = base
        self.architecture = architecture
        self.name = name or f"registered-grant({base.name})"

    def moe_flags(self) -> List[str]:
        """The moe flags the model drives."""
        return self.base.moe_flags()

    def outputs_at(self, cycle: int) -> Dict[str, Expr]:
        """Timed moe equations with the registered-request grant qualification."""
        outputs = self.base.outputs_at(cycle)
        from ..pipeline import signals as sig

        for pipe in self.architecture.pipes:
            if pipe.completion_bus is None:
                continue
            grant = timed_name(sig.gnt_name(pipe.name), cycle)
            if cycle == 0:
                effective: Expr = FALSE
            else:
                effective = Var(grant) & Var(timed_name(sig.req_name(pipe.name), cycle - 1))
            for moe, expression in outputs.items():
                if grant in expression.variables():
                    outputs[moe] = substitute(expression, {grant: effective})
        return outputs


@dataclass
class BmcViolation:
    """One refuted claim: which stage, which cycle, which kind, and a witness."""

    cycle: int
    moe: str
    kind: str
    counterexample: Dict[str, bool] = field(default_factory=dict)

    def witness_at(self, cycle: int) -> Dict[str, bool]:
        """The slice of the counterexample belonging to one cycle."""
        suffix = f"@{cycle}"
        return {
            name[: -len(suffix)]: value
            for name, value in self.counterexample.items()
            if name.endswith(suffix)
        }

    def describe(self) -> str:
        """Single-line rendering."""
        return f"cycle {self.cycle}: {self.kind} claim for {self.moe} refuted"


@dataclass
class BmcResult:
    """Outcome of a bounded check."""

    model: str
    spec_name: str
    bound: int
    kind: str
    violations: List[BmcViolation] = field(default_factory=list)
    claims_checked: int = 0

    @property
    def holds(self) -> bool:
        """True when no claim up to the bound was refuted."""
        return not self.violations

    def first_violation(self) -> Optional[BmcViolation]:
        """The earliest violation, or None."""
        if not self.violations:
            return None
        return min(self.violations, key=lambda violation: violation.cycle)

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"Bounded {self.kind} check of {self.model} against {self.spec_name} "
            f"(bound {self.bound}, {self.claims_checked} claims):"
        ]
        if self.holds:
            lines.append("  no violation up to the bound")
        else:
            for violation in self.violations:
                lines.append(f"  {violation.describe()}")
        return "\n".join(lines)


class BoundedModelChecker:
    """Unrolls an interlock model and checks the per-cycle claims with SAT."""

    def __init__(
        self,
        spec: FunctionalSpec,
        environment: Optional[Expr] = None,
        stop_at_first: bool = True,
        backend: str = "sat",
    ):
        # SAT is the default: every cycle's claim ranges over fresh timed
        # variables, so the BDD route cannot amortise compilation across
        # cycles and measures several times slower cold.  The "bdd" backend
        # (one fused and_exists sweep per claim, counterexamples from the
        # conjunction BDD) remains available for cache-heavy callers that
        # re-check many models against one specification.
        if backend not in ("bdd", "sat"):
            raise ValueError(f"backend must be 'bdd' or 'sat', got {backend!r}")
        self.spec = spec
        self.environment = _as_expr(environment) if environment is not None else None
        self.stop_at_first = stop_at_first
        self.backend = backend
        # One shared context across all cycles and claims: the timed copies
        # of the environment and the model equations recur from claim to
        # claim, so their compiled BDDs are reused.
        self._context = ExprBddContext() if backend == "bdd" else None

    # -- claim construction -----------------------------------------------------------

    def _claims_at(self, model, cycle: int, kind: str) -> Dict[str, Expr]:
        """The per-stage claims at one cycle, over timed variables."""
        outputs = model.outputs_at(cycle)
        claims: Dict[str, Expr] = {}
        for clause in self.spec.clauses:
            condition = _timed(clause.condition, cycle)
            # Within the condition, other stages' moe flags refer to the
            # implementation's outputs in the same cycle.
            timed_moe = {
                timed_name(moe, cycle): expression for moe, expression in outputs.items()
            }
            condition = substitute(condition, timed_moe)
            output = outputs[clause.moe]
            if kind == "functional":
                claims[clause.moe] = Implies(condition, Not(output))
            elif kind == "performance":
                claims[clause.moe] = Implies(Not(output), condition)
            else:
                raise ValueError(f"unknown claim kind {kind!r}")
        return claims

    def _assumptions_for(self, claim: Expr, cycle: int) -> Expr:
        """Environment assumptions for every cycle the claim actually mentions.

        Replicating the assumptions for all cycles up to the bound would make
        the SAT queries grow quadratically with the bound for no benefit:
        only the cycles whose timed variables occur in the claim can matter.
        """
        if self.environment is None:
            return TRUE
        referenced = {cycle}
        for name in claim.variables():
            _, _, suffix = name.rpartition("@")
            if suffix.isdigit():
                referenced.add(int(suffix))
        return big_and(_timed(self.environment, k) for k in sorted(referenced))

    def _decide(self, assumptions: Expr, claim: Expr) -> Tuple[bool, Optional[Dict[str, bool]]]:
        """Decide validity of ``assumptions → claim``; a witness refutes it."""
        if self.backend == "bdd":
            context = self._context
            manager = context.manager
            assumption_node = context.compile(assumptions)
            refutation = manager.not_(context.compile(claim))
            # Valid iff assumptions ∧ ¬claim is unsatisfiable — one fused
            # relational-product sweep over every declared variable.
            witness = manager.and_exists(
                assumption_node, refutation, manager.variable_order()
            )
            if witness == manager.false():
                return True, None
            return False, manager.pick_one(manager.and_(assumption_node, refutation))
        decision = check_valid(simplify(Implies(assumptions, claim)))
        if decision.answer:
            return True, None
        return False, decision.model or {}

    # -- checking ----------------------------------------------------------------------------

    def check(self, model, bound: int, kind: str) -> BmcResult:
        """Check every per-stage claim of one kind at every cycle up to ``bound``."""
        result = BmcResult(
            model=getattr(model, "name", type(model).__name__),
            spec_name=self.spec.name,
            bound=bound,
            kind=kind,
        )
        for cycle in range(bound):
            for moe, claim in self._claims_at(model, cycle, kind).items():
                result.claims_checked += 1
                assumptions = self._assumptions_for(claim, cycle)
                holds, counterexample = self._decide(assumptions, claim)
                if holds:
                    continue
                result.violations.append(
                    BmcViolation(
                        cycle=cycle,
                        moe=moe,
                        kind=kind,
                        counterexample=counterexample or {},
                    )
                )
                if self.stop_at_first:
                    return result
        return result

    def check_functional(self, model, bound: int) -> BmcResult:
        """Bounded check of the functional claims (no missing stalls)."""
        return self.check(model, bound, "functional")

    def check_performance(self, model, bound: int) -> BmcResult:
        """Bounded check of the performance claims (no unnecessary stalls)."""
        return self.check(model, bound, "performance")
