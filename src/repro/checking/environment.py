"""Environment assumptions for property checking.

The interlock's primary inputs are not free: the surrounding hardware
guarantees, for example, that a completion-bus grant is only given to a
requesting pipe and that the one-hot register-address indicators are indeed
one-hot.  Property checking without these assumptions reports spurious
counterexamples in unreachable input combinations, so the checker conjoins
them as antecedents (``assumptions → property``).

All assumptions are derived from the architecture description alone; they
correspond to the behaviour of the simulator's arbiter, scoreboard and
instruction decoder.
"""

from __future__ import annotations

from typing import List

from ..expr.ast import Expr, Var
from ..expr.builders import at_most_one, big_and
from ..pipeline import signals as sig
from ..pipeline.arbitration import (
    arbitration_environment_assumptions,
    work_conserving_assumption,
)
from ..pipeline.structure import Architecture


def grant_assumptions(architecture: Architecture, work_conserving: bool = True) -> List[Expr]:
    """Arbitration sanity: grants answer requests, one grant per bus."""
    assumptions: List[Expr] = []
    for bus in architecture.buses:
        assumptions.extend(arbitration_environment_assumptions(bus))
        if work_conserving:
            assumptions.append(work_conserving_assumption(bus))
    return assumptions


def bus_target_assumptions(architecture: Architecture) -> List[Expr]:
    """Completion-target indicators are one-hot and only valid with a grant."""
    assumptions: List[Expr] = []
    if architecture.scoreboard is None:
        return assumptions
    num_registers = architecture.scoreboard.num_registers
    for bus in architecture.buses:
        indicators = [
            Var(sig.bus_target_indicator(bus.name, address))
            for address in range(num_registers)
        ]
        assumptions.append(at_most_one(indicators))
        any_grant = None
        for pipe in bus.priority:
            grant = Var(sig.gnt_name(pipe))
            any_grant = grant if any_grant is None else (any_grant | grant)
        if any_grant is not None:
            for indicator in indicators:
                assumptions.append(indicator.implies(any_grant))
    return assumptions


def issue_register_assumptions(architecture: Architecture) -> List[Expr]:
    """Issue-stage register-address indicators are one-hot per selector."""
    assumptions: List[Expr] = []
    if architecture.scoreboard is None:
        return assumptions
    num_registers = architecture.scoreboard.num_registers
    for pipe in architecture.pipes:
        for which in ("src", "dst"):
            indicators = [
                Var(sig.stage_regaddr_indicator(pipe.name, 1, which, address))
                for address in range(num_registers)
            ]
            assumptions.append(at_most_one(indicators))
    return assumptions


def request_assumptions(architecture: Architecture) -> List[Expr]:
    """A completion request implies the completion stage has content to move.

    The simulator only raises ``p.req`` when the completion stage holds a
    writeback instruction, in which case that stage's rtm flag is also set.
    """
    assumptions: List[Expr] = []
    for pipe in architecture.pipes:
        if pipe.completion_bus is None:
            continue
        request = Var(sig.req_name(pipe.name))
        completion_rtm = Var(pipe.completion_stage.rtm)
        assumptions.append(request.implies(completion_rtm))
    return assumptions


def environment_assumptions(
    architecture: Architecture,
    work_conserving: bool = True,
    include_requests: bool = True,
) -> List[Expr]:
    """All environment assumptions for an architecture."""
    assumptions: List[Expr] = []
    assumptions.extend(grant_assumptions(architecture, work_conserving))
    assumptions.extend(bus_target_assumptions(architecture))
    assumptions.extend(issue_register_assumptions(architecture))
    if include_requests:
        assumptions.extend(request_assumptions(architecture))
    return assumptions


def environment_formula(
    architecture: Architecture,
    work_conserving: bool = True,
    include_requests: bool = True,
) -> Expr:
    """The conjunction of every environment assumption."""
    return big_and(
        environment_assumptions(architecture, work_conserving, include_requests)
    )
