"""Exhaustive and randomised simulation campaigns.

Section 4 of the paper contrasts the two verification routes for the same
specification: testbench assertions during (non-exhaustive) simulation, and
exhaustive property checking.  This module provides the simulation side of
that comparison as a reusable harness:

* :func:`random_simulation_campaign` — run N randomly generated programs
  with the assertion monitor armed, reporting whether anything fired;
* :func:`exhaustive_program_campaign` — enumerate *every* program of a
  bounded length over a small instruction alphabet (useful to show that
  short exhaustive simulation still misses input corners the property
  checker covers, because the reachable input space of a short program is a
  strict subset of the combinational input space).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..assertions.generate import Assertion
from ..assertions.monitor import AssertionMonitor, MonitorReport
from ..pipeline.instructions import Instruction, Program
from ..pipeline.interlock import Interlock
from ..pipeline.simulator import PipelineSimulator, SimulatorConfig
from ..pipeline.structure import Architecture
from ..workloads.generators import WorkloadGenerator, WorkloadProfile


@dataclass
class CampaignResult:
    """Aggregate outcome of a simulation campaign."""

    programs_run: int = 0
    cycles_simulated: int = 0
    functional_violations: int = 0
    performance_violations: int = 0
    hazards: int = 0
    first_failing_program: Optional[int] = None
    reports: List[MonitorReport] = field(default_factory=list)

    @property
    def any_violation(self) -> bool:
        """Did any assertion fire in any program?"""
        return bool(self.functional_violations or self.performance_violations)

    def describe(self) -> str:
        """Multi-line summary."""
        lines = [
            "Simulation campaign:",
            f"  programs run:            {self.programs_run}",
            f"  cycles simulated:        {self.cycles_simulated}",
            f"  functional violations:   {self.functional_violations}",
            f"  performance violations:  {self.performance_violations}",
            f"  physical hazards:        {self.hazards}",
        ]
        if self.first_failing_program is not None:
            lines.append(f"  first failing program:   #{self.first_failing_program}")
        return "\n".join(lines)


def _run_one(
    architecture: Architecture,
    interlock: Interlock,
    monitor: AssertionMonitor,
    program: Program,
    config: Optional[SimulatorConfig],
    result: CampaignResult,
    index: int,
    keep_reports: bool,
) -> None:
    from ..assertions.generate import AssertionKind

    simulator = PipelineSimulator(architecture, interlock, config)
    trace = simulator.run(program)
    report = monitor.check_trace(trace)
    result.programs_run += 1
    result.cycles_simulated += trace.num_cycles()
    result.hazards += trace.hazard_count()
    functional = report.violation_count(AssertionKind.FUNCTIONAL)
    performance = report.violation_count(AssertionKind.PERFORMANCE)
    result.functional_violations += functional
    result.performance_violations += performance
    if (functional or performance) and result.first_failing_program is None:
        result.first_failing_program = index
    if keep_reports:
        result.reports.append(report)


def random_simulation_campaign(
    architecture: Architecture,
    interlock: Interlock,
    assertions: Sequence[Assertion],
    num_programs: int = 10,
    profile: Optional[WorkloadProfile] = None,
    seed: int = 0,
    config: Optional[SimulatorConfig] = None,
    keep_reports: bool = False,
) -> CampaignResult:
    """Run randomly generated programs with the assertion monitor armed."""
    result = CampaignResult()
    profile = profile or WorkloadProfile()
    # One monitor for the whole campaign: the assertion formulas are
    # compiled to bit-parallel evaluators once and reused on every program.
    monitor = AssertionMonitor(assertions)
    for index in range(num_programs):
        generator = WorkloadGenerator(architecture, seed=seed + index)
        program = generator.generate(profile)
        _run_one(
            architecture, interlock, monitor, program, config, result, index, keep_reports
        )
    return result


def exhaustive_program_campaign(
    architecture: Architecture,
    interlock: Interlock,
    assertions: Sequence[Assertion],
    alphabet: Dict[str, Sequence[Instruction]],
    length: int,
    config: Optional[SimulatorConfig] = None,
    max_programs: Optional[int] = None,
    keep_reports: bool = False,
) -> CampaignResult:
    """Enumerate every per-pipe program of the given length over an alphabet.

    ``alphabet`` maps each pipe name to the candidate instructions for one
    issue slot; the campaign runs the cartesian product of slot choices for
    every pipe.  The number of programs grows as ``prod(len(alphabet[p]))**length``
    — keep the alphabet and length small.
    """
    result = CampaignResult()
    pipes = list(alphabet)
    monitor = AssertionMonitor(assertions)
    per_slot_choices: List[List[tuple]] = []
    for _ in range(length):
        per_slot_choices.append(list(itertools.product(*(alphabet[pipe] for pipe in pipes))))
    index = 0
    for combination in itertools.product(*per_slot_choices):
        if max_programs is not None and index >= max_programs:
            break
        streams: Dict[str, List[Instruction]] = {pipe: [] for pipe in pipes}
        for slot in combination:
            for pipe, instruction in zip(pipes, slot):
                streams[pipe].append(instruction.copy())
        program = Program(streams=streams)
        _run_one(
            architecture, interlock, monitor, program, config, result, index, keep_reports
        )
        index += 1
    return result
