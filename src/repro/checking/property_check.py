"""Formal property checking of interlock implementations against specifications.

This is the "more thorough approach" of Section 4: instead of relying on a
testbench triggering an assertion, the closed-form interlock implementation
is substituted into the specification and validity is decided exhaustively
over the whole control-input space — with BDDs or with the SAT solver.

The checker answers three questions for a combinational implementation:

* does it satisfy the **functional** specification (no missing stalls)?
* does it satisfy the **performance** specification (no unnecessary stalls)?
* is it **equivalent** to the unique maximum-performance implementation?

Counterexamples are returned as concrete input valuations that a testbench
could replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..bdd.expr_to_bdd import ExprBddContext
from ..expr.ast import Expr, Not, Var
from ..expr.builders import big_and
from ..expr.transform import substitute
from ..pipeline.interlock import ClosedFormInterlock
from ..pipeline.structure import Architecture
from ..sat.interface import check_valid
from ..spec.derivation import symbolic_most_liberal
from ..spec.functional import FunctionalSpec
from ..symbolic import SymbolicFunction
from .environment import environment_formula


@dataclass
class PropertyResult:
    """Outcome of checking one per-stage property."""

    name: str
    moe: str
    holds: bool
    counterexample: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        """Single-line rendering."""
        status = "proved" if self.holds else "FAILED"
        return f"{self.name} [{self.moe}]: {status}"


@dataclass
class CheckReport:
    """All property results for one implementation."""

    implementation: str
    spec_name: str
    backend: str
    results: List[PropertyResult] = field(default_factory=list)

    def all_hold(self) -> bool:
        """True when every checked property was proved."""
        return all(result.holds for result in self.results)

    def failures(self) -> List[PropertyResult]:
        """The properties that failed, with counterexamples."""
        return [result for result in self.results if not result.holds]

    def failing_stages(self) -> List[str]:
        """Moe flags whose properties failed."""
        return sorted({result.moe for result in self.failures()})

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"Property check of {self.implementation} against {self.spec_name} "
            f"({self.backend} backend):"
        ]
        lines.extend(f"  {result.describe()}" for result in self.results)
        verdict = "all properties proved" if self.all_hold() else (
            f"{len(self.failures())} propert(ies) failed"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


class PropertyChecker:
    """Checks closed-form interlock implementations exhaustively."""

    def __init__(
        self,
        spec: FunctionalSpec,
        architecture: Optional[Architecture] = None,
        use_environment: bool = True,
        backend: str = "bdd",
    ):
        if backend not in ("bdd", "sat"):
            raise ValueError(f"backend must be 'bdd' or 'sat', got {backend!r}")
        self.spec = spec
        self.backend = backend
        self.architecture = architecture or spec.metadata.get("architecture")
        if use_environment and self.architecture is not None:
            self.environment = environment_formula(self.architecture)
        else:
            self.environment = None
        # One shared BDD context per checker: the environment formula, the
        # specification conditions and the derived moe equations are compiled
        # once and reused across every claim (a campaign may prove hundreds).
        self._context = ExprBddContext() if backend == "bdd" else None
        self._derivation = None

    # -- helpers --------------------------------------------------------------------

    def _implementation_map(self, interlock: ClosedFormInterlock) -> Dict[str, Expr]:
        expressions = interlock.expressions()
        missing = set(self.spec.moe_flags()) - set(expressions)
        if missing:
            raise ValueError(
                f"implementation {interlock.name!r} drives no expression for "
                f"{sorted(missing)}"
            )
        return expressions

    def _derived_expressions(self) -> Dict[str, Expr]:
        """The derived maximum-performance moe equations, computed once."""
        if self._derivation is None:
            self._derivation = symbolic_most_liberal(self.spec)
        return self._derivation.moe_expressions

    def _prove(self, claim) -> (bool, Optional[Dict[str, bool]]):
        """Prove one obligation under the environment assumptions.

        ``claim`` may be an :class:`~repro.expr.ast.Expr` or a
        :class:`~repro.symbolic.SymbolicFunction`.  A symbolic obligation is
        decided in *its* context — the environment formula is lifted into
        that context (cached there across claims) and no expression is ever
        materialized; only the SAT backend needs a materialized form.
        """
        if isinstance(claim, SymbolicFunction):
            if self.backend == "bdd":
                manager = claim.context.manager
                node = claim.node
                if self.environment is not None:
                    environment_node = claim.context.lift(self.environment).node
                    node = manager.implies(environment_node, node)
                if manager.is_true(node):
                    return True, None
                return False, manager.pick_one(manager.not_(node))
            claim = claim.to_expr()
        if self.backend == "bdd":
            manager = self._context.manager
            node = self._context.compile(claim)
            if self.environment is not None:
                environment_node = self._context.compile(self.environment)
                node = manager.implies(environment_node, node)
            if manager.is_true(node):
                return True, None
            return False, manager.pick_one(manager.not_(node))
        if self.environment is not None:
            claim = self.environment.implies(claim)
        decision = check_valid(claim)
        if decision.answer:
            return True, None
        return False, decision.model

    def _prove_equivalence(self, left: Expr, right: Expr) -> (bool, Optional[Dict[str, bool]]):
        """Prove ``left ↔ right`` (under the environment) without an iff BDD.

        ``env → (left ↔ right)`` is valid exactly when ``env ∧ left`` and
        ``env ∧ right`` are the same function — a pointer comparison after
        two conjunctions, instead of the much larger iff product.  On
        failure a differing assignment is recovered by walking the two
        conjunction DAGs in lock step.
        """
        if self.backend != "bdd":
            return self._prove(left.iff(right))
        manager = self._context.manager
        left_node = self._context.compile(left)
        right_node = self._context.compile(right)
        if self.environment is not None:
            environment_node = self._context.compile(self.environment)
            left_node = manager.and_(environment_node, left_node)
            right_node = manager.and_(environment_node, right_node)
        if left_node == right_node:
            return True, None
        return False, manager.find_difference(left_node, right_node)

    # -- checks ------------------------------------------------------------------------

    def check_functional(self, interlock: ClosedFormInterlock) -> CheckReport:
        """Prove, per stage, that the implementation never misses a required stall."""
        implementation = self._implementation_map(interlock)
        report = CheckReport(
            implementation=interlock.name, spec_name=self.spec.name, backend=self.backend
        )
        for clause in self.spec.clauses:
            condition = substitute(clause.condition, implementation)
            claim = condition.implies(Not(implementation[clause.moe]))
            holds, counterexample = self._prove(claim)
            report.results.append(
                PropertyResult(
                    name=f"functional::{clause.label or clause.moe}",
                    moe=clause.moe,
                    holds=holds,
                    counterexample=counterexample,
                )
            )
        return report

    def check_performance(self, interlock: ClosedFormInterlock) -> CheckReport:
        """Prove, per stage, that the implementation never stalls unnecessarily."""
        implementation = self._implementation_map(interlock)
        report = CheckReport(
            implementation=interlock.name, spec_name=self.spec.name, backend=self.backend
        )
        for clause in self.spec.clauses:
            condition = substitute(clause.condition, implementation)
            claim = Not(implementation[clause.moe]).implies(condition)
            holds, counterexample = self._prove(claim)
            report.results.append(
                PropertyResult(
                    name=f"performance::{clause.label or clause.moe}",
                    moe=clause.moe,
                    holds=holds,
                    counterexample=counterexample,
                )
            )
        return report

    def check_combined(self, interlock: ClosedFormInterlock) -> CheckReport:
        """Prove both halves at once (``condition ↔ ¬moe`` per stage)."""
        implementation = self._implementation_map(interlock)
        report = CheckReport(
            implementation=interlock.name, spec_name=self.spec.name, backend=self.backend
        )
        for clause in self.spec.clauses:
            condition = substitute(clause.condition, implementation)
            holds, counterexample = self._prove_equivalence(
                condition, Not(implementation[clause.moe])
            )
            report.results.append(
                PropertyResult(
                    name=f"combined::{clause.label or clause.moe}",
                    moe=clause.moe,
                    holds=holds,
                    counterexample=counterexample,
                )
            )
        return report

    def check_equivalence_with_derived(self, interlock: ClosedFormInterlock) -> CheckReport:
        """Prove the implementation equals the derived maximum-performance interlock."""
        implementation = self._implementation_map(interlock)
        report = CheckReport(
            implementation=interlock.name,
            spec_name=f"derived({self.spec.name})",
            backend=self.backend,
        )
        for moe, derived_expression in self._derived_expressions().items():
            holds, counterexample = self._prove_equivalence(
                implementation[moe], derived_expression
            )
            report.results.append(
                PropertyResult(
                    name=f"equivalence::{moe}", moe=moe, holds=holds, counterexample=counterexample
                )
            )
        return report

    def check_obligations(
        self,
        obligations: Mapping[str, object],
        name: str = "obligation",
    ) -> CheckReport:
        """Prove a set of per-stage obligations handed over as functions.

        Layers that already hold canonical BDD artefacts — the derivation's
        per-stage claims, refinement conditions built with
        :class:`~repro.symbolic.SymbolicFunction` arithmetic — pass them
        directly, keyed by moe flag; plain expressions are accepted too.
        With the BDD backend a symbolic obligation is decided in its own
        context under the checker's environment assumptions, without
        materializing any expression.
        """
        report = CheckReport(
            implementation=name, spec_name=self.spec.name, backend=self.backend
        )
        for moe, claim in obligations.items():
            holds, counterexample = self._prove(claim)
            report.results.append(
                PropertyResult(
                    name=f"{name}::{moe}",
                    moe=moe,
                    holds=holds,
                    counterexample=counterexample,
                )
            )
        return report


def check_implementation(
    spec: FunctionalSpec,
    interlock: ClosedFormInterlock,
    architecture: Optional[Architecture] = None,
    backend: str = "bdd",
) -> Dict[str, CheckReport]:
    """Run the functional, performance and combined checks in one call."""
    checker = PropertyChecker(spec, architecture=architecture, backend=backend)
    return {
        "functional": checker.check_functional(interlock),
        "performance": checker.check_performance(interlock),
        "combined": checker.check_combined(interlock),
    }
