"""Formal property checking (combinational and bounded) and simulation campaigns."""

from .bmc import (
    BmcResult,
    BmcViolation,
    BoundedModelChecker,
    CombinationalModel,
    RegisteredGrantModel,
    StuckResetModel,
    timed_name,
)
from .environment import (
    bus_target_assumptions,
    environment_assumptions,
    environment_formula,
    grant_assumptions,
    issue_register_assumptions,
    request_assumptions,
)
from .exhaustive import (
    CampaignResult,
    exhaustive_program_campaign,
    random_simulation_campaign,
)
from .property_check import (
    CheckReport,
    PropertyChecker,
    PropertyResult,
    check_implementation,
)

__all__ = [
    "BmcResult",
    "BmcViolation",
    "BoundedModelChecker",
    "CombinationalModel",
    "RegisteredGrantModel",
    "StuckResetModel",
    "timed_name",
    "bus_target_assumptions",
    "environment_assumptions",
    "environment_formula",
    "grant_assumptions",
    "issue_register_assumptions",
    "request_assumptions",
    "CampaignResult",
    "exhaustive_program_campaign",
    "random_simulation_campaign",
    "CheckReport",
    "PropertyChecker",
    "PropertyResult",
    "check_implementation",
]
