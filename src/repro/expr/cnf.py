"""Conversion of expressions to conjunctive normal form.

Two converters are provided:

* :func:`to_cnf_clauses` — Tseitin encoding producing an equisatisfiable
  clause set over integer literals, suitable for the SAT solver in
  :mod:`repro.sat`.
* :func:`distribute_to_cnf` — semantic-preserving distribution (exponential
  in the worst case), used only for small formulas and for emitting
  readable assertion text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var
from .transform import eliminate_derived, to_nnf

Clause = Tuple[int, ...]


@dataclass
class CnfResult:
    """Result of a Tseitin conversion.

    Attributes:
        clauses: list of clauses over integer literals (DIMACS convention:
            positive literal = variable true, negative = false).
        var_ids: mapping from source variable names to positive integers.
        num_vars: total variable count including auxiliary Tseitin variables.
        root: the literal asserting the whole formula (already added as a
            unit clause).
    """

    clauses: List[Clause] = field(default_factory=list)
    var_ids: Dict[str, int] = field(default_factory=dict)
    num_vars: int = 0
    root: int = 0

    def id_for(self, name: str) -> int:
        """Return the DIMACS id of a named source variable."""
        return self.var_ids[name]


class _TseitinEncoder:
    def __init__(self) -> None:
        self.clauses: List[Clause] = []
        self.var_ids: Dict[str, int] = {}
        self.counter = 0
        self.cache: Dict[Expr, int] = {}

    def fresh(self) -> int:
        self.counter += 1
        return self.counter

    def literal_for_var(self, name: str) -> int:
        if name not in self.var_ids:
            self.var_ids[name] = self.fresh()
        return self.var_ids[name]

    def encode(self, expr: Expr) -> int:
        """Return a literal equivalent to ``expr``, adding defining clauses."""
        if expr in self.cache:
            return self.cache[expr]
        lit = self._encode_uncached(expr)
        self.cache[expr] = lit
        return lit

    def _encode_uncached(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            lit = self.fresh()
            self.clauses.append((lit,) if expr.value else (-lit,))
            return lit
        if isinstance(expr, Var):
            return self.literal_for_var(expr.name)
        if isinstance(expr, Not):
            return -self.encode(expr.operand)
        if isinstance(expr, And):
            lits = [self.encode(op) for op in expr.operands]
            out = self.fresh()
            for lit in lits:
                self.clauses.append((-out, lit))
            self.clauses.append(tuple([out] + [-lit for lit in lits]))
            return out
        if isinstance(expr, Or):
            lits = [self.encode(op) for op in expr.operands]
            out = self.fresh()
            for lit in lits:
                self.clauses.append((out, -lit))
            self.clauses.append(tuple([-out] + lits))
            return out
        if isinstance(expr, (Implies, Iff, Ite)):
            return self.encode(eliminate_derived(expr))
        raise TypeError(f"cannot encode node {type(expr).__name__}")


def to_cnf_clauses(expr: Expr) -> CnfResult:
    """Tseitin-encode ``expr`` into an equisatisfiable CNF."""
    encoder = _TseitinEncoder()
    root = encoder.encode(expr)
    encoder.clauses.append((root,))
    return CnfResult(
        clauses=encoder.clauses,
        var_ids=encoder.var_ids,
        num_vars=encoder.counter,
        root=root,
    )


def distribute_to_cnf(expr: Expr) -> Expr:
    """Semantics-preserving CNF by distributing OR over AND.

    Only safe for small formulas; intended for producing readable clause
    lists in generated assertion comments.
    """
    expr = to_nnf(expr)

    def rec(node: Expr) -> List[List[Expr]]:
        # Represent CNF as a list of clauses, each clause a list of literals.
        if isinstance(node, (Var, Const)) or isinstance(node, Not):
            return [[node]]
        if isinstance(node, And):
            out: List[List[Expr]] = []
            for op in node.operands:
                out.extend(rec(op))
            return out
        if isinstance(node, Or):
            parts = [rec(op) for op in node.operands]
            result: List[List[Expr]] = [[]]
            for clause_set in parts:
                result = [existing + clause for existing in result for clause in clause_set]
            return result
        raise TypeError(f"unexpected NNF node {type(node).__name__}")

    clause_lists = rec(expr)
    clause_exprs = []
    for clause in clause_lists:
        if len(clause) == 1:
            clause_exprs.append(clause[0])
        else:
            clause_exprs.append(Or(*clause))
    if not clause_exprs:
        return Const(True)
    if len(clause_exprs) == 1:
        return clause_exprs[0]
    return And(*clause_exprs)
