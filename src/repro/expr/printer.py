"""Pretty printers for expressions: plain text, paper-style unicode, Verilog, VHDL."""

from __future__ import annotations

from .ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var

# Precedence levels, higher binds tighter.
_PREC = {
    Iff: 1,
    Implies: 2,
    Or: 3,
    And: 4,
    Not: 5,
    Var: 6,
    Const: 6,
    Ite: 1,
}


def _wrap(text: str, child_prec: int, parent_prec: int) -> str:
    return f"({text})" if child_prec < parent_prec else text


def to_text(expr: Expr) -> str:
    """ASCII rendering: ``!``, ``&``, ``|``, ``->``, ``<->``."""
    return _render(expr, {"not": "!", "and": " & ", "or": " | ", "implies": " -> ", "iff": " <-> "})


def to_unicode(expr: Expr) -> str:
    """Paper-style rendering: ``¬``, ``∧``, ``∨``, ``→``, ``↔``."""
    return _render(expr, {"not": "¬", "and": " ∧ ", "or": " ∨ ", "implies": " → ", "iff": " ↔ "})


def to_verilog(expr: Expr) -> str:
    """Verilog expression rendering (identifiers are sanitised by the caller)."""
    return _render(
        expr,
        {"not": "!", "and": " && ", "or": " || ", "implies": None, "iff": None},
        verilog=True,
    )


def to_vhdl(expr: Expr) -> str:
    """VHDL expression rendering over ``std_logic`` operands.

    Implications and equivalences are rewritten into not/or and ``=`` so the
    output is a plain boolean expression; constants become ``'1'``/``'0'``.
    Identifiers are assumed to have been sanitised by the caller (VHDL is
    case-insensitive and forbids ``.`` and ``[]`` like Verilog does).
    """
    return _render(
        expr,
        {"not": "not ", "and": " and ", "or": " or ", "implies": None, "iff": None},
        vhdl=True,
    )


def _render(expr: Expr, symbols, verilog: bool = False, vhdl: bool = False) -> str:
    def nary_part(op: Expr, parent: Expr) -> str:
        """One operand of an And/Or, parenthesised as the dialect requires."""
        text = rec(op)
        if vhdl:
            # VHDL forbids mixing distinct binary logical operators without
            # parentheses, so wrap any compound child of a different class.
            needs_parens = not isinstance(op, (Var, Const, Not, type(parent)))
            return f"({text})" if needs_parens else text
        return _wrap(text, _PREC[type(op)], _PREC[type(parent)])

    def rec(node: Expr) -> str:
        prec = _PREC[type(node)]
        if isinstance(node, Const):
            if verilog:
                return "1'b1" if node.value else "1'b0"
            if vhdl:
                return "'1'" if node.value else "'0'"
            return "True" if node.value else "False"
        if isinstance(node, Var):
            return node.name
        if isinstance(node, Not):
            inner = rec(node.operand)
            inner = _wrap(inner, _PREC[type(node.operand)], prec)
            return f"{symbols['not']}{inner}"
        if isinstance(node, And):
            return symbols["and"].join(nary_part(op, node) for op in node.operands)
        if isinstance(node, Or):
            return symbols["or"].join(nary_part(op, node) for op in node.operands)
        if isinstance(node, Implies):
            if verilog:
                ante = _wrap(rec(node.antecedent), _PREC[type(node.antecedent)], _PREC[Not])
                cons = _wrap(rec(node.consequent), _PREC[type(node.consequent)], _PREC[Or])
                return f"!{ante} || {cons}"
            if vhdl:
                ante = rec(node.antecedent)
                cons = rec(node.consequent)
                return f"(not ({ante})) or ({cons})"
            ante = _wrap(rec(node.antecedent), _PREC[type(node.antecedent)], prec + 1)
            cons = _wrap(rec(node.consequent), _PREC[type(node.consequent)], prec)
            return f"{ante}{symbols['implies']}{cons}"
        if isinstance(node, Iff):
            left = _wrap(rec(node.left), _PREC[type(node.left)], prec + 1)
            right = _wrap(rec(node.right), _PREC[type(node.right)], prec + 1)
            if verilog:
                return f"{left} == {right}"
            if vhdl:
                return f"({rec(node.left)}) = ({rec(node.right)})"
            return f"{left}{symbols['iff']}{right}"
        if isinstance(node, Ite):
            cond = rec(node.cond)
            then = rec(node.then)
            orelse = rec(node.orelse)
            if verilog:
                return f"({cond} ? {then} : {orelse})"
            if vhdl:
                return f"({then}) when ({cond}) else ({orelse})"
            return f"(if {cond} then {then} else {orelse})"
        raise TypeError(f"cannot print node {type(node).__name__}")

    return rec(expr)
