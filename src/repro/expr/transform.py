"""Structural transformations: substitution, NNF, simplification, polarity."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from .ast import (
    And,
    Const,
    Expr,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    Var,
    coerce,
)


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace variables by expressions.

    ``mapping`` maps variable names to replacement expressions (or bools /
    strings, which are coerced).  Substitution is simultaneous, not
    sequential: replacements are not re-substituted.

    Shared sub-expressions are substituted once and the result shares their
    rewritten copies, so repeated substitution (for example the fixed-point
    derivation's candidate chain) stays linear in the DAG size instead of
    exploding with the unfolded tree.
    """
    resolved = {name: coerce(value) for name, value in mapping.items()}
    # Memo keyed by node identity; the node reference is kept in the value
    # so an id() is never reused by a collected temporary mid-walk.
    memo: Dict[int, Tuple[Expr, Expr]] = {}

    def rec(node: Expr) -> Expr:
        entry = memo.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        if isinstance(node, Const):
            result = node
        elif isinstance(node, Var):
            result = resolved.get(node.name, node)
        elif isinstance(node, Not):
            result = Not(rec(node.operand))
        elif isinstance(node, And):
            result = And(*(rec(op) for op in node.operands))
        elif isinstance(node, Or):
            result = Or(*(rec(op) for op in node.operands))
        elif isinstance(node, Implies):
            result = Implies(rec(node.antecedent), rec(node.consequent))
        elif isinstance(node, Iff):
            result = Iff(rec(node.left), rec(node.right))
        elif isinstance(node, Ite):
            result = Ite(rec(node.cond), rec(node.then), rec(node.orelse))
        else:
            raise TypeError(f"cannot substitute into {type(node).__name__}")
        memo[id(node)] = (node, result)
        return result

    return rec(expr)


def rename(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename variables according to a name-to-name mapping."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


def eliminate_derived(expr: Expr) -> Expr:
    """Rewrite IMPLIES / IFF / ITE in terms of NOT / AND / OR."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return Not(eliminate_derived(expr.operand))
    if isinstance(expr, And):
        return And(*(eliminate_derived(op) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(*(eliminate_derived(op) for op in expr.operands))
    if isinstance(expr, Implies):
        return Or(Not(eliminate_derived(expr.antecedent)), eliminate_derived(expr.consequent))
    if isinstance(expr, Iff):
        left = eliminate_derived(expr.left)
        right = eliminate_derived(expr.right)
        return Or(And(left, right), And(Not(left), Not(right)))
    if isinstance(expr, Ite):
        cond = eliminate_derived(expr.cond)
        then = eliminate_derived(expr.then)
        orelse = eliminate_derived(expr.orelse)
        return Or(And(cond, then), And(Not(cond), orelse))
    raise TypeError(f"cannot eliminate derived operators in {type(expr).__name__}")


def to_nnf(expr: Expr) -> Expr:
    """Negation normal form: negation appears only on variables and constants."""
    expr = eliminate_derived(expr)

    def rec(node: Expr, negated: bool) -> Expr:
        if isinstance(node, Const):
            return Const(node.value != negated)
        if isinstance(node, Var):
            return Not(node) if negated else node
        if isinstance(node, Not):
            return rec(node.operand, not negated)
        if isinstance(node, And):
            parts = tuple(rec(op, negated) for op in node.operands)
            return Or(*parts) if negated else And(*parts)
        if isinstance(node, Or):
            parts = tuple(rec(op, negated) for op in node.operands)
            return And(*parts) if negated else Or(*parts)
        raise TypeError(f"unexpected node after eliminate_derived: {type(node).__name__}")

    return rec(expr, False)


def simplify(expr: Expr, _memo: Optional[Dict[int, Tuple[Expr, Expr]]] = None) -> Expr:
    """Light-weight constant folding, idempotence and complement rules.

    This is a syntactic simplifier (no SAT/BDD reasoning); it is enough to
    keep generated specifications and synthesised RTL readable.  Shared
    sub-expressions are simplified once per call (memoised on identity), so
    simplification of substitution DAGs stays linear in their node count.
    """
    if _memo is None:
        _memo = {}
    entry = _memo.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    result = _simplify_node(expr, _memo)
    _memo[id(expr)] = (expr, result)
    return result


def _simplify_node(expr: Expr, _memo: Dict[int, Tuple[Expr, Expr]]) -> Expr:
    def simplify(node: Expr) -> Expr:  # shadow: recurse with the shared memo
        entry = _memo.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        result = _simplify_node(node, _memo)
        _memo[id(node)] = (node, result)
        return result

    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        inner = simplify(expr.operand)
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(expr, And):
        parts = []
        seen = set()
        for op in expr.operands:
            val = simplify(op)
            if isinstance(val, Const):
                if not val.value:
                    return FALSE
                continue
            sub = val.operands if isinstance(val, And) else (val,)
            for item in sub:
                if item in seen:
                    continue
                seen.add(item)
                parts.append(item)
        for item in parts:
            complement = item.operand if isinstance(item, Not) else Not(item)
            if complement in seen:
                return FALSE
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(*parts)
    if isinstance(expr, Or):
        parts = []
        seen = set()
        for op in expr.operands:
            val = simplify(op)
            if isinstance(val, Const):
                if val.value:
                    return TRUE
                continue
            sub = val.operands if isinstance(val, Or) else (val,)
            for item in sub:
                if item in seen:
                    continue
                seen.add(item)
                parts.append(item)
        for item in parts:
            complement = item.operand if isinstance(item, Not) else Not(item)
            if complement in seen:
                return TRUE
        if not parts:
            return FALSE
        if len(parts) == 1:
            return parts[0]
        return Or(*parts)
    if isinstance(expr, Implies):
        ante = simplify(expr.antecedent)
        cons = simplify(expr.consequent)
        if isinstance(ante, Const):
            return cons if ante.value else TRUE
        if isinstance(cons, Const):
            return TRUE if cons.value else simplify(Not(ante))
        if ante == cons:
            return TRUE
        return Implies(ante, cons)
    if isinstance(expr, Iff):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if left == right:
            return TRUE
        if isinstance(left, Const):
            return right if left.value else simplify(Not(right))
        if isinstance(right, Const):
            return left if right.value else simplify(Not(left))
        return Iff(left, right)
    if isinstance(expr, Ite):
        cond = simplify(expr.cond)
        then = simplify(expr.then)
        orelse = simplify(expr.orelse)
        if isinstance(cond, Const):
            return then if cond.value else orelse
        if then == orelse:
            return then
        return Ite(cond, then, orelse)
    raise TypeError(f"cannot simplify {type(expr).__name__}")


def polarity_of_variables(expr: Expr) -> Dict[str, Tuple[bool, bool]]:
    """Compute the polarity with which each variable occurs.

    Returns a mapping from variable name to a pair
    ``(occurs_positively, occurs_negatively)``.  A formula built from a
    variable using only AND / OR (no negation on that variable's path) is
    monotonically non-decreasing in it — the property the paper requires of
    the stall-condition functions ``F`` (Section 3.1).
    """
    expr = eliminate_derived(expr)
    polarities: Dict[str, Tuple[bool, bool]] = {}

    def note(name: str, positive: bool) -> None:
        pos, neg = polarities.get(name, (False, False))
        if positive:
            pos = True
        else:
            neg = True
        polarities[name] = (pos, neg)

    def rec(node: Expr, negated: bool) -> None:
        if isinstance(node, Const):
            return
        if isinstance(node, Var):
            note(node.name, not negated)
            return
        if isinstance(node, Not):
            rec(node.operand, not negated)
            return
        if isinstance(node, (And, Or)):
            for op in node.operands:
                rec(op, negated)
            return
        raise TypeError(f"unexpected node after eliminate_derived: {type(node).__name__}")

    rec(expr, False)
    return polarities


def is_monotone_in(expr: Expr, names) -> bool:
    """Syntactic monotonicity check.

    True when every variable in ``names`` occurs only positively (or not at
    all) in ``expr``.  This is the sufficient condition used by the paper:
    the stall conditions ``F_i`` are built from the *negated* moe flags with
    conjunction and disjunction only, hence monotone in those negated flags.
    """
    polarities = polarity_of_variables(expr)
    for name in names:
        _, negative = polarities.get(name, (False, False))
        if negative:
            return False
    return True
