"""Boolean and finite-domain expression substrate.

This package provides the specification language of the reproduction: an
immutable expression AST (:mod:`repro.expr.ast`), constructors
(:mod:`repro.expr.builders`), evaluation (:mod:`repro.expr.evaluate`),
structural transformations (:mod:`repro.expr.transform`), CNF conversion
(:mod:`repro.expr.cnf`), finite-domain quantification
(:mod:`repro.expr.domains`), a parser (:mod:`repro.expr.parser`) and
printers (:mod:`repro.expr.printer`).
"""

from .ast import (
    And,
    Const,
    Expr,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    Var,
    coerce,
    variables_of,
)
from .builders import (
    at_most_one,
    big_and,
    big_or,
    bit_vector,
    exactly_one,
    nand,
    nor,
    var,
    vars_,
)
from .cnf import CnfResult, distribute_to_cnf, to_cnf_clauses
from .domains import (
    EnumVar,
    FiniteDomain,
    SDREG,
    encode_enum_assignment,
    exists,
    exists_many,
    forall,
    forall_many,
    register_address_domain,
    scoreboard_bit,
)
from .evaluate import (
    UnboundVariableError,
    all_assignments,
    eval_expr,
    is_satisfiable_by_enumeration,
    is_tautology_by_enumeration,
    partial_eval,
)
from .parser import ParseError, parse_expr
from .minimize import (
    Implicant,
    MinimizationResult,
    literal_count,
    minimize_expr,
    minimize_with_care_set,
    term_count,
)
from .printer import to_text, to_unicode, to_verilog, to_vhdl
from .transform import (
    eliminate_derived,
    is_monotone_in,
    polarity_of_variables,
    rename,
    simplify,
    substitute,
    to_nnf,
)

__all__ = [
    "And",
    "Const",
    "Expr",
    "FALSE",
    "Iff",
    "Implies",
    "Ite",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "coerce",
    "variables_of",
    "at_most_one",
    "big_and",
    "big_or",
    "bit_vector",
    "exactly_one",
    "nand",
    "nor",
    "var",
    "vars_",
    "CnfResult",
    "distribute_to_cnf",
    "to_cnf_clauses",
    "EnumVar",
    "FiniteDomain",
    "SDREG",
    "encode_enum_assignment",
    "exists",
    "exists_many",
    "forall",
    "forall_many",
    "register_address_domain",
    "scoreboard_bit",
    "UnboundVariableError",
    "all_assignments",
    "eval_expr",
    "is_satisfiable_by_enumeration",
    "is_tautology_by_enumeration",
    "partial_eval",
    "Implicant",
    "MinimizationResult",
    "literal_count",
    "minimize_expr",
    "minimize_with_care_set",
    "term_count",
    "ParseError",
    "parse_expr",
    "to_text",
    "to_unicode",
    "to_verilog",
    "to_vhdl",
    "eliminate_derived",
    "is_monotone_in",
    "polarity_of_variables",
    "rename",
    "simplify",
    "substitute",
    "to_nnf",
]
