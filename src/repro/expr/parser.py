"""A small recursive-descent parser for the textual specification language.

Grammar (lowest to highest precedence)::

    iff     := implies ( '<->' implies )*
    implies := or ( '->' or )*           (right associative)
    or      := and ( '|' and )*
    and     := not ( '&' not )*
    not     := '!' not | atom
    atom    := 'True' | 'False' | IDENT | '(' iff ')'

Identifiers may contain dots, brackets, digits and ``=`` so that the
pipeline signal names used throughout the library (``long.1.moe``,
``scb[3]``, ``c.regaddr=5``) round-trip through :func:`repro.expr.printer.to_text`.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from .ast import Expr, FALSE, Iff, Implies, Not, TRUE, Var
from .builders import big_and, big_or


class ParseError(ValueError):
    """Raised when the input cannot be parsed."""


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<IFF><->)
  | (?P<IMPLIES>->)
  | (?P<AND>&&?)
  | (?P<OR>\|\|?)
  | (?P<NOT>!|~)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_.\[\]=]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.source!r}")
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r} at offset {token.position}"
            )
        return token

    def parse(self) -> Expr:
        expr = self.parse_iff()
        leftover = self.peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected token {leftover.text!r} at offset {leftover.position}"
            )
        return expr

    def parse_iff(self) -> Expr:
        left = self.parse_implies()
        while self.peek() is not None and self.peek().kind == "IFF":
            self.advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Expr:
        left = self.parse_or()
        if self.peek() is not None and self.peek().kind == "IMPLIES":
            self.advance()
            right = self.parse_implies()  # right associative
            return Implies(left, right)
        return left

    def parse_or(self) -> Expr:
        parts = [self.parse_and()]
        while self.peek() is not None and self.peek().kind == "OR":
            self.advance()
            parts.append(self.parse_and())
        return big_or(parts)

    def parse_and(self) -> Expr:
        parts = [self.parse_not()]
        while self.peek() is not None and self.peek().kind == "AND":
            self.advance()
            parts.append(self.parse_not())
        return big_and(parts)

    def parse_not(self) -> Expr:
        if self.peek() is not None and self.peek().kind == "NOT":
            self.advance()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.advance()
        if token.kind == "LPAREN":
            expr = self.parse_iff()
            self.expect("RPAREN")
            return expr
        if token.kind == "IDENT":
            if token.text == "True":
                return TRUE
            if token.text == "False":
                return FALSE
            return Var(token.text)
        raise ParseError(
            f"expected an atom but found {token.text!r} at offset {token.position}"
        )


def parse_expr(text: str) -> Expr:
    """Parse a textual formula into an :class:`~repro.expr.ast.Expr`."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty input")
    return _Parser(tokens, text).parse()
