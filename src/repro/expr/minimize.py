"""Two-level logic minimisation (Quine–McCluskey) for derived stall conditions.

The closed forms produced by the fixed-point derivation are correct but not
necessarily small: substituting downstream moe flags into upstream stall
conditions duplicates terms, and the synthesiser lowers whatever it is
given.  This module provides a classic exact-prime-implicant /
greedy-cover minimiser that the synthesis optimisation pass
(:mod:`repro.synth.optimize`) applies per moe flag before lowering to
gates.

The minimiser is exact in the prime-implicant generation step and uses
essential-prime selection followed by a greedy cover for the remainder,
which is the usual engineering compromise; for the expression sizes that
occur in interlock control logic (tens of variables per stage, but with
small on-sets once the environment assumptions are applied) this is more
than adequate.

The entry point is :func:`minimize_expr`; :func:`minimize_with_care_set`
additionally accepts a care-set expression so that input combinations ruled
out by the environment assumptions (for example two grants on one
completion bus) can be treated as don't-cares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import And, Const, Expr, FALSE, Not, Or, TRUE, Var
from .builders import big_and, big_or
from .evaluate import all_assignments, eval_expr

__all__ = [
    "Implicant",
    "MinimizationResult",
    "literal_count",
    "term_count",
    "prime_implicants",
    "minimum_cover",
    "minimize_expr",
    "minimize_with_care_set",
]

#: Variable-count guard: enumeration is exponential, and interlock stall
#: conditions beyond this size should be minimised per-disjunct instead.
DEFAULT_MAX_VARIABLES = 14


@dataclass(frozen=True)
class Implicant:
    """A product term over an ordered variable list.

    ``values[i]`` is True for a positive literal of variable *i*, False for
    a negative literal and None when the variable does not appear.
    """

    values: Tuple[Optional[bool], ...]

    @classmethod
    def from_minterm(cls, minterm: int, num_vars: int) -> "Implicant":
        """The implicant covering exactly one minterm (all variables bound)."""
        bits = tuple(bool((minterm >> (num_vars - 1 - i)) & 1) for i in range(num_vars))
        return cls(values=bits)

    def covers(self, minterm: int) -> bool:
        """Does this implicant cover the given minterm index?"""
        num_vars = len(self.values)
        for position, value in enumerate(self.values):
            if value is None:
                continue
            bit = bool((minterm >> (num_vars - 1 - position)) & 1)
            if bit != value:
                return False
        return True

    def combine(self, other: "Implicant") -> Optional["Implicant"]:
        """Merge two implicants differing in exactly one bound position."""
        if len(self.values) != len(other.values):
            return None
        difference = -1
        for position, (mine, theirs) in enumerate(zip(self.values, other.values)):
            if mine == theirs:
                continue
            if mine is None or theirs is None:
                return None
            if difference != -1:
                return None
            difference = position
        if difference == -1:
            return None
        merged = list(self.values)
        merged[difference] = None
        return Implicant(values=tuple(merged))

    def num_literals(self) -> int:
        """Number of bound variables (literals in the product term)."""
        return sum(1 for value in self.values if value is not None)

    def to_expr(self, names: Sequence[str]) -> Expr:
        """Render as an AND of literals (TRUE for the empty product)."""
        literals: List[Expr] = []
        for position, value in enumerate(self.values):
            if value is None:
                continue
            literal: Expr = Var(names[position])
            if not value:
                literal = Not(literal)
            literals.append(literal)
        if not literals:
            return TRUE
        return big_and(literals)


@dataclass
class MinimizationResult:
    """Outcome of one minimisation run."""

    expression: Expr
    implicants: List[Implicant]
    variables: List[str]
    minterm_count: int
    dont_care_count: int

    def literal_count(self) -> int:
        """Total literals over the selected implicants."""
        return sum(implicant.num_literals() for implicant in self.implicants)


def literal_count(expr: Expr) -> int:
    """Number of variable occurrences in an expression (a cost proxy)."""
    count = 0
    for node in expr.walk():
        if isinstance(node, Var):
            count += 1
    return count


def term_count(expr: Expr) -> int:
    """Number of top-level disjuncts (1 for non-Or expressions)."""
    return len(expr.operands) if isinstance(expr, Or) else 1


def _minterms_of(
    expr: Expr, names: Sequence[str], care: Optional[Expr]
) -> Tuple[Set[int], Set[int]]:
    """On-set and don't-care-set minterm indices of ``expr`` over ``names``."""
    on_set: Set[int] = set()
    dont_care: Set[int] = set()
    num_vars = len(names)
    for assignment in all_assignments(names, reuse=True):
        index = 0
        for position, name in enumerate(names):
            if assignment[name]:
                index |= 1 << (num_vars - 1 - position)
        if care is not None and not eval_expr(care, assignment):
            dont_care.add(index)
        elif eval_expr(expr, assignment):
            on_set.add(index)
    return on_set, dont_care


def prime_implicants(minterms: Set[int], num_vars: int) -> List[Implicant]:
    """All prime implicants of the given on-set (plus don't-cares) minterms."""
    if not minterms:
        return []
    current: Set[Implicant] = {
        Implicant.from_minterm(minterm, num_vars) for minterm in minterms
    }
    primes: Set[Implicant] = set()
    while current:
        combined: Set[Implicant] = set()
        used: Set[Implicant] = set()
        current_list = sorted(current, key=lambda imp: imp.values.__repr__())
        for i, first in enumerate(current_list):
            for second in current_list[i + 1:]:
                merged = first.combine(second)
                if merged is not None:
                    combined.add(merged)
                    used.add(first)
                    used.add(second)
        primes.update(implicant for implicant in current if implicant not in used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.num_literals(), repr(imp.values)))


def minimum_cover(primes: List[Implicant], minterms: Set[int]) -> List[Implicant]:
    """Select a small set of primes covering every on-set minterm.

    Essential primes are always selected; the rest of the cover is chosen
    greedily by descending coverage (ties broken towards fewer literals).
    """
    remaining = set(minterms)
    cover: List[Implicant] = []

    # Essential primes: the only prime covering some minterm.
    for minterm in sorted(minterms):
        covering = [prime for prime in primes if prime.covers(minterm)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for prime in cover:
        remaining -= {minterm for minterm in remaining if prime.covers(minterm)}

    # Greedy cover of whatever is left.
    while remaining:
        best = None
        best_key = (-1, 0)
        for prime in primes:
            if prime in cover:
                continue
            covered = sum(1 for minterm in remaining if prime.covers(minterm))
            key = (covered, -prime.num_literals())
            if covered and key > best_key:
                best = prime
                best_key = key
        if best is None:  # pragma: no cover - cannot happen with true primes
            raise RuntimeError("prime implicants do not cover the on-set")
        cover.append(best)
        remaining -= {minterm for minterm in remaining if best.covers(minterm)}
    return cover


def minimize_with_care_set(
    expr: Expr,
    care: Optional[Expr] = None,
    max_vars: int = DEFAULT_MAX_VARIABLES,
) -> MinimizationResult:
    """Minimise ``expr`` treating assignments outside ``care`` as don't-cares.

    Raises ValueError when the support exceeds ``max_vars`` (enumeration
    would be too expensive); callers should fall back to structural
    simplification in that case.
    """
    names = sorted(expr.variables() | (care.variables() if care is not None else frozenset()))
    if len(names) > max_vars:
        raise ValueError(
            f"expression has {len(names)} variables, more than the enumeration "
            f"limit of {max_vars}"
        )
    if not names:
        value = eval_expr(expr, {})
        constant: Expr = TRUE if value else FALSE
        return MinimizationResult(
            expression=constant,
            implicants=[Implicant(values=())] if value else [],
            variables=[],
            minterm_count=1 if value else 0,
            dont_care_count=0,
        )

    on_set, dont_care = _minterms_of(expr, names, care)
    if not on_set:
        return MinimizationResult(
            expression=FALSE,
            implicants=[],
            variables=names,
            minterm_count=0,
            dont_care_count=len(dont_care),
        )
    if len(on_set) + len(dont_care) == 1 << len(names):
        return MinimizationResult(
            expression=TRUE,
            implicants=[Implicant(values=(None,) * len(names))],
            variables=names,
            minterm_count=len(on_set),
            dont_care_count=len(dont_care),
        )

    primes = prime_implicants(on_set | dont_care, len(names))
    cover = minimum_cover(primes, on_set)
    expression = big_or(implicant.to_expr(names) for implicant in cover)
    return MinimizationResult(
        expression=expression,
        implicants=cover,
        variables=names,
        minterm_count=len(on_set),
        dont_care_count=len(dont_care),
    )


def minimize_expr(expr: Expr, max_vars: int = DEFAULT_MAX_VARIABLES) -> Expr:
    """Minimise an expression to a small sum-of-products equivalent."""
    return minimize_with_care_set(expr, care=None, max_vars=max_vars).expression
