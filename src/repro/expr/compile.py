"""Bit-parallel compilation of expressions to machine-word bitwise code.

Brute-force sweeps — tautology checks by enumeration, assertion monitoring
over long traces, coverage scoring — all reduce to evaluating the same
expression under many assignments.  Doing that one assignment at a time
with :func:`repro.expr.evaluate.eval_expr` costs a full tree walk plus a
dictionary lookup per variable per row.

This module compiles an :class:`~repro.expr.ast.Expr` once into a flat
sequence of Python integer bitwise operations (one temporary per distinct
sub-expression, shared sub-expressions evaluated once) and then evaluates
**64 assignments per operation**: assignment *k* lives in bit *k* of every
word, ``&``/``|``/``^`` act on all 64 lanes at once, and negation is an XOR
with the lane mask.  Python's arbitrary-precision integers would allow even
wider words, but 64 keeps every operand in CPython's fast small-big-int
path.

Three layers of API:

* :func:`compile_bitparallel` — the compiler; returns a callable
  :class:`CompiledExpr`.
* :func:`pack_bools` / :meth:`CompiledExpr.evaluate_packed` — bulk
  evaluation over externally supplied rows (simulation traces).
* :func:`bitparallel_tautology` / :func:`bitparallel_satisfiable` /
  :func:`bitparallel_count` / :func:`bitparallel_find_falsifying` —
  exhaustive sweeps over all ``2**n`` assignments of the expression's
  variables.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .ast import And, Const, Expr, Iff, Implies, Ite, Not, Or, Var

WORD_BITS = 64
FULL_MASK = (1 << WORD_BITS) - 1


def tail_mask(num_rows: int, word_index: int) -> int:
    """Mask of the populated lanes in one word of a packed column.

    Every consumer of packed columns (the assertion monitor, the stall
    classifier, the exhaustive sweeps) needs the same tail handling: full
    words carry 64 rows, the last word only ``num_rows % 64``.
    """
    remaining = num_rows - word_index * WORD_BITS
    if remaining >= WORD_BITS:
        return FULL_MASK
    return (1 << remaining) - 1


def iter_set_bits(word: int) -> Iterator[int]:
    """The indexes of the set bits of a word, ascending."""
    while word:
        yield (word & -word).bit_length() - 1
        word &= word - 1

# PATTERNS[i]: the value column of enumeration variable i (i < 6) within one
# 64-assignment word — assignment k has variable i set iff bit i of k is set.
_PATTERNS = [
    sum(1 << b for b in range(WORD_BITS) if (b >> i) & 1) for i in range(6)
]


class CompiledExpr:
    """An expression compiled to a word-level bitwise function.

    Calling the object evaluates one word: ``compiled(values, mask)`` takes
    one integer per variable (in :attr:`names` order), each holding up to 64
    assignments in its bits, plus the mask of populated lanes, and returns
    the result word (bits outside the mask are unspecified).
    """

    __slots__ = ("expr", "names", "_func", "source")

    def __init__(self, expr: Expr, names: Tuple[str, ...], func: Callable, source: str):
        self.expr = expr
        self.names = names
        self._func = func
        self.source = source

    def __call__(self, values: Sequence[int], mask: int = FULL_MASK) -> int:
        return self._func(values, mask)

    def evaluate_one(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate a single assignment (mainly for tests and spot checks)."""
        values = [1 if assignment[name] else 0 for name in self.names]
        return bool(self._func(values, 1) & 1)

    def evaluate_packed(
        self, columns: Mapping[str, Sequence[int]], num_rows: int
    ) -> List[int]:
        """Evaluate ``num_rows`` externally packed rows (see :func:`pack_bools`).

        ``columns`` maps each variable to its packed value words; the result
        is the packed output column.  Bits at and beyond ``num_rows`` in the
        final word are zero.
        """
        func = self._func
        try:
            series = [columns[name] for name in self.names]
        except KeyError as exc:
            raise KeyError(f"no packed column for variable {exc.args[0]!r}") from exc
        num_words = (num_rows + WORD_BITS - 1) // WORD_BITS
        out: List[int] = []
        for word_index in range(num_words):
            mask = tail_mask(num_rows, word_index)
            values = [column[word_index] for column in series]
            out.append(func(values, mask) & mask)
        return out


def compile_bitparallel(expr: Expr, order: Optional[Sequence[str]] = None) -> CompiledExpr:
    """Compile ``expr`` into a :class:`CompiledExpr`.

    ``order`` fixes the variable-to-argument mapping; it must cover every
    variable of the expression.  By default the expression's variables are
    used in sorted order.
    """
    if order is None:
        names: Tuple[str, ...] = tuple(sorted(expr.variables()))
    else:
        names = tuple(order)
        missing = expr.variables() - set(names)
        if missing:
            raise ValueError(f"order is missing variables {sorted(missing)}")
    index_of = {name: position for position, name in enumerate(names)}

    lines: List[str] = []
    memo: Dict[Expr, str] = {}
    used: List[bool] = [False] * len(names)

    def fresh(rhs: str) -> str:
        name = f"t{len(lines)}"
        lines.append(f"    {name} = {rhs}")
        return name

    def rec(node: Expr) -> str:
        ref = memo.get(node)
        if ref is not None:
            return ref
        if isinstance(node, Const):
            ref = "M" if node.value else "0"
        elif isinstance(node, Var):
            position = index_of[node.name]
            used[position] = True
            ref = f"v{position}"
        elif isinstance(node, Not):
            ref = fresh(f"M ^ {rec(node.operand)}")
        elif isinstance(node, And):
            ref = fresh(" & ".join(rec(operand) for operand in node.operands))
        elif isinstance(node, Or):
            ref = fresh(" | ".join(rec(operand) for operand in node.operands))
        elif isinstance(node, Implies):
            antecedent = rec(node.antecedent)
            consequent = rec(node.consequent)
            ref = fresh(f"(M ^ {antecedent}) | {consequent}")
        elif isinstance(node, Iff):
            ref = fresh(f"M ^ ({rec(node.left)} ^ {rec(node.right)})")
        elif isinstance(node, Ite):
            cond = rec(node.cond)
            then = rec(node.then)
            orelse = rec(node.orelse)
            ref = fresh(f"({cond} & {then}) | ((M ^ {cond}) & {orelse})")
        else:
            raise TypeError(f"cannot compile expression node {type(node).__name__}")
        memo[node] = ref
        return ref

    root = rec(expr)
    header = ["def _bitwise(values, M):"]
    header.extend(
        f"    v{position} = values[{position}]"
        for position in range(len(names))
        if used[position]
    )
    source = "\n".join(header + lines + [f"    return {root}"]) + "\n"
    namespace: Dict[str, object] = {}
    exec(compile(source, "<bitparallel>", "exec"), namespace)  # noqa: S102
    return CompiledExpr(expr, names, namespace["_bitwise"], source)


# -- packing -----------------------------------------------------------------------


def pack_bools(values: Iterable[bool]) -> List[int]:
    """Pack a row-major boolean sequence into 64-bit words (row k → bit k%64)."""
    words: List[int] = []
    word = 0
    bit = 0
    for value in values:
        if value:
            word |= 1 << bit
        bit += 1
        if bit == WORD_BITS:
            words.append(word)
            word = 0
            bit = 0
    if bit:
        words.append(word)
    return words


# -- exhaustive sweeps --------------------------------------------------------------


def _enumeration_values(names: Tuple[str, ...], word_index: int) -> List[int]:
    """Per-variable value words for one 64-assignment block.

    Assignment index ``word_index * 64 + b`` assigns variable ``i`` the bit
    ``i`` of that index: the six lowest variables cycle within a word with
    fixed patterns, higher variables are constant per word.
    """
    values: List[int] = []
    for i in range(len(names)):
        if i < 6:
            values.append(_PATTERNS[i])
        else:
            values.append(FULL_MASK if (word_index >> (i - 6)) & 1 else 0)
    return values


def _sweep(expr: Expr) -> Iterable[Tuple[int, int, int]]:
    """Yield ``(word_index, result_word, mask)`` over all assignments."""
    compiled = compile_bitparallel(expr)
    names = compiled.names
    count = len(names)
    if count <= 6:
        mask = (1 << (1 << count)) - 1
        yield 0, compiled(_enumeration_values(names, 0), mask), mask
        return
    for word_index in range(1 << (count - 6)):
        yield word_index, compiled(_enumeration_values(names, word_index), FULL_MASK), FULL_MASK


def bitparallel_tautology(expr: Expr) -> bool:
    """Is ``expr`` true under every assignment of its variables?"""
    return all((result & mask) == mask for _, result, mask in _sweep(expr))


def bitparallel_satisfiable(expr: Expr) -> bool:
    """Is ``expr`` true under at least one assignment of its variables?"""
    return any(result & mask for _, result, mask in _sweep(expr))


def bitparallel_count(expr: Expr) -> int:
    """Number of satisfying assignments over the expression's variables."""
    return sum((result & mask).bit_count() for _, result, mask in _sweep(expr))


def bitparallel_find_falsifying(expr: Expr) -> Optional[Dict[str, bool]]:
    """An assignment falsifying ``expr``, or None when it is a tautology."""
    compiled_names = tuple(sorted(expr.variables()))
    for word_index, result, mask in _sweep(expr):
        failing = (~result) & mask
        if failing:
            bit = next(iter_set_bits(failing))
            index = word_index * WORD_BITS + bit
            return {
                name: bool((index >> i) & 1) for i, name in enumerate(compiled_names)
            }
    return None
