"""Finite-domain layer: enumerated variables, equality atoms and quantifiers.

The paper's specification language quantifies over small finite sets, e.g.::

    ∃ r : SDREG . ∃ a : REGADDRESS .
        p.1.r.regaddr = a  ∧  scb[a]  ∧  c.regaddr ≠ a

This module lowers such formulas to the pure boolean :class:`~repro.expr.ast.Expr`
language by (a) one-hot / binary encoding of enumerated variables and
(b) expanding quantifiers into finite conjunctions and disjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from .ast import Expr, FALSE, TRUE, Var, coerce
from .builders import big_and, big_or


@dataclass(frozen=True)
class FiniteDomain:
    """A named finite set of values, e.g. ``REGADDRESS = {0..7}``."""

    name: str
    values: Tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"domain {self.name!r} must have at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"domain {self.name!r} has duplicate values")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __contains__(self, value) -> bool:
        return value in self.values

    def index_of(self, value) -> int:
        """Position of ``value`` within the domain (used by encodings)."""
        try:
            return self.values.index(value)
        except ValueError as exc:
            raise ValueError(f"{value!r} is not in domain {self.name!r}") from exc


def register_address_domain(num_registers: int) -> FiniteDomain:
    """The paper's ``REGADDRESS = {num_registers-1 .. 0}`` domain."""
    if num_registers <= 0:
        raise ValueError("number of registers must be positive")
    return FiniteDomain("REGADDRESS", tuple(range(num_registers)))


SDREG = FiniteDomain("SDREG", ("src", "dst"))
"""The paper's source/destination register selector domain."""


class EnumVar:
    """A symbolic variable ranging over a :class:`FiniteDomain`.

    An enumerated variable named ``x`` over domain ``D`` is represented in
    the boolean layer by the indicator variables ``x=v`` for each value
    ``v`` of ``D``, e.g. ``c.regaddr=3``.  A well-formedness constraint
    (exactly one indicator true) is available via :meth:`valid`.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: FiniteDomain):
        self.name = name
        self.domain = domain

    def indicator(self, value) -> Var:
        """Boolean variable meaning ``self == value``."""
        if value not in self.domain:
            raise ValueError(f"{value!r} is not in domain {self.domain.name!r}")
        return Var(f"{self.name}={value}")

    def indicators(self) -> List[Var]:
        """Indicator variables for every value, in domain order."""
        return [self.indicator(v) for v in self.domain]

    def equals_value(self, value) -> Expr:
        """The atom ``self == value`` as a boolean expression."""
        return self.indicator(value)

    def not_equals_value(self, value) -> Expr:
        """The atom ``self != value`` as a boolean expression."""
        return ~self.indicator(value)

    def equals(self, other: "EnumVar") -> Expr:
        """The atom ``self == other`` for two variables over the same domain."""
        if other.domain.name != self.domain.name or other.domain.values != self.domain.values:
            raise ValueError(
                f"cannot compare {self.name!r} over {self.domain.name!r} with "
                f"{other.name!r} over {other.domain.name!r}"
            )
        return big_or(
            self.indicator(v) & other.indicator(v) for v in self.domain
        )

    def not_equals(self, other: "EnumVar") -> Expr:
        """The atom ``self != other``."""
        return ~self.equals(other)

    def valid(self) -> Expr:
        """Exactly-one constraint over the indicator variables."""
        from .builders import exactly_one

        return exactly_one(self.indicators())

    def assignment_for(self, value) -> Dict[str, bool]:
        """Concrete assignment of the indicator variables encoding ``value``."""
        if value not in self.domain:
            raise ValueError(f"{value!r} is not in domain {self.domain.name!r}")
        return {self.indicator(v).name: (v == value) for v in self.domain}

    def __repr__(self) -> str:
        return f"EnumVar({self.name!r}, {self.domain.name})"


def exists(domain: FiniteDomain, body: Callable[[object], Expr]) -> Expr:
    """Existential quantification over a finite domain.

    ``exists(D, lambda v: phi(v))`` expands to ``phi(v1) | phi(v2) | ...``.
    """
    return big_or(coerce(body(value)) for value in domain)


def forall(domain: FiniteDomain, body: Callable[[object], Expr]) -> Expr:
    """Universal quantification over a finite domain (finite conjunction)."""
    return big_and(coerce(body(value)) for value in domain)


def exists_many(domains: Sequence[FiniteDomain], body: Callable[..., Expr]) -> Expr:
    """Nested existential quantification over several domains."""
    if not domains:
        return coerce(body())
    head, *rest = domains
    return exists(head, lambda v: exists_many(rest, lambda *more: body(v, *more)))


def forall_many(domains: Sequence[FiniteDomain], body: Callable[..., Expr]) -> Expr:
    """Nested universal quantification over several domains."""
    if not domains:
        return coerce(body())
    head, *rest = domains
    return forall(head, lambda v: forall_many(rest, lambda *more: body(v, *more)))


def scoreboard_bit(prefix: str, address: int) -> Var:
    """Boolean variable for a scoreboard entry, e.g. ``scb[3]``."""
    return Var(f"{prefix}[{address}]")


def encode_enum_assignment(assignments: Iterable[Tuple[EnumVar, object]]) -> Dict[str, bool]:
    """Merge concrete values of several enumerated variables into one boolean map."""
    out: Dict[str, bool] = {}
    for enum_var, value in assignments:
        out.update(enum_var.assignment_for(value))
    return out
