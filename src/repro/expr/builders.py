"""Convenience constructors for building large specification formulas."""

from __future__ import annotations

from typing import Iterable, Sequence

from .ast import FALSE, TRUE, And, Expr, Not, Or, Var, coerce


def var(name: str) -> Var:
    """Create a boolean variable."""
    return Var(name)


def vars_(*names: str) -> tuple:
    """Create several boolean variables at once: ``a, b = vars_("a", "b")``."""
    return tuple(Var(n) for n in names)


def big_and(exprs: Iterable[Expr]) -> Expr:
    """Conjunction of an iterable of expressions; empty iterable gives TRUE."""
    items = [coerce(e) for e in exprs]
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def big_or(exprs: Iterable[Expr]) -> Expr:
    """Disjunction of an iterable of expressions; empty iterable gives FALSE."""
    items = [coerce(e) for e in exprs]
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)


def nand(*exprs: Expr) -> Expr:
    """Negated conjunction."""
    return Not(big_and(exprs))


def nor(*exprs: Expr) -> Expr:
    """Negated disjunction."""
    return Not(big_or(exprs))


def at_most_one(exprs: Sequence[Expr]) -> Expr:
    """Pairwise at-most-one constraint, used e.g. for one-hot bus grants."""
    items = [coerce(e) for e in exprs]
    clauses = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            clauses.append(Not(And(items[i], items[j])))
    return big_and(clauses)


def exactly_one(exprs: Sequence[Expr]) -> Expr:
    """Exactly-one constraint: at least one and at most one of ``exprs``."""
    items = [coerce(e) for e in exprs]
    return And(big_or(items), at_most_one(items))


def bit_vector(prefix: str, width: int) -> list:
    """A list of variables ``prefix[0] .. prefix[width-1]``.

    Mirrors the paper's scoreboard declaration ``BOOLEAN scb[8]``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return [Var(f"{prefix}[{i}]") for i in range(width)]
