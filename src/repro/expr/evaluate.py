"""Evaluation of expressions under (possibly partial) assignments."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from .ast import (
    And,
    Const,
    Expr,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    TRUE,
    Var,
)


class UnboundVariableError(KeyError):
    """Raised when evaluation reaches a variable missing from the assignment."""


def eval_expr(expr: Expr, assignment: Mapping[str, bool]) -> bool:
    """Evaluate ``expr`` to a Python bool under a total assignment.

    Raises :class:`UnboundVariableError` if a variable is unassigned.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return bool(assignment[expr.name])
        except KeyError as exc:
            raise UnboundVariableError(expr.name) from exc
    if isinstance(expr, Not):
        return not eval_expr(expr.operand, assignment)
    if isinstance(expr, And):
        return all(eval_expr(op, assignment) for op in expr.operands)
    if isinstance(expr, Or):
        return any(eval_expr(op, assignment) for op in expr.operands)
    if isinstance(expr, Implies):
        return (not eval_expr(expr.antecedent, assignment)) or eval_expr(
            expr.consequent, assignment
        )
    if isinstance(expr, Iff):
        return eval_expr(expr.left, assignment) == eval_expr(expr.right, assignment)
    if isinstance(expr, Ite):
        if eval_expr(expr.cond, assignment):
            return eval_expr(expr.then, assignment)
        return eval_expr(expr.orelse, assignment)
    raise TypeError(f"cannot evaluate expression node {type(expr).__name__}")


def partial_eval(expr: Expr, assignment: Mapping[str, bool]) -> Expr:
    """Simplify ``expr`` given values for a subset of its variables.

    Unassigned variables are left symbolic.  The result is constant-folded
    but not otherwise simplified; see :func:`repro.expr.transform.simplify`.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        if expr.name in assignment:
            return TRUE if assignment[expr.name] else FALSE
        return expr
    if isinstance(expr, Not):
        inner = partial_eval(expr.operand, assignment)
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        return Not(inner)
    if isinstance(expr, And):
        parts = []
        for op in expr.operands:
            val = partial_eval(op, assignment)
            if isinstance(val, Const):
                if not val.value:
                    return FALSE
                continue
            parts.append(val)
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(*parts)
    if isinstance(expr, Or):
        parts = []
        for op in expr.operands:
            val = partial_eval(op, assignment)
            if isinstance(val, Const):
                if val.value:
                    return TRUE
                continue
            parts.append(val)
        if not parts:
            return FALSE
        if len(parts) == 1:
            return parts[0]
        return Or(*parts)
    if isinstance(expr, Implies):
        ante = partial_eval(expr.antecedent, assignment)
        cons = partial_eval(expr.consequent, assignment)
        if isinstance(ante, Const):
            return cons if ante.value else TRUE
        if isinstance(cons, Const):
            return TRUE if cons.value else Not(ante)
        return Implies(ante, cons)
    if isinstance(expr, Iff):
        left = partial_eval(expr.left, assignment)
        right = partial_eval(expr.right, assignment)
        if isinstance(left, Const) and isinstance(right, Const):
            return TRUE if left.value == right.value else FALSE
        if isinstance(left, Const):
            return right if left.value else Not(right)
        if isinstance(right, Const):
            return left if right.value else Not(left)
        return Iff(left, right)
    if isinstance(expr, Ite):
        cond = partial_eval(expr.cond, assignment)
        if isinstance(cond, Const):
            branch = expr.then if cond.value else expr.orelse
            return partial_eval(branch, assignment)
        return Ite(cond, partial_eval(expr.then, assignment), partial_eval(expr.orelse, assignment))
    raise TypeError(f"cannot partially evaluate node {type(expr).__name__}")


def all_assignments(names, reuse: bool = False) -> Iterator[Dict[str, bool]]:
    """Enumerate every total assignment over the given variable names.

    Names are sorted so the enumeration order is deterministic.  Intended
    for exhaustive checks over small variable sets (the interlock control
    space of a single architecture is typically well under 30 variables).

    With ``reuse=True`` one single dictionary is mutated in place and
    yielded for every row — only the variable that flipped since the
    previous assignment (Gray-code order is *not* used; all changed bits
    are updated) is rewritten, instead of allocating a fresh dict per row.
    Callers that store the yielded mappings must copy them or keep the
    default; the hot enumeration loops in this package pass ``reuse=True``.
    """
    ordered = sorted(names)
    count = len(ordered)
    if reuse:
        current = {name: False for name in ordered}
        yield current
        for bits in range(1, 1 << count):
            # Update exactly the variables whose bit changed from bits-1.
            changed = bits ^ (bits - 1)
            idx = 0
            while changed:
                if changed & 1:
                    current[ordered[idx]] = bool((bits >> idx) & 1)
                changed >>= 1
                idx += 1
            yield current
        return
    for bits in range(1 << count):
        yield {
            name: bool((bits >> idx) & 1)
            for idx, name in enumerate(ordered)
        }


def _check_enumerable(expr: Expr, max_vars: Optional[int]) -> frozenset:
    names = expr.variables()
    if max_vars is not None and len(names) > max_vars:
        raise ValueError(
            f"refusing to enumerate {len(names)} variables (> {max_vars}); "
            "use the SAT or BDD backend instead"
        )
    return names


def is_tautology_by_enumeration(expr: Expr, max_vars: Optional[int] = 24) -> bool:
    """Decide validity by brute-force enumeration.

    The sweep is bit-parallel (see :mod:`repro.expr.compile`): the
    expression is compiled once to machine-word bitwise operations and 64
    assignments are decided per evaluation.  Intended for tests and small
    control cones; larger formulas should use :mod:`repro.sat` or
    :mod:`repro.bdd`.
    """
    _check_enumerable(expr, max_vars)
    from .compile import bitparallel_tautology

    return bitparallel_tautology(expr)


def is_satisfiable_by_enumeration(expr: Expr, max_vars: Optional[int] = 24) -> bool:
    """Decide satisfiability by brute-force enumeration (small formulas only)."""
    _check_enumerable(expr, max_vars)
    from .compile import bitparallel_satisfiable

    return bitparallel_satisfiable(expr)
