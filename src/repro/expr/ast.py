"""Boolean expression abstract syntax tree.

This module defines the small expression language used throughout the
library to write pipeline flow-control specifications in the style of the
DAC 2002 paper.  Expressions are immutable, hashable trees over boolean
variables with the connectives NOT / AND / OR / IMPLIES / IFF / ITE, plus
finite-domain equality atoms which are lowered to booleans before any
symbolic reasoning (see :mod:`repro.expr.domains`).

The classes here are deliberately plain data carriers; algorithms that walk
the tree (evaluation, substitution, conversion to normal forms, printing)
live in sibling modules so each stays small and testable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple


class Expr:
    """Base class for all boolean expressions.

    Expressions overload the Python operators ``&``, ``|``, ``~`` and ``^``
    so that specifications read close to the paper's notation::

        stall = (rtm & ~next_moe) | wait
        spec = stall.implies(~moe)
    """

    __slots__ = ()

    # -- construction helpers -------------------------------------------------

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, _coerce(other))

    def __rand__(self, other: "Expr") -> "Expr":
        return And(_coerce(other), self)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, _coerce(other))

    def __ror__(self, other: "Expr") -> "Expr":
        return Or(_coerce(other), self)

    def __invert__(self) -> "Expr":
        return Not(self)

    def __xor__(self, other: "Expr") -> "Expr":
        other = _coerce(other)
        return Or(And(self, Not(other)), And(Not(self), other))

    def implies(self, other: "Expr") -> "Expr":
        """Logical implication ``self -> other``."""
        return Implies(self, _coerce(other))

    def iff(self, other: "Expr") -> "Expr":
        """Logical equivalence ``self <-> other``."""
        return Iff(self, _coerce(other))

    def ite(self, then: "Expr", orelse: "Expr") -> "Expr":
        """If-then-else with ``self`` as the condition."""
        return Ite(self, _coerce(then), _coerce(orelse))

    # -- structural queries ---------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions."""
        return ()

    def variables(self) -> frozenset:
        """The set of variable names appearing in the expression."""
        out = set()
        for node in self.walk():
            if isinstance(node, Var):
                out.add(node.name)
        return frozenset(out)

    def walk(self) -> Iterator["Expr"]:
        """Yield every node of the tree, pre-order, without recursion."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def size(self) -> int:
        """Number of nodes in the expression tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    # -- value protocol -------------------------------------------------------

    def __bool__(self) -> bool:  # pragma: no cover - guard rail
        raise TypeError(
            "Expr objects have no truth value; use eval_expr() or the SAT/BDD "
            "backends to decide them"
        )

    def __repr__(self) -> str:
        from .printer import to_text

        return to_text(self)


class Const(Expr):
    """A boolean constant, ``TRUE`` or ``FALSE``.

    Constants are interned (hash-consed): ``Const(True)`` always returns
    the module-level ``TRUE`` object, so equality on the hot memo-table
    paths is a pointer comparison.
    """

    __slots__ = ("value", "_hash")

    _interned: dict = {}

    def __new__(cls, value: bool):
        value = bool(value)
        if cls is Const:
            cached = cls._interned.get(value)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("Const", value)))
        if cls is Const:
            cls._interned[value] = self
        return self

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Const is immutable")

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Const) and other.value == self.value)

    def __hash__(self) -> int:
        return self._hash


TRUE = Const(True)
FALSE = Const(False)


class Var(Expr):
    """A named boolean variable.

    Names are plain strings; the pipeline modelling layer uses dotted names
    such as ``"long.1.moe"`` or ``"scb[3]"`` to mirror the paper's notation.

    Variables are interned (hash-consed): constructing the same name twice
    yields the same object, so structurally equal leaves hash once and
    compare by identity in the compiler and transformation memo tables.
    """

    __slots__ = ("name", "_hash")

    _interned: dict = {}

    def __new__(cls, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError(f"variable name must be a non-empty string, got {name!r}")
        if cls is Var:
            cached = cls._interned.get(name)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Var", name)))
        if cls is Var:
            cls._interned[name] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Var) and other.name == self.name)

    def __hash__(self) -> int:
        return self._hash


class Not(Expr):
    """Logical negation."""

    __slots__ = ("operand", "_hash")

    def __init__(self, operand: Expr):
        object.__setattr__(self, "operand", _coerce(operand))
        object.__setattr__(self, "_hash", hash(("Not", self.operand)))

    def __setattr__(self, name, value):
        raise AttributeError("Not is immutable")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, Not) and other.operand == self.operand)

    def __hash__(self) -> int:
        return self._hash


class _NaryOp(Expr):
    """Shared implementation for AND / OR nodes.

    Operands are stored flat (n-ary) which keeps deep conjunctions readable
    when printed and cheap to traverse; nested nodes of the same operator
    are flattened on construction.
    """

    __slots__ = ("operands", "_hash")
    _symbol = "?"

    def __init__(self, *operands: Expr):
        flat = []
        for op in operands:
            op = _coerce(op)
            if isinstance(op, type(self)):
                flat.extend(op.operands)
            else:
                flat.append(op)
        if not flat:
            raise ValueError(f"{type(self).__name__} requires at least one operand")
        object.__setattr__(self, "operands", tuple(flat))
        object.__setattr__(self, "_hash", hash((type(self).__name__, self.operands)))

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def __eq__(self, other) -> bool:
        return self is other or (
            type(other) is type(self) and other.operands == self.operands
        )

    def __hash__(self) -> int:
        return self._hash


class And(_NaryOp):
    """N-ary conjunction."""

    __slots__ = ()
    _symbol = "&"


class Or(_NaryOp):
    """N-ary disjunction."""

    __slots__ = ()
    _symbol = "|"


class Implies(Expr):
    """Logical implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent", "_hash")

    def __init__(self, antecedent: Expr, consequent: Expr):
        object.__setattr__(self, "antecedent", _coerce(antecedent))
        object.__setattr__(self, "consequent", _coerce(consequent))
        object.__setattr__(
            self, "_hash", hash(("Implies", self.antecedent, self.consequent))
        )

    def __setattr__(self, name, value):
        raise AttributeError("Implies is immutable")

    def children(self) -> Tuple[Expr, ...]:
        return (self.antecedent, self.consequent)

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Implies)
            and other.antecedent == self.antecedent
            and other.consequent == self.consequent
        )

    def __hash__(self) -> int:
        return self._hash


class Iff(Expr):
    """Logical equivalence ``left <-> right``."""

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", _coerce(left))
        object.__setattr__(self, "right", _coerce(right))
        object.__setattr__(self, "_hash", hash(("Iff", self.left, self.right)))

    def __setattr__(self, name, value):
        raise AttributeError("Iff is immutable")

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Iff)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return self._hash


class Ite(Expr):
    """If-then-else over booleans: ``cond ? then : orelse``."""

    __slots__ = ("cond", "then", "orelse", "_hash")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr):
        object.__setattr__(self, "cond", _coerce(cond))
        object.__setattr__(self, "then", _coerce(then))
        object.__setattr__(self, "orelse", _coerce(orelse))
        object.__setattr__(
            self, "_hash", hash(("Ite", self.cond, self.then, self.orelse))
        )

    def __setattr__(self, name, value):
        raise AttributeError("Ite is immutable")

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Ite)
            and other.cond == self.cond
            and other.then == self.then
            and other.orelse == self.orelse
        )

    def __hash__(self) -> int:
        return self._hash


def _coerce(value) -> Expr:
    """Accept Expr, bool or str (as a variable name) wherever an Expr is expected."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as a boolean expression")


def coerce(value) -> Expr:
    """Public wrapper around the coercion used by operator overloads."""
    return _coerce(value)


def variables_of(exprs: Iterable[Expr]) -> frozenset:
    """Union of the variables of all expressions in ``exprs``."""
    out = set()
    for e in exprs:
        out |= e.variables()
    return frozenset(out)
