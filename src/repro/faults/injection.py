"""Fault injection into interlock implementations.

The paper's results section reports three kinds of defect found in the
FirePath flow control: unnecessary stalls (performance bugs), control errors
that would cause hazards (functional bugs), and incorrect initialisation
values of control signals.  To reproduce the detection experiment without
the proprietary RTL we *inject* representative defects of each class into
the known-good derived interlock and measure what the assertions and the
property checker report.

Expression-level faults are injected at the *specification* level (the
target stage's stall condition is strengthened or weakened) and the whole
closed form is re-derived.  This keeps the mutated interlock internally
consistent — a strengthened condition yields a conservative design whose
only symptom is unnecessary stalls, a weakened condition yields an
optimistic design whose symptom is hazards — so the ground-truth fault class
matches what a correct detector should report.  Initialisation faults wrap
the interlock and force flag values for the first cycles after reset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..expr.ast import And, Expr, FALSE, Not, Or, TRUE, Var
from ..expr.transform import simplify
from ..pipeline.interlock import ClosedFormInterlock, Interlock, StuckResetInterlock
from ..spec.derivation import symbolic_most_liberal
from ..spec.functional import FunctionalSpec, StallClause


class FaultClass(Enum):
    """Ground-truth classification of an injected defect."""

    PERFORMANCE = "performance"  # extra stalls, functionally safe
    FUNCTIONAL = "functional"  # missing stalls, can cause hazards
    INITIALISATION = "initialisation"  # wrong values right after reset


@dataclass
class InjectedFault:
    """One injected defect together with the mutated interlock."""

    fault_class: FaultClass
    target_moe: str
    description: str
    interlock: Interlock
    mutated_spec: Optional[FunctionalSpec] = None
    seed: Optional[int] = None

    def describe(self) -> str:
        """Single-line rendering."""
        return f"[{self.fault_class.value}] {self.target_moe}: {self.description}"


class FaultInjector:
    """Generates mutated interlocks from a functional specification."""

    def __init__(self, spec: FunctionalSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self.derivation = symbolic_most_liberal(spec)
        self.reference = ClosedFormInterlock.from_derivation(self.derivation)

    # -- spec mutation plumbing ------------------------------------------------------------

    def _respecify(self, moe: str, new_condition: Expr, suffix: str) -> FunctionalSpec:
        """A copy of the spec with one stage's stall condition replaced."""
        clauses = []
        for clause in self.spec.clauses:
            if clause.moe == moe:
                clauses.append(
                    StallClause(
                        moe=clause.moe,
                        condition=simplify(new_condition),
                        label=clause.label,
                    )
                )
            else:
                clauses.append(clause)
        return FunctionalSpec(
            name=f"{self.spec.name}-{suffix}",
            clauses=clauses,
            inputs=list(self.spec.inputs),
            metadata=dict(self.spec.metadata),
        )

    def _interlock_for(self, mutated_spec: FunctionalSpec, name: str) -> ClosedFormInterlock:
        return ClosedFormInterlock.from_spec(mutated_spec, name=name)

    # -- individual fault models --------------------------------------------------------------

    def extra_stall_fault(self, moe: str, trigger: Optional[Expr] = None) -> InjectedFault:
        """Performance bug: the stage also stalls when an unrelated input is true.

        By default the trigger is a primary input the stage's real stall
        condition does not mention — exactly the "stall with no functional
        justification" the paper hunts for.  The extra condition is added to
        the specification and the interlock re-derived, so it propagates
        consistently to the upstream stages (a conservative but hazard-free
        design).
        """
        rng = random.Random(self.seed)
        if trigger is None:
            used = self.spec.condition_for(moe).variables()
            candidates = [name for name in self.spec.input_signals() if name not in used]
            if not candidates:
                candidates = self.spec.input_signals()
            trigger = Var(rng.choice(sorted(candidates)))
        original = self.spec.condition_for(moe)
        mutated_spec = self._respecify(moe, Or(original, trigger), "extra-stall")
        interlock = self._interlock_for(mutated_spec, f"perf-fault({moe})")
        return InjectedFault(
            fault_class=FaultClass.PERFORMANCE,
            target_moe=moe,
            description=f"stalls additionally whenever {trigger!r} holds",
            interlock=interlock,
            mutated_spec=mutated_spec,
            seed=self.seed,
        )

    def missing_term_fault(self, moe: str, term_index: Optional[int] = None) -> InjectedFault:
        """Functional bug: one disjunct of the stage's stall condition is ignored."""
        condition = self.spec.condition_for(moe)
        disjuncts = list(condition.operands) if isinstance(condition, Or) else [condition]
        rng = random.Random(self.seed)
        if term_index is None:
            term_index = rng.randrange(len(disjuncts))
        if not 0 <= term_index < len(disjuncts):
            raise IndexError(
                f"stall condition of {moe} has {len(disjuncts)} disjuncts, "
                f"index {term_index} is out of range"
            )
        kept = [d for i, d in enumerate(disjuncts) if i != term_index]
        if not kept:
            weakened: Expr = FALSE
        elif len(kept) == 1:
            weakened = kept[0]
        else:
            weakened = Or(*kept)
        mutated_spec = self._respecify(moe, weakened, "missing-term")
        interlock = self._interlock_for(mutated_spec, f"func-fault({moe})")
        dropped = disjuncts[term_index]
        return InjectedFault(
            fault_class=FaultClass.FUNCTIONAL,
            target_moe=moe,
            description=f"ignores the stall condition disjunct {dropped!r}",
            interlock=interlock,
            mutated_spec=mutated_spec,
            seed=self.seed,
        )

    def stuck_stall_fault(self, moe: str) -> InjectedFault:
        """Performance bug: the stage stalls unconditionally (moe stuck low)."""
        mutated_spec = self._respecify(moe, TRUE, "always-stall")
        interlock = self._interlock_for(mutated_spec, f"stuck-stall({moe})")
        return InjectedFault(
            fault_class=FaultClass.PERFORMANCE,
            target_moe=moe,
            description="stalls unconditionally (moe flag effectively stuck at 0)",
            interlock=interlock,
            mutated_spec=mutated_spec,
            seed=self.seed,
        )

    def never_stall_fault(self, moe: str) -> InjectedFault:
        """Functional bug: the stage never stalls (moe stuck high)."""
        mutated_spec = self._respecify(moe, FALSE, "never-stall")
        interlock = self._interlock_for(mutated_spec, f"never-stall({moe})")
        return InjectedFault(
            fault_class=FaultClass.FUNCTIONAL,
            target_moe=moe,
            description="never stalls (moe flag effectively stuck at 1)",
            interlock=interlock,
            mutated_spec=mutated_spec,
            seed=self.seed,
        )

    def bad_reset_fault(self, moe: str, value: bool, cycles: int = 4) -> InjectedFault:
        """Initialisation bug: the flag is forced to a value for the first cycles."""
        interlock = StuckResetInterlock(
            ClosedFormInterlock.from_derivation(self.derivation),
            forced_values={moe: value},
            cycles=cycles,
            name=f"bad-reset({moe}={int(value)})",
        )
        return InjectedFault(
            fault_class=FaultClass.INITIALISATION,
            target_moe=moe,
            description=(
                f"comes out of reset with {moe} forced to {int(value)} for {cycles} cycles"
            ),
            interlock=interlock,
            seed=self.seed,
        )

    # -- fault sets ----------------------------------------------------------------------------

    def standard_fault_set(self, reset_cycles: int = 4) -> List[InjectedFault]:
        """A deterministic set covering every stage with every fault class.

        For every pipeline stage whose stall condition is non-trivial this
        produces an extra-stall fault, a missing-term fault, an
        unconditional-stall fault, a never-stall fault and a bad-reset fault.
        """
        faults: List[InjectedFault] = []
        for clause in self.spec.clauses:
            moe = clause.moe
            faults.append(self.extra_stall_fault(moe))
            if clause.condition != FALSE:
                faults.append(self.missing_term_fault(moe, term_index=0))
                faults.append(self.never_stall_fault(moe))
            faults.append(self.stuck_stall_fault(moe))
            faults.append(self.bad_reset_fault(moe, value=False, cycles=reset_cycles))
        return faults

    def random_fault(self, rng: Optional[random.Random] = None) -> InjectedFault:
        """One randomly chosen fault (used by randomised campaigns)."""
        rng = rng or random.Random(self.seed)
        moe = rng.choice(self.spec.moe_flags())
        choice = rng.randrange(5)
        if choice == 0:
            return self.extra_stall_fault(moe)
        if choice == 1 and self.spec.condition_for(moe) != FALSE:
            return self.missing_term_fault(moe)
        if choice == 2:
            return self.stuck_stall_fault(moe)
        if choice == 3 and self.spec.condition_for(moe) != FALSE:
            return self.never_stall_fault(moe)
        return self.bad_reset_fault(moe, value=bool(rng.getrandbits(1)))
