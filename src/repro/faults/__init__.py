"""Fault injection and detection campaigns (reproduction of the Section 4 results)."""

from .campaigns import CampaignSummary, DetectionRecord, FaultCampaign
from .injection import FaultClass, FaultInjector, InjectedFault

__all__ = [
    "CampaignSummary",
    "DetectionRecord",
    "FaultCampaign",
    "FaultClass",
    "FaultInjector",
    "InjectedFault",
]
