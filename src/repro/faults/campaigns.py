"""Fault-detection campaigns: do the derived assertions catch injected bugs?

This is the reproduction of the paper's Section 4 result in quantitative
form.  For every injected fault the campaign runs

* **simulation with assertions** — the testbench route the FirePath project
  used: random programs, the functional and performance assertions armed,
  plus the simulator's independent physical hazard detection; and
* **property checking** — the exhaustive route the paper recommends, for
  faults that yield a combinational interlock.

and records which route detected the fault and how the detection classifies
it (performance vs functional), compared against the injected ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..assertions.generate import AssertionKind, testbench_assertions
from ..assertions.monitor import AssertionMonitor
from ..checking.property_check import PropertyChecker
from ..pipeline.interlock import ClosedFormInterlock
from ..pipeline.simulator import PipelineSimulator, SimulatorConfig
from ..pipeline.structure import Architecture
from ..spec.functional import FunctionalSpec
from ..workloads.generators import WorkloadGenerator, WorkloadProfile
from .injection import FaultClass, FaultInjector, InjectedFault


@dataclass
class DetectionRecord:
    """Detection outcome for one injected fault."""

    fault: InjectedFault
    performance_violations: int = 0
    functional_violations: int = 0
    physical_hazards: int = 0
    simulation_cycles: int = 0
    property_check_performance_failed: Optional[bool] = None
    property_check_functional_failed: Optional[bool] = None
    property_check_equivalence_failed: Optional[bool] = None

    @property
    def detected_by_simulation(self) -> bool:
        """Did any assertion fire during simulation?"""
        return bool(self.performance_violations or self.functional_violations)

    @property
    def detected_by_property_check(self) -> Optional[bool]:
        """Did the property checker refute any property (None if not applicable)?

        Besides the per-clause functional and performance claims this also
        counts the equivalence check against the derived most liberal moe
        assignment.  The equivalence check is what catches extra stalls at
        lock-stepped stages: there an unnecessary stall of one stage is
        "justified" by the induced stall of its partner, so the per-clause
        performance implication still holds, yet the implementation is not
        the maximum-performance solution.
        """
        if (
            self.property_check_performance_failed is None
            and self.property_check_functional_failed is None
            and self.property_check_equivalence_failed is None
        ):
            return None
        return bool(
            self.property_check_performance_failed
            or self.property_check_functional_failed
            or self.property_check_equivalence_failed
        )

    @property
    def detected_by_any(self) -> bool:
        """Detected by simulation assertions or by the property checker."""
        return self.detected_by_simulation or bool(self.detected_by_property_check)

    @property
    def vacuous(self) -> Optional[bool]:
        """True when the mutation did not actually change the interlock.

        Dropping a stall term that can never fire (for example the
        downstream-stall term of a stage whose successor never stalls, as on
        a load/store pipe without a completion bus) produces an interlock
        that is provably equivalent to the derived reference; there is
        nothing to detect.  None when property checking was not applicable
        (sequential faults are never considered vacuous).
        """
        if self.detected_by_property_check is None:
            return None
        return (
            not self.property_check_functional_failed
            and not self.property_check_performance_failed
            and not self.property_check_equivalence_failed
        )

    @property
    def simulation_classification(self) -> Optional[FaultClass]:
        """How the assertions classify the fault (None if nothing fired)."""
        if self.functional_violations:
            return FaultClass.FUNCTIONAL
        if self.performance_violations:
            return FaultClass.PERFORMANCE
        return None

    @property
    def property_classification(self) -> Optional[FaultClass]:
        """How the property checker classifies the fault (None if undetected or n/a).

        A failed functional claim means a required stall can be missed — a
        functional bug.  If every functional claim holds but the
        implementation is not the most liberal solution (a performance claim
        or the equivalence check fails), the maximality theorem of Section 3
        guarantees it stalls strictly more than necessary — a performance bug.
        """
        if not self.detected_by_property_check:
            return None
        if self.property_check_functional_failed:
            return FaultClass.FUNCTIONAL
        return FaultClass.PERFORMANCE

    @property
    def classified_correctly(self) -> bool:
        """Does the assertion-based classification match the injected class?

        Initialisation faults count as correctly classified when they are
        detected at all (the paper reports them separately from the two
        steady-state classes).
        """
        observed = self.simulation_classification
        if observed is None:
            return False
        if self.fault.fault_class is FaultClass.INITIALISATION:
            return True
        return observed is self.fault.fault_class

    @property
    def property_classified_correctly(self) -> Optional[bool]:
        """Does the property-check classification match the injected class?

        None when property checking was not applicable to this fault.
        """
        if self.detected_by_property_check is None:
            return None
        observed = self.property_classification
        if observed is None:
            return False
        return observed is self.fault.fault_class

    def as_row(self) -> Dict[str, object]:
        """Row for the benchmark tables."""
        return {
            "fault": self.fault.describe(),
            "class": self.fault.fault_class.value,
            "perf viol": self.performance_violations,
            "func viol": self.functional_violations,
            "hazards": self.physical_hazards,
            "sim detect": "yes" if self.detected_by_simulation else "no",
            "prop detect": (
                "n/a"
                if self.detected_by_property_check is None
                else ("yes" if self.detected_by_property_check else "no")
            ),
            "prop class": (
                "n/a"
                if self.detected_by_property_check is None
                else (
                    self.property_classification.value
                    if self.property_classification is not None
                    else "-"
                )
            ),
            "vacuous": "yes" if self.vacuous else "no",
        }


@dataclass
class CampaignSummary:
    """Aggregate detection statistics over a fault set."""

    records: List[DetectionRecord] = field(default_factory=list)

    def total(self, fault_class: Optional[FaultClass] = None) -> int:
        """Number of injected faults (of one class)."""
        return sum(
            1
            for record in self.records
            if fault_class is None or record.fault.fault_class is fault_class
        )

    def detected_by_simulation(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults detected by at least one assertion during simulation."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.detected_by_simulation
        )

    def detected_by_property_check(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults refuted by the property checker (where applicable)."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.detected_by_property_check
        )

    def property_check_applicable(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults for which property checking was applicable."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.detected_by_property_check is not None
        )

    def detected_by_any(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults detected by at least one of the two verification routes."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.detected_by_any
        )

    def vacuous(self, fault_class: Optional[FaultClass] = None) -> int:
        """Injected mutations that provably did not change the interlock."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.vacuous
        )

    def effective_total(self, fault_class: Optional[FaultClass] = None) -> int:
        """Injected faults that actually changed behaviour (non-vacuous)."""
        return self.total(fault_class) - self.vacuous(fault_class)

    def correctly_classified(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults whose assertion-based classification matches the ground truth."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.classified_correctly
        )

    def property_correctly_classified(self, fault_class: Optional[FaultClass] = None) -> int:
        """Faults whose property-check classification matches the ground truth."""
        return sum(
            1
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and record.property_classified_correctly
        )

    def simulation_misses(self, fault_class: Optional[FaultClass] = None) -> List[DetectionRecord]:
        """Faults the simulation testbench did not flag (the exhaustiveness gap)."""
        return [
            record
            for record in self.records
            if (fault_class is None or record.fault.fault_class is fault_class)
            and not record.detected_by_simulation
        ]

    def rows(self) -> List[Dict[str, object]]:
        """Per-fault table rows."""
        return [record.as_row() for record in self.records]

    def summary_rows(self) -> List[Dict[str, object]]:
        """Per-class summary table rows (the headline numbers)."""
        rows = []
        for fault_class in FaultClass:
            total = self.total(fault_class)
            if total == 0:
                continue
            applicable = self.property_check_applicable(fault_class)
            rows.append(
                {
                    "fault class": fault_class.value,
                    "injected": total,
                    "detected (any)": self.detected_by_any(fault_class),
                    "sim detected": self.detected_by_simulation(fault_class),
                    "prop detected": (
                        f"{self.detected_by_property_check(fault_class)}/{applicable}"
                        if applicable
                        else "n/a"
                    ),
                    "sim classified ok": self.correctly_classified(fault_class),
                    "prop classified ok": (
                        f"{self.property_correctly_classified(fault_class)}/{applicable}"
                        if applicable
                        else "n/a"
                    ),
                }
            )
        return rows


class FaultCampaign:
    """Runs detection experiments over a set of injected faults."""

    def __init__(
        self,
        architecture: Architecture,
        spec: FunctionalSpec,
        profile: Optional[WorkloadProfile] = None,
        num_programs: int = 3,
        seed: int = 0,
        max_cycles: int = 600,
        property_backend: str = "bdd",
    ):
        self.architecture = architecture
        self.spec = spec
        self.profile = profile or WorkloadProfile(length=60)
        self.num_programs = num_programs
        self.seed = seed
        self.max_cycles = max_cycles
        self.assertions = testbench_assertions(spec)
        # One monitor for every fault in the campaign: the assertion
        # formulas are compiled to bit-parallel evaluators exactly once.
        self.monitor = AssertionMonitor(self.assertions)
        self.property_checker = PropertyChecker(
            spec, architecture=architecture, backend=property_backend
        )

    def run_fault(self, fault: InjectedFault) -> DetectionRecord:
        """Evaluate one injected fault with both verification routes."""
        record = DetectionRecord(fault=fault)
        monitor = self.monitor
        config = SimulatorConfig(max_cycles=self.max_cycles)
        for index in range(self.num_programs):
            generator = WorkloadGenerator(self.architecture, seed=self.seed + index)
            program = generator.generate(self.profile)
            simulator = PipelineSimulator(self.architecture, fault.interlock, config)
            trace = simulator.run(program)
            report = monitor.check_trace(trace)
            record.simulation_cycles += trace.num_cycles()
            record.physical_hazards += trace.hazard_count()
            record.performance_violations += report.violation_count(AssertionKind.PERFORMANCE)
            record.functional_violations += report.violation_count(AssertionKind.FUNCTIONAL)

        if isinstance(fault.interlock, ClosedFormInterlock):
            performance = self.property_checker.check_performance(fault.interlock)
            functional = self.property_checker.check_functional(fault.interlock)
            equivalence = self.property_checker.check_equivalence_with_derived(fault.interlock)
            record.property_check_performance_failed = not performance.all_hold()
            record.property_check_functional_failed = not functional.all_hold()
            record.property_check_equivalence_failed = not equivalence.all_hold()
        return record

    def run(self, faults: Sequence[InjectedFault]) -> CampaignSummary:
        """Evaluate a whole fault set."""
        summary = CampaignSummary()
        for fault in faults:
            summary.records.append(self.run_fault(fault))
        return summary

    def run_standard_set(self, reset_cycles: int = 4) -> CampaignSummary:
        """Inject the standard per-stage fault set and evaluate it."""
        injector = FaultInjector(self.spec, seed=self.seed)
        return self.run(injector.standard_fault_set(reset_cycles=reset_cycles))
