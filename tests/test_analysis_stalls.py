"""Tests for stall classification (repro.analysis.stalls).

Covers the bit-parallel classifier against hand-built traces (including the
zero-stall-cycle edge cases of the rate properties), cross-checks it
against per-cycle expression evaluation, and exercises the closed-form
(derivation-backed) classification mode.
"""

import pytest

from repro.analysis import StageStallStats, classify_stalls
from repro.analysis.stalls import StallBreakdown
from repro.expr import Var, eval_expr, parse_expr
from repro.pipeline import (
    ClosedFormInterlock,
    ConservativeCompletionInterlock,
    reference_interlock,
    simulate,
)
from repro.pipeline.trace import CycleRecord, SimulationTrace
from repro.spec import FunctionalSpec, StallClause, symbolic_most_liberal
from repro.workloads import WorkloadGenerator, WorkloadProfile, completion_contention_program


@pytest.fixture(scope="module")
def tiny_spec():
    return FunctionalSpec(
        name="tiny",
        clauses=[
            StallClause(moe="p.2.moe", condition=parse_expr("req & !gnt")),
            StallClause(moe="p.1.moe", condition=parse_expr("rtm & !p.2.moe")),
        ],
        inputs=["req", "gnt", "rtm"],
    )


def _trace(records):
    return SimulationTrace(
        architecture_name="tiny", interlock_name="hand-built", cycles=records
    )


def _record(cycle, inputs, moe):
    return CycleRecord(cycle=cycle, inputs=inputs, moe=moe, occupancy={})


class TestEdgeCases:
    def test_empty_trace(self, tiny_spec):
        breakdown = classify_stalls(_trace([]), tiny_spec)
        assert breakdown.total_stalls() == 0
        assert breakdown.total_unnecessary() == 0
        assert breakdown.worst_stage() is None

    def test_zero_stall_cycles_give_zero_rates(self, tiny_spec):
        # Every stage moves every cycle: stall and unnecessary rates must be
        # 0.0, not a division error.
        records = [
            _record(k, {"req": False, "gnt": False, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": True})
            for k in range(5)
        ]
        breakdown = classify_stalls(_trace(records), tiny_spec)
        for stats in breakdown.per_stage.values():
            assert stats.total_cycles == 5
            assert stats.stall_cycles == 0
            assert stats.stall_rate == 0.0
            assert stats.unnecessary_rate == 0.0
        assert not breakdown.has_performance_bug()

    def test_zero_total_cycles_rates(self):
        stats = StageStallStats(moe="p.1.moe")
        assert stats.stall_rate == 0.0
        assert stats.unnecessary_rate == 0.0

    def test_unsampled_moe_flag_counts_as_moving(self, tiny_spec):
        # A trace that never drove p.2.moe: the stage defaults to
        # moving-or-empty, so it can contribute no stalls.
        records = [
            _record(0, {"req": True, "gnt": False, "rtm": True}, {"p.1.moe": False}),
        ]
        breakdown = classify_stalls(_trace(records), tiny_spec)
        assert breakdown.per_stage["p.2.moe"].stall_cycles == 0
        assert breakdown.per_stage["p.1.moe"].stall_cycles == 1


class TestClassification:
    def test_necessary_and_unnecessary_split(self, tiny_spec):
        records = [
            # Stalled with justification: req ∧ ¬gnt holds.
            _record(0, {"req": True, "gnt": False, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": False}),
            # Stalled without justification: a performance bug.
            _record(1, {"req": False, "gnt": False, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": False}),
            # Moving: no stall recorded at all.
            _record(2, {"req": True, "gnt": True, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": True}),
        ]
        breakdown = classify_stalls(_trace(records), tiny_spec)
        stats = breakdown.per_stage["p.2.moe"]
        assert stats.stall_cycles == 2
        assert stats.necessary_stalls == 1
        assert stats.unnecessary_stalls == 1
        assert stats.unnecessary_cycles == [1]
        assert breakdown.worst_stage() == "p.2.moe"
        assert breakdown.has_performance_bug()

    def test_matches_per_cycle_evaluation(self, example_arch, example_spec):
        # Bit-parallel classification must agree with the naive per-cycle
        # expression walk on a real simulated trace.
        program = WorkloadGenerator(example_arch, seed=11).generate(
            WorkloadProfile(length=100)
        )
        trace = simulate(
            example_arch,
            ConservativeCompletionInterlock(example_spec, example_arch),
            program,
        )
        breakdown = classify_stalls(trace, example_spec)
        for clause in example_spec.clauses:
            stalls = necessary = unnecessary = 0
            for record in trace.cycles:
                if record.moe.get(clause.moe, True):
                    continue
                stalls += 1
                if eval_expr(clause.condition, record.signals()):
                    necessary += 1
                else:
                    unnecessary += 1
            stats = breakdown.per_stage[clause.moe]
            assert stats.total_cycles == trace.num_cycles()
            assert (stats.stall_cycles, stats.necessary_stalls, stats.unnecessary_stalls) == (
                stalls, necessary, unnecessary,
            )

    def test_spans_multiple_words(self, tiny_spec):
        # More than 64 cycles so the packed evaluation crosses word
        # boundaries; stall on every odd cycle, justified on every fourth.
        records = []
        for k in range(150):
            stalled = k % 2 == 1
            justified = k % 4 == 1
            records.append(
                _record(
                    k,
                    {"req": justified, "gnt": False, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": not stalled},
                )
            )
        breakdown = classify_stalls(_trace(records), tiny_spec)
        stats = breakdown.per_stage["p.2.moe"]
        assert stats.stall_cycles == 75
        assert stats.necessary_stalls == 38
        assert stats.unnecessary_stalls == 37
        assert stats.unnecessary_cycles == [k for k in range(150) if k % 4 == 3]


class TestDerivationMode:
    def test_reference_interlock_has_no_unnecessary_stalls(self, example_arch, example_spec):
        derivation = symbolic_most_liberal(example_spec)
        program = completion_contention_program(example_arch, length=64)
        trace = simulate(
            example_arch, ClosedFormInterlock.from_derivation(derivation), program
        )
        breakdown = classify_stalls(trace, example_spec, derivation=derivation)
        assert breakdown.total_stalls() > 0
        assert breakdown.total_unnecessary() == 0

    def test_closed_forms_catch_root_cause(self, example_arch, example_spec):
        # The conservative completion logic wastes cycles; against the
        # derived closed forms every one of them is flagged, including the
        # upstream stages it drags down (whose observed-signal "justification"
        # is itself a symptom of the bug).
        derivation = symbolic_most_liberal(example_spec)
        program = completion_contention_program(example_arch, length=64)
        conservative = simulate(
            example_arch,
            ConservativeCompletionInterlock(example_spec, example_arch),
            program,
        )
        observed = classify_stalls(conservative, example_spec)
        closed_form = classify_stalls(conservative, example_spec, derivation=derivation)
        assert closed_form.total_unnecessary() >= observed.total_unnecessary() > 0

    def test_describe_lists_totals(self, tiny_spec):
        records = [
            _record(0, {"req": False, "gnt": False, "rtm": False},
                    {"p.1.moe": True, "p.2.moe": False}),
        ]
        breakdown = classify_stalls(_trace(records), tiny_spec)
        text = breakdown.describe()
        assert "total stall cycles" in text
        assert "unnecessary" in text
        assert breakdown.rows()[0]["stage"] == "p.2"
