"""Property-based tests for the expression substrate.

A random-expression strategy drives cross-checks between the independent
implementations of the same semantics: direct evaluation, simplification,
NNF conversion, Tseitin CNF + SAT, and the BDD compiler.
"""

from hypothesis import given, settings, strategies as st

from repro.bdd import ExprBddContext
from repro.expr import (
    And,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    all_assignments,
    eval_expr,
    parse_expr,
    simplify,
    substitute,
    to_cnf_clauses,
    to_nnf,
    to_text,
)
from repro.sat import solve_clauses

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]


def expressions(max_leaves: int = 12):
    """Hypothesis strategy producing random expressions over a small alphabet."""
    leaves = st.sampled_from([Var(name) for name in VARIABLE_NAMES])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
        ),
        max_leaves=max_leaves,
    )


def brute_force_models(expr):
    names = sorted(expr.variables())
    return [a for a in all_assignments(names) if eval_expr(expr, a)]


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_simplify_preserves_semantics(expr):
    simplified = simplify(expr)
    for assignment in all_assignments(expr.variables()):
        assert eval_expr(expr, assignment) == eval_expr(simplified, assignment)


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_nnf_preserves_semantics(expr):
    nnf = to_nnf(expr)
    for assignment in all_assignments(expr.variables()):
        assert eval_expr(expr, assignment) == eval_expr(nnf, assignment)


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_text_roundtrip(expr):
    assert parse_expr(to_text(expr)) == expr


@settings(max_examples=40, deadline=None)
@given(expressions(max_leaves=8))
def test_tseitin_equisatisfiable_with_enumeration(expr):
    cnf = to_cnf_clauses(expr)
    sat = bool(solve_clauses(cnf.num_vars, cnf.clauses))
    assert sat == bool(brute_force_models(expr))


@settings(max_examples=40, deadline=None)
@given(expressions(max_leaves=8))
def test_bdd_agrees_with_enumeration(expr):
    context = ExprBddContext()
    node = context.compile(expr)
    for assignment in all_assignments(expr.variables()):
        expected = eval_expr(expr, assignment)
        if context.manager.support(node):
            assert context.manager.evaluate(node, assignment) == expected
        else:
            assert context.manager.is_true(node) == expected


@settings(max_examples=40, deadline=None)
@given(expressions(max_leaves=8), st.sampled_from(VARIABLE_NAMES), st.booleans())
def test_substitution_of_constant_matches_restricted_evaluation(expr, name, value):
    from repro.expr import TRUE, FALSE

    substituted = substitute(expr, {name: TRUE if value else FALSE})
    for assignment in all_assignments(expr.variables() | {name}):
        forced = dict(assignment)
        forced[name] = value
        assert eval_expr(substituted, assignment) == eval_expr(expr, forced)


@settings(max_examples=40, deadline=None)
@given(expressions(max_leaves=8))
def test_double_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once
