"""Tests for specification coverage scoring (repro.analysis.coverage)."""

import pytest

from repro.analysis import CoverageReport, coverage_of, merge_coverage
from repro.pipeline import reference_interlock, simulate
from repro.workloads import (
    CONTENTION_HEAVY,
    HAZARD_HEAVY,
    WAIT_HEAVY,
    WorkloadGenerator,
    WorkloadProfile,
    completion_contention_program,
)


@pytest.fixture(scope="module")
def balanced_trace(example_arch, example_spec):
    program = WorkloadGenerator(example_arch, seed=3).generate(WorkloadProfile(length=50))
    return simulate(example_arch, reference_interlock(example_spec), program)


@pytest.fixture(scope="module")
def balanced_coverage(example_spec, balanced_trace):
    return coverage_of(example_spec, [balanced_trace])


class TestCoverageBasics:
    def test_every_stage_is_tracked(self, example_spec, balanced_coverage):
        assert set(balanced_coverage.stages) == set(example_spec.moe_flags())

    def test_cycle_counts_are_consistent(self, balanced_coverage, balanced_trace):
        for stage in balanced_coverage.stages.values():
            assert stage.cycles_observed == balanced_trace.num_cycles()
            assert stage.cycles_stalled + stage.cycles_moving == stage.cycles_observed

    def test_disjunct_counts_match_spec(self, example_spec, balanced_coverage):
        from repro.expr import Or

        for clause in example_spec.clauses:
            expected = len(clause.condition.operands) if isinstance(clause.condition, Or) else 1
            assert len(balanced_coverage.stages[clause.moe].disjuncts) == expected

    def test_overall_coverage_between_zero_and_one(self, balanced_coverage):
        assert 0.0 <= balanced_coverage.overall_disjunct_coverage <= 1.0

    def test_hit_counts_bounded_by_cycles(self, balanced_coverage, balanced_trace):
        for stage in balanced_coverage.stages.values():
            for disjunct in stage.disjuncts:
                assert 0 <= disjunct.hit_cycles <= balanced_trace.num_cycles()
                assert disjunct.sole_justification_cycles <= disjunct.hit_cycles

    def test_describe_and_rows(self, balanced_coverage):
        text = balanced_coverage.describe()
        assert "disjunct coverage" in text
        rows = balanced_coverage.rows()
        assert len(rows) == len(balanced_coverage.stages)
        assert {"moe flag", "disjuncts", "disjuncts covered"} <= set(rows[0])


class TestCoverageGaps:
    def test_contention_program_exercises_completion_stalls(self, example_arch, example_spec):
        program = completion_contention_program(example_arch, length=60)
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        report = coverage_of(example_spec, [trace])
        completion = report.stages["long.4.moe"]
        assert completion.disjuncts[0].hit_cycles > 0

    def test_wait_free_workload_leaves_wait_disjunct_uncovered(self, example_arch, example_spec):
        profile = WorkloadProfile(length=30, wait_rate=0.0, dependency_rate=0.0)
        program = WorkloadGenerator(example_arch, seed=5).generate(profile)
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        report = coverage_of(example_spec, [trace])
        from repro.expr import to_text

        uncovered_conditions = {
            to_text(disjunct.condition) for disjunct in report.uncovered()
        }
        assert any("WAIT" in condition for condition in uncovered_conditions)
        assert not report.fully_covered

    def test_wait_heavy_workload_covers_wait_disjunct(self, example_arch, example_spec):
        program = WorkloadGenerator(example_arch, seed=5).generate(
            WorkloadProfile(length=40, wait_rate=0.5)
        )
        trace = simulate(example_arch, reference_interlock(example_spec), program)
        report = coverage_of(example_spec, [trace])
        from repro.expr import to_text

        issue = report.stages["long.1.moe"]
        wait_disjuncts = [
            d for d in issue.disjuncts if "WAIT" in to_text(d.condition)
        ]
        assert wait_disjuncts and all(d.covered for d in wait_disjuncts)

    def test_mixed_workloads_increase_coverage(self, example_arch, example_spec):
        generator = WorkloadGenerator(example_arch, seed=9)
        single = coverage_of(
            example_spec,
            [
                simulate(
                    example_arch,
                    reference_interlock(example_spec),
                    generator.generate(WorkloadProfile(length=20, wait_rate=0.0,
                                                       dependency_rate=0.0)),
                )
            ],
        )
        profiles = [HAZARD_HEAVY, CONTENTION_HEAVY, WAIT_HEAVY]
        traces = [
            simulate(example_arch, reference_interlock(example_spec), generator.generate(profile))
            for profile in profiles
        ]
        combined = coverage_of(example_spec, traces)
        assert combined.overall_disjunct_coverage >= single.overall_disjunct_coverage


class TestMerge:
    def test_merge_accumulates_counts(self, example_spec, example_arch):
        generator = WorkloadGenerator(example_arch, seed=2)
        traces = [
            simulate(
                example_arch,
                reference_interlock(example_spec),
                generator.generate(WorkloadProfile(length=15)),
            )
            for _ in range(2)
        ]
        separate = [coverage_of(example_spec, [trace]) for trace in traces]
        merged = merge_coverage(separate)
        combined = coverage_of(example_spec, traces)
        assert merged.traces_merged == 2
        for moe in merged.stages:
            assert merged.stages[moe].cycles_observed == combined.stages[moe].cycles_observed
            for mine, theirs in zip(merged.stages[moe].disjuncts,
                                    combined.stages[moe].disjuncts):
                assert mine.hit_cycles == theirs.hit_cycles

    def test_merge_requires_matching_specs(self, example_spec, risc_spec):
        with pytest.raises(ValueError):
            merge_coverage(
                [CoverageReport(spec_name=example_spec.name),
                 CoverageReport(spec_name=risc_spec.name)]
            )

    def test_merge_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            merge_coverage([])

    def test_incremental_accumulation(self, example_spec, example_arch):
        generator = WorkloadGenerator(example_arch, seed=4)
        first = simulate(
            example_arch,
            reference_interlock(example_spec),
            generator.generate(WorkloadProfile(length=10)),
        )
        second = simulate(
            example_arch,
            reference_interlock(example_spec),
            generator.generate(WorkloadProfile(length=10)),
        )
        report = coverage_of(example_spec, [first])
        report = coverage_of(example_spec, [second], report=report)
        assert report.traces_merged == 2
        assert all(
            stage.cycles_observed == first.num_cycles() + second.num_cycles()
            for stage in report.stages.values()
        )
